//! Typed arrays in the simulated address space.

use crate::tracker::Tracker;

/// An array whose element accesses drive a [`Tracker`].
///
/// One cell of simulated address space per element, regardless of the Rust
/// type — the models measure transfers of *records* (or matrix entries /
/// complex points), so the element is the natural unit.
///
/// ```
/// use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};
/// let t = Tracker::new(CacheConfig::new(16, 4, 8), PolicyChoice::Lru);
/// let mut a = SimArray::from_vec(&t, vec![0u64; 8]);
/// a.write(0, 7);        // write miss: loads the block, marks it dirty
/// assert_eq!(a.read(1), 0); // hit: same block
/// t.flush();            // dirty block written back (cost omega)
/// assert_eq!(t.stats().writebacks, 1);
/// ```
#[derive(Clone)]
pub struct SimArray<T> {
    data: Vec<T>,
    base: usize,
    tracker: Tracker,
}

impl<T: Copy> SimArray<T> {
    /// Wrap an existing vector, allocating fresh (block-aligned) addresses.
    /// The initial contents are *not* charged: the input resides in secondary
    /// memory, and the first access to each block will miss.
    pub fn from_vec(tracker: &Tracker, data: Vec<T>) -> Self {
        let base = tracker.alloc(data.len());
        Self {
            data,
            base,
            tracker: tracker.clone(),
        }
    }

    /// A fresh array of `n` copies of `fill` (uncharged allocation; writing
    /// real contents through [`write`](Self::write) is what costs).
    pub fn filled(tracker: &Tracker, n: usize, fill: T) -> Self {
        Self::from_vec(tracker, vec![fill; n])
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i` (drives the cache).
    #[inline]
    pub fn read(&self, i: usize) -> T {
        self.tracker.access(self.base + i, false);
        self.data[i]
    }

    /// Write element `i` (drives the cache).
    #[inline]
    pub fn write(&mut self, i: usize, v: T) {
        self.tracker.access(self.base + i, true);
        self.data[i] = v;
    }

    /// Swap two elements (two reads + two writes at the two addresses).
    pub fn swap(&mut self, i: usize, j: usize) {
        let a = self.read(i);
        let b = self.read(j);
        self.write(i, b);
        self.write(j, a);
    }

    /// The tracker this array charges.
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Base address (block-aligned).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Uncharged view (test oracles only).
    pub fn peek_slice(&self) -> &[T] {
        &self.data
    }

    /// Uncharged single-element peek (test oracles only).
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Consume, returning the underlying vector (uncharged; callers that want
    /// end-to-end cost must [`Tracker::flush`] first so dirty output blocks
    /// are written back).
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for SimArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArray")
            .field("base", &self.base)
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{CacheConfig, PolicyChoice};

    fn lru_tracker(m: usize, b: usize) -> Tracker {
        Tracker::new(CacheConfig::new(m, b, 4), PolicyChoice::Lru)
    }

    #[test]
    fn reads_and_writes_drive_cache() {
        let t = lru_tracker(8, 4);
        let mut a = SimArray::from_vec(&t, vec![1u64, 2, 3, 4, 5]);
        assert_eq!(a.read(0), 1); // miss
        assert_eq!(a.read(3), 4); // hit (same block)
        a.write(4, 50); // miss (second block)
        assert_eq!(a.peek(4), 50);
        t.flush();
        let s = t.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn two_arrays_share_one_cache() {
        let t = lru_tracker(8, 4); // 2 blocks
        let a = SimArray::from_vec(&t, vec![0u8; 4]);
        let b = SimArray::from_vec(&t, vec![0u8; 4]);
        let c = SimArray::from_vec(&t, vec![0u8; 4]);
        a.read(0);
        b.read(0);
        c.read(0); // evicts a's block
        a.read(0); // miss again
        assert_eq!(t.stats().loads, 4);
    }

    #[test]
    fn swap_is_two_reads_two_writes() {
        let t = lru_tracker(16, 4);
        let mut a = SimArray::from_vec(&t, vec![1u32, 2]);
        a.swap(0, 1);
        assert_eq!(a.peek_slice(), &[2, 1]);
        let s = t.stats();
        assert_eq!(s.accesses, 4);
    }

    #[test]
    fn filled_allocates_uncharged() {
        let t = lru_tracker(16, 4);
        let a: SimArray<u64> = SimArray::filled(&t, 10, 7);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        assert_eq!(t.stats().accesses, 0);
        assert_eq!(a.base() % 4, 0);
    }

    #[test]
    fn into_inner_returns_data() {
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, vec![1, 2, 3]);
        a.write(0, 9);
        assert_eq!(a.into_inner(), vec![9, 2, 3]);
    }
}

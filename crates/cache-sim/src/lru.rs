//! An intrusive fixed-capacity LRU pool with dirty bits.
//!
//! Shared by the unified-LRU and read-write-LRU policies. Slots live in a
//! slab with intrusive prev/next links; `slot_of` (block id → slot) lives in
//! the owning policy so the read-write policy can keep one map per pool.

/// Sentinel for "no slot / no link".
pub const NIL: u32 = u32::MAX;

/// A fixed-capacity LRU pool over block ids.
#[derive(Debug)]
pub struct LruPool {
    cap: usize,
    block: Vec<u32>,
    dirty: Vec<bool>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    free: Vec<u32>,
    len: usize,
}

impl LruPool {
    /// A pool that can hold up to `cap` blocks (cap >= 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "cache pool needs at least one block");
        Self {
            cap,
            block: vec![NIL; cap],
            dirty: vec![false; cap],
            prev: vec![NIL; cap],
            next: vec![NIL; cap],
            head: NIL,
            tail: NIL,
            free: (0..cap as u32).rev().collect(),
            len: 0,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the pool is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// The block stored in `slot`.
    pub fn block_at(&self, slot: u32) -> u32 {
        self.block[slot as usize]
    }

    /// Whether `slot` holds a dirty block.
    pub fn is_dirty(&self, slot: u32) -> bool {
        self.dirty[slot as usize]
    }

    /// Mark `slot` dirty.
    pub fn set_dirty(&mut self, slot: u32) {
        self.dirty[slot as usize] = true;
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    fn link_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Move `slot` to the MRU position.
    pub fn touch(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.link_front(slot);
    }

    /// Evict the LRU block, returning `(block, was_dirty)`.
    pub fn evict_lru(&mut self) -> (u32, bool) {
        let slot = self.tail;
        assert_ne!(slot, NIL, "evict from empty pool");
        let blk = self.block[slot as usize];
        let dirty = self.dirty[slot as usize];
        self.remove(slot);
        (blk, dirty)
    }

    /// The slot currently at the LRU position (NIL if empty).
    pub fn lru_slot(&self) -> u32 {
        self.tail
    }

    /// Insert `block` at the MRU position; the pool must not be full.
    /// Returns the slot used.
    pub fn insert_mru(&mut self, block: u32, dirty: bool) -> u32 {
        let slot = self.free.pop().expect("insert into full pool");
        self.block[slot as usize] = block;
        self.dirty[slot as usize] = dirty;
        self.link_front(slot);
        self.len += 1;
        slot
    }

    /// Remove `slot` from the pool, returning `(block, was_dirty)`.
    pub fn remove(&mut self, slot: u32) -> (u32, bool) {
        self.unlink(slot);
        let blk = self.block[slot as usize];
        let dirty = self.dirty[slot as usize];
        self.block[slot as usize] = NIL;
        self.dirty[slot as usize] = false;
        self.free.push(slot);
        self.len -= 1;
        (blk, dirty)
    }

    /// Drain all resident blocks, returning `(block, was_dirty)` pairs
    /// (used by flush).
    pub fn drain(&mut self) -> Vec<(u32, bool)> {
        let mut out = Vec::with_capacity(self.len);
        while self.tail != NIL {
            out.push(self.evict_lru());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_evict_order() {
        let mut p = LruPool::new(3);
        let s1 = p.insert_mru(10, false);
        let _s2 = p.insert_mru(20, false);
        let _s3 = p.insert_mru(30, false);
        assert!(p.is_full());
        // LRU order is 10; touching 10 makes 20 the LRU.
        p.touch(s1);
        let (blk, dirty) = p.evict_lru();
        assert_eq!(blk, 20);
        assert!(!dirty);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn dirty_bit_travels_with_block() {
        let mut p = LruPool::new(2);
        let s = p.insert_mru(5, false);
        p.set_dirty(s);
        assert!(p.is_dirty(s));
        p.insert_mru(6, false);
        let (blk, dirty) = p.evict_lru();
        assert_eq!(blk, 5);
        assert!(dirty);
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut p = LruPool::new(1);
        let s = p.insert_mru(1, true);
        let (blk, dirty) = p.remove(s);
        assert_eq!((blk, dirty), (1, true));
        assert!(p.is_empty());
        let s2 = p.insert_mru(2, false);
        assert_eq!(p.block_at(s2), 2);
    }

    #[test]
    fn drain_returns_everything_lru_first() {
        let mut p = LruPool::new(3);
        p.insert_mru(1, false);
        p.insert_mru(2, true);
        p.insert_mru(3, false);
        let drained = p.drain();
        assert_eq!(drained, vec![(1, false), (2, true), (3, false)]);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn evict_from_empty_panics() {
        let mut p = LruPool::new(1);
        p.evict_lru();
    }

    #[test]
    fn touch_mru_is_noop() {
        let mut p = LruPool::new(2);
        p.insert_mru(1, false);
        let s2 = p.insert_mru(2, false);
        p.touch(s2);
        assert_eq!(p.evict_lru().0, 1);
    }

    #[test]
    fn lru_slot_tracks_tail() {
        let mut p = LruPool::new(2);
        assert_eq!(p.lru_slot(), NIL);
        let s1 = p.insert_mru(1, false);
        p.insert_mru(2, false);
        assert_eq!(p.lru_slot(), s1);
    }
}

//! Cache-complexity tallies.

use asym_model::CostReport;

/// Counters maintained by every cache policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total cell accesses (reads + writes issued by the program).
    pub accesses: u64,
    /// Accesses served from the cache.
    pub hits: u64,
    /// Block loads from secondary memory (each cost 1).
    pub loads: u64,
    /// Dirty blocks written back to secondary memory (each cost ω).
    pub writebacks: u64,
}

impl CacheStats {
    /// Asymmetric I/O cost `loads + omega * writebacks`.
    pub fn cost(&self, omega: u64) -> u64 {
        self.loads + omega * self.writebacks
    }

    /// Miss rate over all accesses (0 when nothing was accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.accesses - self.hits) as f64 / self.accesses as f64
        }
    }

    /// As a [`CostReport`] with loads as reads and writebacks as writes.
    pub fn report(&self, omega: u64) -> CostReport {
        CostReport::new(self.loads, self.writebacks, omega)
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + o.accesses,
            hits: self.hits + o.hits,
            loads: self.loads + o.loads,
            writebacks: self.writebacks + o.writebacks,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accesses={} hits={} loads={} writebacks={}",
            self.accesses, self.hits, self.loads, self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weighs_writebacks() {
        let s = CacheStats {
            accesses: 100,
            hits: 90,
            loads: 10,
            writebacks: 3,
        };
        assert_eq!(s.cost(8), 10 + 24);
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        let r = s.report(8);
        assert_eq!(r.reads, 10);
        assert_eq!(r.writes, 3);
    }

    #[test]
    fn empty_stats_have_zero_miss_rate() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(CacheStats::default().cost(4), 0);
    }

    #[test]
    fn merged_sums_fields() {
        let a = CacheStats {
            accesses: 1,
            hits: 2,
            loads: 3,
            writebacks: 4,
        };
        let m = a.merged(&a);
        assert_eq!(m.accesses, 2);
        assert_eq!(m.writebacks, 8);
    }

    #[test]
    fn display_contains_counts() {
        let s = CacheStats {
            accesses: 5,
            hits: 4,
            loads: 1,
            writebacks: 0,
        }
        .to_string();
        assert!(s.contains("accesses=5"));
        assert!(s.contains("loads=1"));
    }
}

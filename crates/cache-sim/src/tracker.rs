//! The access tracker: address allocation + policy dispatch.

use crate::min::{simulate_min, MinVariant};
use crate::policy::{LruCache, RwLruCache};
use crate::stats::CacheStats;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a simulated cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache size in cells (one cell per array element).
    pub m: usize,
    /// Block (cache line) size in cells.
    pub b: usize,
    /// Write (dirty-eviction) cost relative to a block read.
    pub omega: u64,
}

impl CacheConfig {
    /// A cache of `m` cells in blocks of `b` cells with write cost `omega`.
    pub fn new(m: usize, b: usize, omega: u64) -> Self {
        assert!(b >= 1, "B must be positive");
        assert!(m >= b, "M must hold at least one block");
        assert!(omega >= 1, "omega must be at least 1");
        Self { m, b, omega }
    }

    /// Number of blocks the cache holds.
    pub fn capacity_blocks(&self) -> usize {
        self.m / self.b
    }

    /// Whether the tall-cache assumption M = Ω(B²) holds (the paper assumes
    /// it; experiments print a warning when violated).
    pub fn is_tall(&self) -> bool {
        self.m >= self.b * self.b
    }
}

/// Which replacement policy a [`Tracker`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Classic unified LRU with dirty bits.
    Lru,
    /// The paper's read-write LRU: two pools of `M/B` blocks **each**
    /// (Lemma 2.1's M_L is the per-pool size).
    RwLru,
    /// Record the block trace; replay it later through [`simulate_min`].
    Record,
    /// No accounting at all (fast correctness mode).
    Null,
}

enum PolicyImpl {
    Lru(LruCache),
    RwLru(RwLruCache),
    Record(Vec<(u32, bool)>),
    Null,
}

struct TrackerInner {
    cfg: CacheConfig,
    next_addr: usize,
    policy: PolicyImpl,
}

/// Shared handle to a simulated cache. All [`crate::SimArray`]s created from
/// one tracker live in the same address space and contend for the same cache.
#[derive(Clone)]
pub struct Tracker {
    inner: Rc<RefCell<TrackerInner>>,
}

impl Tracker {
    /// Build a tracker with the given policy.
    pub fn new(cfg: CacheConfig, choice: PolicyChoice) -> Self {
        let policy = match choice {
            PolicyChoice::Lru => PolicyImpl::Lru(LruCache::new(cfg.capacity_blocks())),
            PolicyChoice::RwLru => PolicyImpl::RwLru(RwLruCache::new(cfg.capacity_blocks())),
            PolicyChoice::Record => PolicyImpl::Record(Vec::new()),
            PolicyChoice::Null => PolicyImpl::Null,
        };
        Self {
            inner: Rc::new(RefCell::new(TrackerInner {
                cfg,
                next_addr: 0,
                policy,
            })),
        }
    }

    /// A tracker that does no accounting (fast correctness runs).
    pub fn null() -> Self {
        Self::new(CacheConfig::new(1, 1, 1), PolicyChoice::Null)
    }

    /// This tracker's cache parameters.
    pub fn cfg(&self) -> CacheConfig {
        self.inner.borrow().cfg
    }

    /// Allocate `cells` block-aligned cells of simulated address space.
    ///
    /// Alignment matters: the paper's layouts assume arrays start on block
    /// boundaries, so a B-cell chunk of an array occupies one cache block.
    pub fn alloc(&self, cells: usize) -> usize {
        let mut inner = self.inner.borrow_mut();
        let b = inner.cfg.b;
        let base = inner.next_addr.div_ceil(b) * b;
        inner.next_addr = base + cells;
        base
    }

    /// Drive one access to cell `addr`.
    #[inline]
    pub fn access(&self, addr: usize, is_write: bool) {
        let mut inner = self.inner.borrow_mut();
        let block = (addr / inner.cfg.b) as u32;
        match &mut inner.policy {
            PolicyImpl::Lru(c) => c.access(block, is_write),
            PolicyImpl::RwLru(c) => c.access(block, is_write),
            PolicyImpl::Record(t) => t.push((block, is_write)),
            PolicyImpl::Null => {}
        }
    }

    /// Write back all dirty blocks (end-of-run charge). No-op for
    /// record/null trackers.
    pub fn flush(&self) {
        let mut inner = self.inner.borrow_mut();
        match &mut inner.policy {
            PolicyImpl::Lru(c) => c.flush(),
            PolicyImpl::RwLru(c) => c.flush(),
            _ => {}
        }
    }

    /// Current tallies (zeroes for record/null trackers).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.borrow();
        match &inner.policy {
            PolicyImpl::Lru(c) => c.stats(),
            PolicyImpl::RwLru(c) => c.stats(),
            PolicyImpl::Record(t) => CacheStats {
                accesses: t.len() as u64,
                ..CacheStats::default()
            },
            PolicyImpl::Null => CacheStats::default(),
        }
    }

    /// Asymmetric cost so far under this cache's ω.
    pub fn cost(&self) -> u64 {
        let omega = self.cfg().omega;
        self.stats().cost(omega)
    }

    /// Take the recorded trace (empties it). Panics for non-record trackers.
    pub fn take_trace(&self) -> Vec<(u32, bool)> {
        let mut inner = self.inner.borrow_mut();
        match &mut inner.policy {
            PolicyImpl::Record(t) => std::mem::take(t),
            _ => panic!("take_trace on a non-recording tracker"),
        }
    }

    /// Replay a recorded trace through offline MIN at this tracker's
    /// capacity.
    pub fn simulate_min_on(&self, trace: &[(u32, bool)], variant: MinVariant) -> CacheStats {
        simulate_min(trace, self.cfg().capacity_blocks(), variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_block_aligned() {
        let t = Tracker::new(CacheConfig::new(64, 8, 4), PolicyChoice::Lru);
        let a = t.alloc(5);
        let b = t.alloc(3);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn lru_tracker_counts_accesses() {
        let t = Tracker::new(CacheConfig::new(16, 4, 2), PolicyChoice::Lru);
        let base = t.alloc(8);
        t.access(base, false); // miss
        t.access(base + 1, false); // hit (same block)
        t.access(base + 4, true); // miss (next block)
        t.flush();
        let s = t.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(t.cost(), 2 + 2);
    }

    #[test]
    fn record_tracker_captures_block_trace() {
        let t = Tracker::new(CacheConfig::new(16, 4, 2), PolicyChoice::Record);
        let base = t.alloc(8);
        t.access(base, false);
        t.access(base + 5, true);
        let trace = t.take_trace();
        assert_eq!(
            trace,
            vec![(base as u32 / 4, false), (base as u32 / 4 + 1, true)]
        );
        assert!(t.take_trace().is_empty(), "trace was taken");
    }

    #[test]
    #[should_panic(expected = "non-recording")]
    fn take_trace_panics_on_lru() {
        let t = Tracker::new(CacheConfig::new(16, 4, 2), PolicyChoice::Lru);
        let _ = t.take_trace();
    }

    #[test]
    fn null_tracker_is_free() {
        let t = Tracker::null();
        let base = t.alloc(4);
        for i in 0..4 {
            t.access(base + i, true);
        }
        t.flush();
        assert_eq!(t.stats(), CacheStats::default());
    }

    #[test]
    fn rwlru_tracker_routes_to_split_pools() {
        let t = Tracker::new(CacheConfig::new(8, 4, 4), PolicyChoice::RwLru);
        let base = t.alloc(16);
        t.access(base, false);
        t.access(base + 4, true);
        t.access(base, false); // still resident in read pool
        let s = t.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn tall_cache_predicate() {
        assert!(CacheConfig::new(64, 8, 2).is_tall());
        assert!(!CacheConfig::new(32, 8, 2).is_tall());
    }

    #[test]
    fn min_replay_through_tracker() {
        let t = Tracker::new(CacheConfig::new(8, 4, 2), PolicyChoice::Record);
        let base = t.alloc(16);
        for _ in 0..3 {
            for i in 0..4 {
                t.access(base + i * 4, false);
            }
        }
        let trace = t.take_trace();
        let s = t.simulate_min_on(&trace, MinVariant::Classic);
        assert!(s.loads >= 4, "4 distinct blocks must each load once");
        assert!(s.loads < 12, "MIN should retain some blocks across rounds");
    }
}

//! Online replacement policies: unified LRU and the paper's read-write LRU.

use crate::lru::{LruPool, NIL};
use crate::stats::CacheStats;

/// Map from block id to slot id, grown on demand. One per pool.
#[derive(Debug, Default)]
struct SlotMap {
    slots: Vec<u32>,
}

impl SlotMap {
    fn get(&self, block: u32) -> u32 {
        self.slots.get(block as usize).copied().unwrap_or(NIL)
    }

    fn set(&mut self, block: u32, slot: u32) {
        let idx = block as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, NIL);
        }
        self.slots[idx] = slot;
    }

    fn clear(&mut self, block: u32) {
        if (block as usize) < self.slots.len() {
            self.slots[block as usize] = NIL;
        }
    }
}

/// Classic fully-associative LRU with dirty bits, charging 1 per load and ω
/// per dirty-block writeback.
///
/// This is the policy the symmetric Ideal-Cache model is 2-approximated by;
/// under the *asymmetric* model the paper notes plain LRU is **not**
/// competitive (motivating [`RwLruCache`]), and experiment E7 measures that
/// gap.
#[derive(Debug)]
pub struct LruCache {
    pool: LruPool,
    map: SlotMap,
    stats: CacheStats,
}

impl LruCache {
    /// A cache holding `capacity_blocks` blocks.
    pub fn new(capacity_blocks: usize) -> Self {
        Self {
            pool: LruPool::new(capacity_blocks),
            map: SlotMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Drive one access to `block`.
    pub fn access(&mut self, block: u32, is_write: bool) {
        self.stats.accesses += 1;
        let slot = self.map.get(block);
        if slot != NIL {
            self.stats.hits += 1;
            self.pool.touch(slot);
            if is_write {
                self.pool.set_dirty(slot);
            }
            return;
        }
        // Miss: make room, then load.
        if self.pool.is_full() {
            let (victim, dirty) = self.pool.evict_lru();
            self.map.clear(victim);
            if dirty {
                self.stats.writebacks += 1;
            }
        }
        self.stats.loads += 1;
        let slot = self.pool.insert_mru(block, is_write);
        self.map.set(block, slot);
    }

    /// Write back all dirty blocks and empty the cache.
    pub fn flush(&mut self) {
        for (blk, dirty) in self.pool.drain() {
            self.map.clear(blk);
            if dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Current tallies.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The paper's read-write LRU policy (Lemma 2.1).
///
/// Two equal-sized pools. Reads are served from the read pool; writes from
/// the write pool. A read of a block resident only in the write pool copies
/// it into the read pool; a write of a block resident only in the read pool
/// *moves* it to the write pool (the read copy is invalidated so reads never
/// observe stale data). Blocks in the read pool are always clean; blocks in
/// the write pool are always dirty:
///
/// * read-pool evictions are free (clean);
/// * write-pool evictions write back (cost ω);
/// * loads from secondary memory cost 1, whichever pool they fill.
#[derive(Debug)]
pub struct RwLruCache {
    read_pool: LruPool,
    write_pool: LruPool,
    read_map: SlotMap,
    write_map: SlotMap,
    stats: CacheStats,
}

impl RwLruCache {
    /// A cache with `pool_blocks` blocks in **each** of the two pools
    /// (matching Lemma 2.1's "cache sizes (read and write pools) M_L").
    pub fn new(pool_blocks: usize) -> Self {
        Self {
            read_pool: LruPool::new(pool_blocks),
            write_pool: LruPool::new(pool_blocks),
            read_map: SlotMap::default(),
            write_map: SlotMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// A cache with explicit per-pool capacities (ablation experiments).
    pub fn with_pools(read_blocks: usize, write_blocks: usize) -> Self {
        Self {
            read_pool: LruPool::new(read_blocks),
            write_pool: LruPool::new(write_blocks),
            read_map: SlotMap::default(),
            write_map: SlotMap::default(),
            stats: CacheStats::default(),
        }
    }

    fn make_room_read(&mut self) {
        if self.read_pool.is_full() {
            let (victim, dirty) = self.read_pool.evict_lru();
            debug_assert!(!dirty, "read pool must stay clean");
            self.read_map.clear(victim);
        }
    }

    fn make_room_write(&mut self) {
        if self.write_pool.is_full() {
            let (victim, dirty) = self.write_pool.evict_lru();
            debug_assert!(dirty, "write pool entries are always dirty");
            self.write_map.clear(victim);
            if dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Drive one access to `block`.
    pub fn access(&mut self, block: u32, is_write: bool) {
        self.stats.accesses += 1;
        if is_write {
            let wslot = self.write_map.get(block);
            if wslot != NIL {
                self.stats.hits += 1;
                self.write_pool.touch(wslot);
                return;
            }
            let rslot = self.read_map.get(block);
            if rslot != NIL {
                // Move read-pool copy into the write pool (internal transfer,
                // no secondary-memory traffic). Invalidate the read copy so
                // later reads cannot see stale data.
                self.stats.hits += 1;
                self.read_pool.remove(rslot);
                self.read_map.clear(block);
                self.make_room_write();
                let slot = self.write_pool.insert_mru(block, true);
                self.write_map.set(block, slot);
                return;
            }
            // Write miss: load the block into the write pool (write-allocate).
            self.make_room_write();
            self.stats.loads += 1;
            let slot = self.write_pool.insert_mru(block, true);
            self.write_map.set(block, slot);
        } else {
            let rslot = self.read_map.get(block);
            if rslot != NIL {
                self.stats.hits += 1;
                self.read_pool.touch(rslot);
                return;
            }
            let wslot = self.write_map.get(block);
            if wslot != NIL {
                // Serve the read from the dirty copy in the write pool.
                // (The paper copies the block into the read pool; copying
                // would leave a copy that later writes silently make stale, so
                // we serve in place — cost accounting is identical: no
                // secondary-memory transfer is charged either way.)
                self.stats.hits += 1;
                self.write_pool.touch(wslot);
                return;
            }
            // Read miss: load into the read pool.
            self.make_room_read();
            self.stats.loads += 1;
            let slot = self.read_pool.insert_mru(block, false);
            self.read_map.set(block, slot);
        }
    }

    /// Write back the whole write pool and empty both pools.
    pub fn flush(&mut self) {
        for (blk, _) in self.read_pool.drain() {
            self.read_map.clear(blk);
        }
        for (blk, dirty) in self.write_pool.drain() {
            self.write_map.clear(blk);
            debug_assert!(dirty);
            self.stats.writebacks += 1;
        }
    }

    /// Current tallies.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_counts_hits_and_misses() {
        let mut c = LruCache::new(2);
        c.access(0, false); // miss
        c.access(0, false); // hit
        c.access(1, false); // miss
        c.access(2, false); // miss evicting 0 (clean)
        c.access(0, false); // miss evicting 1
        let s = c.stats();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.hits, 1);
        assert_eq!(s.loads, 4);
        assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn lru_charges_dirty_evictions() {
        let mut c = LruCache::new(1);
        c.access(0, true); // load, dirty
        c.access(1, false); // evicts dirty 0 -> writeback
        c.access(2, false); // evicts clean 1 -> free
        let s = c.stats();
        assert_eq!(s.loads, 3);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.cost(10), 3 + 10);
    }

    #[test]
    fn lru_flush_writes_back_dirty_only() {
        let mut c = LruCache::new(4);
        c.access(0, true);
        c.access(1, false);
        c.access(2, true);
        c.flush();
        assert_eq!(c.stats().writebacks, 2);
        // After flush everything misses again.
        c.access(0, false);
        assert_eq!(c.stats().loads, 4);
    }

    #[test]
    fn lru_write_hit_marks_dirty() {
        let mut c = LruCache::new(2);
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.flush();
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn rwlru_read_and_write_pools_are_separate() {
        let mut c = RwLruCache::new(1);
        c.access(0, false); // read pool: {0}
        c.access(1, true); // write pool: {1}
        c.access(0, false); // hit in read pool
        c.access(1, true); // hit in write pool
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.loads, 2);
        assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn rwlru_write_pool_eviction_charges_writeback() {
        let mut c = RwLruCache::new(1);
        c.access(0, true);
        c.access(1, true); // evicts dirty 0
        let s = c.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn rwlru_read_pool_eviction_is_free() {
        let mut c = RwLruCache::new(1);
        c.access(0, false);
        c.access(1, false); // evicts clean 0, no writeback
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().loads, 2);
    }

    #[test]
    fn rwlru_write_after_read_moves_block() {
        let mut c = RwLruCache::new(2);
        c.access(0, false); // read pool
        c.access(0, true); // moved to write pool (hit, no load)
        let s = c.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.hits, 1);
        // Read again: served from the write pool (dirty copy), no load.
        c.access(0, false);
        assert_eq!(c.stats().hits, 2);
        c.flush();
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn rwlru_flush_empties_both_pools() {
        let mut c = RwLruCache::new(2);
        c.access(0, false);
        c.access(1, true);
        c.flush();
        assert_eq!(c.stats().writebacks, 1);
        c.access(0, false);
        c.access(1, false);
        assert_eq!(c.stats().loads, 4);
    }

    #[test]
    fn rwlru_with_asymmetric_pools() {
        let mut c = RwLruCache::with_pools(2, 1);
        c.access(0, true);
        c.access(1, true); // evicts 0
        c.access(2, false);
        c.access(3, false); // read pool holds 2 and 3
        c.access(2, false);
        let s = c.stats();
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.hits, 1);
    }
}

//! Offline MIN (Belady) simulation on a recorded trace.
//!
//! The Asymmetric Ideal-Cache model assumes an optimal offline replacement
//! policy. The true asymmetric optimum is not known to be efficiently
//! computable, so experiments bracket it with Belady's MIN rule
//! (furthest-next-use), which is optimal for miss count in the symmetric
//! model, plus a clean-first variant that prefers evicting clean blocks to
//! avoid ω-cost writebacks. Experiment E7 reports the read-write LRU cost
//! against both brackets (Lemma 2.1).

use crate::stats::CacheStats;

/// Which victim-selection rule the offline simulation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinVariant {
    /// Classic Belady: evict the resident block whose next use is furthest.
    Classic,
    /// Prefer clean blocks (avoiding writebacks); among the preferred class
    /// evict the furthest-next-use block.
    CleanFirst,
}

const NEVER: u64 = u64::MAX;

/// Simulate an offline policy on `trace` with a cache of `capacity_blocks`,
/// including a final flush of dirty blocks.
///
/// Each trace element is `(block, is_write)`.
pub fn simulate_min(
    trace: &[(u32, bool)],
    capacity_blocks: usize,
    variant: MinVariant,
) -> CacheStats {
    assert!(capacity_blocks >= 1);
    // Precompute, for each access, the position of the next access to the
    // same block (NEVER if none).
    let max_block = trace.iter().map(|&(b, _)| b).max().unwrap_or(0) as usize;
    let mut last_seen: Vec<u64> = vec![NEVER; max_block + 1];
    let mut next_use: Vec<u64> = vec![NEVER; trace.len()];
    for (i, &(b, _)) in trace.iter().enumerate().rev() {
        next_use[i] = last_seen[b as usize];
        last_seen[b as usize] = i as u64;
    }

    // Resident set as parallel vectors (linear-scan eviction; capacities in
    // the experiments are small relative to trace length).
    let mut res_block: Vec<u32> = Vec::with_capacity(capacity_blocks);
    let mut res_dirty: Vec<bool> = Vec::with_capacity(capacity_blocks);
    let mut res_next: Vec<u64> = Vec::with_capacity(capacity_blocks);
    let mut where_is: Vec<u32> = vec![u32::MAX; max_block + 1];

    let mut stats = CacheStats::default();

    for (i, &(b, is_write)) in trace.iter().enumerate() {
        stats.accesses += 1;
        let slot = where_is[b as usize];
        if slot != u32::MAX {
            let s = slot as usize;
            stats.hits += 1;
            res_dirty[s] |= is_write;
            res_next[s] = next_use[i];
            continue;
        }
        if res_block.len() == capacity_blocks {
            let victim = pick_victim(&res_dirty, &res_next, variant);
            if res_dirty[victim] {
                stats.writebacks += 1;
            }
            let vb = res_block[victim] as usize;
            where_is[vb] = u32::MAX;
            // swap-remove; fix the moved entry's index.
            res_block.swap_remove(victim);
            res_dirty.swap_remove(victim);
            res_next.swap_remove(victim);
            if victim < res_block.len() {
                where_is[res_block[victim] as usize] = victim as u32;
            }
        }
        stats.loads += 1;
        where_is[b as usize] = res_block.len() as u32;
        res_block.push(b);
        res_dirty.push(is_write);
        res_next.push(next_use[i]);
    }

    // Final flush: dirty residents must reach secondary memory.
    stats.writebacks += res_dirty.iter().filter(|&&d| d).count() as u64;
    stats
}

fn pick_victim(dirty: &[bool], next: &[u64], variant: MinVariant) -> usize {
    match variant {
        MinVariant::Classic => argmax_next(next, |_| true, dirty),
        MinVariant::CleanFirst => {
            if dirty.iter().any(|&d| !d) {
                argmax_next(next, |i| !dirty[i], dirty)
            } else {
                argmax_next(next, |_| true, dirty)
            }
        }
    }
}

fn argmax_next(next: &[u64], eligible: impl Fn(usize) -> bool, _dirty: &[bool]) -> usize {
    let mut best = usize::MAX;
    let mut best_next = 0u64;
    for (i, &nu) in next.iter().enumerate() {
        if eligible(i) && (best == usize::MAX || nu > best_next) {
            best = i;
            best_next = nu;
        }
    }
    debug_assert_ne!(best, usize::MAX);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruCache;

    fn reads(blocks: &[u32]) -> Vec<(u32, bool)> {
        blocks.iter().map(|&b| (b, false)).collect()
    }

    #[test]
    fn min_beats_lru_on_cyclic_scan() {
        // Cyclic scan over 3 blocks with capacity 2: LRU misses every time,
        // MIN hits some.
        let trace = reads(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let min = simulate_min(&trace, 2, MinVariant::Classic);
        let mut lru = LruCache::new(2);
        for &(b, w) in &trace {
            lru.access(b, w);
        }
        lru.flush();
        assert!(
            min.loads < lru.stats().loads,
            "MIN {min:?} vs LRU {:?}",
            lru.stats()
        );
    }

    #[test]
    fn min_is_optimal_on_repeat_access() {
        let trace = reads(&[0, 0, 0, 0]);
        let s = simulate_min(&trace, 1, MinVariant::Classic);
        assert_eq!(s.loads, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn dirty_evictions_and_flush_counted() {
        // Write block 0, then stream 1 and 2 through a 1-block cache.
        let trace = vec![(0, true), (1, false), (2, true)];
        let s = simulate_min(&trace, 1, MinVariant::Classic);
        assert_eq!(s.loads, 3);
        // 0 written back on eviction; 2 written back at flush.
        assert_eq!(s.writebacks, 2);
    }

    #[test]
    fn clean_first_avoids_writebacks() {
        // Cache of 2 holds dirty 0 and clean 1; accessing 2 should evict the
        // clean block under CleanFirst even though 0 is further in future.
        let trace = vec![(0, true), (1, false), (2, false), (1, false), (0, false)];
        let clean = simulate_min(&trace, 2, MinVariant::CleanFirst);
        let classic = simulate_min(&trace, 2, MinVariant::Classic);
        assert!(clean.writebacks <= classic.writebacks);
        // CleanFirst: evicting clean 1 costs an extra load later but no
        // writeback mid-run.
        assert_eq!(clean.writebacks, 1); // only the final flush of 0
    }

    #[test]
    fn capacity_one_alternating_blocks() {
        let trace = reads(&[0, 1, 0, 1]);
        let s = simulate_min(&trace, 1, MinVariant::Classic);
        assert_eq!(s.loads, 4);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn min_classic_never_exceeds_lru_loads_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let trace: Vec<(u32, bool)> = (0..400)
                .map(|_| (rng.gen_range(0..12u32), rng.gen_bool(0.3)))
                .collect();
            let cap = rng.gen_range(1..6usize);
            let min = simulate_min(&trace, cap, MinVariant::Classic);
            let mut lru = LruCache::new(cap);
            for &(b, w) in &trace {
                lru.access(b, w);
            }
            lru.flush();
            assert!(
                min.loads <= lru.stats().loads,
                "Belady must not load more than LRU (cap {cap})"
            );
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = simulate_min(&[], 4, MinVariant::Classic);
        assert_eq!(s, CacheStats::default());
    }
}

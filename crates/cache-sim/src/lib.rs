//! # cache-sim — the (Asymmetric) Ideal-Cache model
//!
//! An executable version of the Asymmetric Ideal-Cache model of §2 of
//! *Sorting with Asymmetric Read and Write Costs* (SPAA 2015), used by the
//! cache-oblivious algorithms of §5.
//!
//! The model: all addressable memory lives in secondary memory, partitioned
//! into blocks of `B` cells; up to `M/B` blocks are resident in the cache.
//! A reference to a non-resident block loads it (cost 1). Evicting a *clean*
//! block is free beyond that load; evicting a *dirty* block additionally
//! writes it back (cost ω).
//!
//! Components:
//!
//! * [`SimArray`] — a typed array in the simulated address space; every
//!   `read`/`write` drives the attached [`Tracker`].
//! * [`Tracker`] — dispatches accesses to a replacement policy:
//!   * [`policy::LruCache`] — classic unified LRU with dirty bits;
//!   * [`policy::RwLruCache`] — the paper's **read-write LRU** (Lemma 2.1):
//!     separate equal-sized read and write pools;
//!   * trace recording for offline policies;
//!   * `Null` — no accounting (fast correctness runs).
//! * [`min`] — offline Belady MIN simulation on a recorded trace (the
//!   stand-in bracket for the ideal policy), in classic and clean-first
//!   variants.
//!
//! Cost accounting is uniform: `loads + omega * writebacks`, where writebacks
//! include an explicit end-of-run [`Tracker::flush`] so algorithms that leave
//! their output dirty in cache are charged for materializing it.

pub mod array;
pub mod lru;
pub mod min;
pub mod policy;
pub mod stats;
pub mod tracker;

pub use array::SimArray;
pub use min::{simulate_min, MinVariant};
pub use stats::CacheStats;
pub use tracker::{CacheConfig, PolicyChoice, Tracker};

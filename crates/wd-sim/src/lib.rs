//! # wd-sim — the Asymmetric PRAM work-depth framework
//!
//! §2 of the paper analyzes parallel algorithms by *work* (total operation
//! cost, with writes weighted ω) and *depth* (the longest chain of
//! dependences, again with writes costing ω). This crate provides:
//!
//! * [`Cost`] — a compositional work-depth cost algebra: sequential
//!   composition adds depth, parallel composition takes the max. The §3
//!   PRAM algorithms in `asym-core` compute their costs with it while they
//!   compute their results, so the reported depth is *measured from the
//!   actual dependence structure*, not transcribed from the paper.
//! * [`brent`] — Brent's-theorem time bounds `T(n,p) = (ω·w + r)/p + d`.
//! * [`sched`] — fork-join task trees and a randomized work-stealing
//!   scheduler simulation, used to check the §2 scheduler bounds
//!   (`Qp ≤ Q1 + O(p·D·M/B)` rests on "#steals = O(pD) w.h.p.", which is the
//!   quantity the simulation measures).

pub mod brent;
pub mod cost;
pub mod sched;

pub use brent::time_on;
pub use cost::Cost;
pub use sched::{
    simulate_work_stealing, simulate_work_stealing_traced, StealStats, StealTrace, Task,
};

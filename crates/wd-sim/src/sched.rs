//! Fork-join task trees and a randomized work-stealing scheduler simulation.
//!
//! The §2 private-cache bound `Qp ≤ Q1 + O(p·D·M/B)` rests on the classic
//! work-stealing fact that the number of steals is `O(pD)` w.h.p., each steal
//! charged `O(M/B)` cache-warm-up misses (pessimistically `2M/B` in the
//! asymmetric setting, since stolen lines may be dirty). The simulation here
//! executes a fork-join tree on `p` simulated processors with randomized
//! stealing and *measures* the number of steals, which experiment E12
//! compares against `p · D`.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// A fork-join computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Task {
    /// A sequential strand of `w` unit-time operations.
    Work(u64),
    /// Children executed one after another.
    Seq(Vec<Task>),
    /// Children executed in parallel (joined at the end).
    Par(Vec<Task>),
}

impl Task {
    /// Total work.
    pub fn work(&self) -> u64 {
        match self {
            Task::Work(w) => *w,
            Task::Seq(cs) | Task::Par(cs) => cs.iter().map(Task::work).sum(),
        }
    }

    /// Critical-path length.
    pub fn depth(&self) -> u64 {
        match self {
            Task::Work(w) => *w,
            Task::Seq(cs) => cs.iter().map(Task::depth).sum(),
            Task::Par(cs) => cs.iter().map(Task::depth).max().unwrap_or(0),
        }
    }

    /// The task tree of a phased lane algorithm: a sequence of barriers,
    /// each phase forking one strand per lane. `phase_lane_work[p][w]` is
    /// the ω-weighted work of lane `w` in phase `p` (zero-work strands are
    /// allowed — the simulators treat them as structurally empty). This is
    /// the shape `asym-core::par` hands to the scheduler: measured per-lane
    /// transfer costs become leaf weights, so the simulated execution time
    /// reflects the algorithm's actual lane imbalance.
    pub fn phases(phase_lane_work: &[Vec<u64>]) -> Task {
        Task::Seq(
            phase_lane_work
                .iter()
                .map(|lanes| Task::Par(lanes.iter().map(|&w| Task::Work(w)).collect()))
                .collect(),
        )
    }

    /// A balanced binary fork-join tree with `leaves` leaves of `leaf_work`
    /// unit operations each, plus `spawn_work` at every internal node
    /// (the shape of a parallel divide-and-conquer like mergesort).
    pub fn balanced(leaves: usize, leaf_work: u64, spawn_work: u64) -> Task {
        if leaves <= 1 {
            return Task::Work(leaf_work);
        }
        let left = leaves / 2;
        Task::Seq(vec![
            Task::Work(spawn_work),
            Task::Par(vec![
                Task::balanced(left, leaf_work, spawn_work),
                Task::balanced(leaves - left, leaf_work, spawn_work),
            ]),
        ])
    }
}

/// What the work-stealing simulation measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts (victim deque empty).
    pub failed_steals: u64,
    /// Simulated time steps until completion.
    pub time: u64,
    /// Total unit work in the tree (for utilization).
    pub work: u64,
    /// Critical-path length of the tree.
    pub depth: u64,
}

impl StealStats {
    /// Fraction of processor-steps spent on useful work.
    pub fn utilization(&self, p: usize) -> f64 {
        if self.time == 0 {
            return 1.0;
        }
        self.work as f64 / (self.time as f64 * p as f64)
    }
}

/// A work-stealing run plus the per-processor steal attribution the §2
/// cache-warm-up charge needs: `Qp ≤ Q1 + O(p·D·M/B)` charges `O(M/B)`
/// misses to the *thief* of each steal, so a cost model folding the charge
/// into per-lane statistics has to know which processor stole how often —
/// the aggregate in [`StealStats::steals`] is not enough.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StealTrace {
    /// The aggregate measurements (identical to what
    /// [`simulate_work_stealing`] returns for the same task, `p` and rng).
    pub stats: StealStats,
    /// Successful steals per thief processor (`steals_by_thief[w]` sums to
    /// `stats.steals`).
    pub steals_by_thief: Vec<u64>,
}

// ---- simulation internals ---------------------------------------------------

#[derive(Clone, Debug)]
enum NodeKind {
    Work(u64),
    Seq(Vec<usize>),
    Par(Vec<usize>),
}

struct Arena {
    kind: Vec<NodeKind>,
    parent: Vec<Option<(usize, usize)>>, // (parent id, index within parent)
}

impl Arena {
    fn build(task: &Task) -> (Arena, usize) {
        let mut arena = Arena {
            kind: Vec::new(),
            parent: Vec::new(),
        };
        let root = arena.add(task);
        (arena, root)
    }

    fn add(&mut self, task: &Task) -> usize {
        let id = self.kind.len();
        self.kind.push(NodeKind::Work(0)); // placeholder
        self.parent.push(None);
        let kind = match task {
            Task::Work(w) => NodeKind::Work(*w),
            Task::Seq(cs) => {
                let ids: Vec<usize> = cs.iter().map(|c| self.add(c)).collect();
                for (i, &c) in ids.iter().enumerate() {
                    self.parent[c] = Some((id, i));
                }
                NodeKind::Seq(ids)
            }
            Task::Par(cs) => {
                let ids: Vec<usize> = cs.iter().map(|c| self.add(c)).collect();
                for (i, &c) in ids.iter().enumerate() {
                    self.parent[c] = Some((id, i));
                }
                NodeKind::Par(ids)
            }
        };
        self.kind[id] = kind;
        id
    }
}

/// Simulate randomized work stealing of `task` on `p` processors.
///
/// Each time step, every busy processor executes one unit of work; every idle
/// processor first tries its own deque, then makes one steal attempt at a
/// uniformly random victim (taking from the top, i.e. the oldest spawned
/// subtask). Structural operations (forking, joining) are free, matching the
/// conventions of the analysis.
pub fn simulate_work_stealing(task: &Task, p: usize, rng: &mut StdRng) -> StealStats {
    simulate_work_stealing_traced(task, p, rng).stats
}

/// [`simulate_work_stealing`] keeping the per-thief steal counts (same rng
/// draws, so the aggregate [`StealStats`] are bit-identical to the untraced
/// call). See [`StealTrace`].
pub fn simulate_work_stealing_traced(task: &Task, p: usize, rng: &mut StdRng) -> StealTrace {
    assert!(p >= 1);
    let (arena, root) = Arena::build(task);
    let n = arena.kind.len();
    let mut join_remaining: Vec<usize> = vec![0; n];

    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); p];
    // What each processor is executing: Some((node, remaining_work)).
    let mut current: Vec<Option<(usize, u64)>> = vec![None; p];
    let mut done = false;

    let mut stats = StealStats {
        work: task.work(),
        depth: task.depth(),
        ..StealStats::default()
    };
    let mut steals_by_thief = vec![0u64; p];

    // Descend from `node` to its leftmost runnable leaf, spawning parallel
    // siblings onto `deque`. `Ok((leaf, w))` is a work leaf that takes time;
    // `Err(inner)` is a structurally-empty node (empty Seq/Par or zero-work
    // leaf) whose completion must propagate without consuming a time step.
    fn activate(
        arena: &Arena,
        join_remaining: &mut [usize],
        deque: &mut VecDeque<usize>,
        mut node: usize,
    ) -> std::result::Result<(usize, u64), usize> {
        loop {
            match &arena.kind[node] {
                NodeKind::Work(0) => return Err(node),
                NodeKind::Work(w) => return Ok((node, *w)),
                NodeKind::Seq(cs) => {
                    if cs.is_empty() {
                        return Err(node);
                    }
                    node = cs[0];
                }
                NodeKind::Par(cs) => {
                    if cs.is_empty() {
                        return Err(node);
                    }
                    join_remaining[node] = cs.len();
                    for &c in cs[1..].iter().rev() {
                        deque.push_back(c);
                    }
                    node = cs[0];
                }
            }
        }
    }

    // Propagate completion of `node` upward; returns the next node to run if
    // the completing processor picks up a continuation, or None.
    fn complete(
        arena: &Arena,
        join_remaining: &mut [usize],
        node: usize,
        done: &mut bool,
    ) -> Option<usize> {
        let mut cur = node;
        loop {
            match arena.parent[cur] {
                None => {
                    *done = true;
                    return None;
                }
                Some((parent, idx)) => match &arena.kind[parent] {
                    NodeKind::Seq(cs) => {
                        if idx + 1 < cs.len() {
                            return Some(cs[idx + 1]);
                        }
                        cur = parent;
                    }
                    NodeKind::Par(_) => {
                        join_remaining[parent] -= 1;
                        if join_remaining[parent] > 0 {
                            return None;
                        }
                        cur = parent;
                    }
                    NodeKind::Work(_) => unreachable!("work nodes have no children"),
                },
            }
        }
    }

    // Drive `node` on processor `proc` until it either starts a work leaf or
    // runs out of continuations.
    fn take_up(
        arena: &Arena,
        join_remaining: &mut [usize],
        deques: &mut [VecDeque<usize>],
        current: &mut [Option<(usize, u64)>],
        done: &mut bool,
        proc: usize,
        node: usize,
    ) {
        let mut next = Some(node);
        while let Some(nx) = next.take() {
            match activate(arena, join_remaining, &mut deques[proc], nx) {
                Ok(cur) => current[proc] = Some(cur),
                Err(inner) => {
                    next = complete(arena, join_remaining, inner, done);
                    if *done {
                        return;
                    }
                }
            }
        }
    }

    // Processor 0 starts at the root.
    take_up(
        &arena,
        &mut join_remaining,
        &mut deques,
        &mut current,
        &mut done,
        0,
        root,
    );
    if done {
        return StealTrace {
            stats,
            steals_by_thief,
        };
    }

    while !done {
        stats.time += 1;
        // Phase 1: busy processors execute one unit.
        for proc in 0..p {
            if let Some((node, remaining)) = current[proc] {
                let remaining = remaining.saturating_sub(1);
                if remaining > 0 {
                    current[proc] = Some((node, remaining));
                    continue;
                }
                current[proc] = None;
                // Completion cascade, then continuation pick-up.
                if let Some(nx) = complete(&arena, &mut join_remaining, node, &mut done) {
                    take_up(
                        &arena,
                        &mut join_remaining,
                        &mut deques,
                        &mut current,
                        &mut done,
                        proc,
                        nx,
                    );
                }
                if done {
                    break;
                }
            }
        }
        if done {
            break;
        }
        // Phase 2: idle processors pop locally or steal.
        for proc in 0..p {
            if current[proc].is_some() {
                continue;
            }
            // Local pop (bottom of own deque).
            let mut acquired = deques[proc].pop_back();
            if acquired.is_none() && p > 1 {
                let victim = rng.gen_range(0..p - 1);
                let victim = if victim >= proc { victim + 1 } else { victim };
                acquired = deques[victim].pop_front();
                if acquired.is_some() {
                    stats.steals += 1;
                    steals_by_thief[proc] += 1;
                } else {
                    stats.failed_steals += 1;
                }
            }
            if let Some(nx) = acquired {
                take_up(
                    &arena,
                    &mut join_remaining,
                    &mut deques,
                    &mut current,
                    &mut done,
                    proc,
                    nx,
                );
            }
            if done {
                break;
            }
        }
    }
    StealTrace {
        stats,
        steals_by_thief,
    }
}

/// What the parallel-depth-first (PDF) simulation measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdfStats {
    /// Simulated time steps until completion.
    pub time: u64,
    /// Maximum number of *premature* leaves at any instant: leaves executed
    /// (or executing) ahead of the longest completed prefix of the
    /// sequential depth-first order. The §2 shared-cache bound Qp ≤ Q1
    /// needs a shared cache of M + p·B·D because premature work is bounded
    /// by ~p·D nodes, which is exactly what this measures.
    pub max_premature: u64,
    /// Total unit work.
    pub work: u64,
    /// Critical-path length.
    pub depth: u64,
}

/// Simulate a parallel-depth-first schedule of `task` on `p` processors:
/// whenever a processor frees up, it takes the ready strand that comes
/// earliest in the sequential depth-first order.
pub fn simulate_pdf(task: &Task, p: usize) -> PdfStats {
    assert!(p >= 1);
    let (arena, root) = Arena::build(task);
    let n = arena.kind.len();
    let mut join_remaining: Vec<usize> = vec![0; n];

    // Sequential (depth-first) index of every Work leaf.
    let mut seq_of: Vec<u64> = vec![u64::MAX; n];
    let mut leaf_count = 0u64;
    {
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            match &arena.kind[x] {
                NodeKind::Work(_) => {
                    seq_of[x] = leaf_count;
                    leaf_count += 1;
                }
                NodeKind::Seq(cs) | NodeKind::Par(cs) => {
                    for &c in cs.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
    }

    // Ready pool ordered by sequential index (min-heap).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut done = false;

    // Descend, placing every activatable leaf into the ready pool.
    fn activate_pdf(
        arena: &Arena,
        join_remaining: &mut [usize],
        seq_of: &[u64],
        ready: &mut BinaryHeap<Reverse<(u64, usize)>>,
        pending_empty: &mut Vec<usize>,
        node: usize,
    ) {
        match &arena.kind[node] {
            NodeKind::Work(0) => pending_empty.push(node),
            NodeKind::Work(_) => ready.push(Reverse((seq_of[node], node))),
            NodeKind::Seq(cs) => {
                if cs.is_empty() {
                    pending_empty.push(node);
                } else {
                    activate_pdf(arena, join_remaining, seq_of, ready, pending_empty, cs[0]);
                }
            }
            NodeKind::Par(cs) => {
                if cs.is_empty() {
                    pending_empty.push(node);
                } else {
                    join_remaining[node] = cs.len();
                    for &c in cs {
                        activate_pdf(arena, join_remaining, seq_of, ready, pending_empty, c);
                    }
                }
            }
        }
    }

    fn complete_pdf(
        arena: &Arena,
        join_remaining: &mut [usize],
        node: usize,
        done: &mut bool,
    ) -> Option<usize> {
        let mut cur = node;
        loop {
            match arena.parent[cur] {
                None => {
                    *done = true;
                    return None;
                }
                Some((parent, idx)) => match &arena.kind[parent] {
                    NodeKind::Seq(cs) => {
                        if idx + 1 < cs.len() {
                            return Some(cs[idx + 1]);
                        }
                        cur = parent;
                    }
                    NodeKind::Par(_) => {
                        join_remaining[parent] -= 1;
                        if join_remaining[parent] > 0 {
                            return None;
                        }
                        cur = parent;
                    }
                    NodeKind::Work(_) => unreachable!(),
                },
            }
        }
    }

    // Drain structural completions until only real work remains ready.
    let mut pending_empty: Vec<usize> = Vec::new();
    activate_pdf(
        &arena,
        &mut join_remaining,
        &seq_of,
        &mut ready,
        &mut pending_empty,
        root,
    );
    while let Some(x) = pending_empty.pop() {
        if let Some(nx) = complete_pdf(&arena, &mut join_remaining, x, &mut done) {
            activate_pdf(
                &arena,
                &mut join_remaining,
                &seq_of,
                &mut ready,
                &mut pending_empty,
                nx,
            );
        }
        if done {
            return PdfStats {
                work: task.work(),
                depth: task.depth(),
                ..PdfStats::default()
            };
        }
    }

    let mut running: Vec<Option<(usize, u64)>> = vec![None; p];
    let mut leaf_done: Vec<bool> = vec![false; n];
    let mut frontier = 0u64; // leaves [0, frontier) of the seq order are done
    let mut seq_leaves: Vec<usize> = vec![usize::MAX; leaf_count as usize];
    for (node, &sq) in seq_of.iter().enumerate() {
        if sq != u64::MAX {
            seq_leaves[sq as usize] = node;
        }
    }

    let mut stats = PdfStats {
        work: task.work(),
        depth: task.depth(),
        ..PdfStats::default()
    };
    let mut completed_leaves = 0u64;
    let mut executing = 0u64;

    while !done {
        // Assign free processors the earliest-sequential ready strands.
        for slot in running.iter_mut() {
            if slot.is_none() {
                if let Some(Reverse((_, node))) = ready.pop() {
                    let w = match arena.kind[node] {
                        NodeKind::Work(w) => w,
                        _ => unreachable!("ready pool holds work leaves"),
                    };
                    *slot = Some((node, w));
                    executing += 1;
                }
            }
        }
        // Premature = leaves touched beyond the completed sequential prefix.
        let touched = completed_leaves + executing;
        let premature = touched.saturating_sub(frontier);
        stats.max_premature = stats.max_premature.max(premature);

        stats.time += 1;
        for slot in running.iter_mut() {
            if let Some((node, remaining)) = *slot {
                let remaining = remaining - 1;
                if remaining > 0 {
                    *slot = Some((node, remaining));
                    continue;
                }
                *slot = None;
                executing -= 1;
                completed_leaves += 1;
                leaf_done[node] = true;
                while (frontier as usize) < seq_leaves.len()
                    && leaf_done[seq_leaves[frontier as usize]]
                {
                    frontier += 1;
                }
                let mut next = complete_pdf(&arena, &mut join_remaining, node, &mut done);
                while let Some(nx) = next.take() {
                    let mut pe: Vec<usize> = Vec::new();
                    activate_pdf(
                        &arena,
                        &mut join_remaining,
                        &seq_of,
                        &mut ready,
                        &mut pe,
                        nx,
                    );
                    while let Some(x) = pe.pop() {
                        if let Some(further) =
                            complete_pdf(&arena, &mut join_remaining, x, &mut done)
                        {
                            activate_pdf(
                                &arena,
                                &mut join_remaining,
                                &seq_of,
                                &mut ready,
                                &mut pe,
                                further,
                            );
                        }
                    }
                }
                if done {
                    break;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn work_and_depth_of_trees() {
        let t = Task::Seq(vec![
            Task::Work(3),
            Task::Par(vec![Task::Work(5), Task::Work(2)]),
        ]);
        assert_eq!(t.work(), 10);
        assert_eq!(t.depth(), 8);
        let b = Task::balanced(4, 10, 1);
        assert_eq!(b.work(), 4 * 10 + 3); // 3 internal spawn nodes
        assert_eq!(b.depth(), 10 + 2); // two levels of spawn
    }

    #[test]
    fn phase_tree_has_barrier_depth_and_summed_work() {
        let t = Task::phases(&[vec![3, 5, 2], vec![4, 4, 4], vec![0, 7, 0]]);
        assert_eq!(t.work(), 10 + 12 + 7);
        // Depth: max of each phase, phases in sequence.
        assert_eq!(t.depth(), 5 + 4 + 7);
        // The tree executes: phase barriers mean no lane of phase p+1 starts
        // before the slowest lane of phase p finishes.
        let s = simulate_work_stealing(&t, 3, &mut rng());
        assert!(s.time >= t.depth());
        assert_eq!(s.work, t.work());
        // Degenerate shapes complete (zero-work sibling strands still pass
        // through the deque, costing at most one scheduler step).
        assert_eq!(
            simulate_work_stealing(&Task::phases(&[]), 2, &mut rng()).time,
            0
        );
        let empty_lanes = Task::phases(&[vec![0, 0]]);
        assert!(simulate_work_stealing(&empty_lanes, 2, &mut rng()).time <= 1);
    }

    #[test]
    fn single_processor_time_equals_work() {
        let t = Task::balanced(8, 5, 0);
        let s = simulate_work_stealing(&t, 1, &mut rng());
        assert_eq!(s.time, t.work());
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn parallel_execution_speeds_up() {
        let t = Task::balanced(64, 100, 0);
        let s1 = simulate_work_stealing(&t, 1, &mut rng());
        let s8 = simulate_work_stealing(&t, 8, &mut rng());
        assert!(
            s8.time < s1.time / 4,
            "8 processors should give near-linear speedup: {} vs {}",
            s8.time,
            s1.time
        );
        assert!(s8.steals > 0, "parallelism requires steals");
    }

    #[test]
    fn time_respects_greedy_bounds() {
        // Greedy scheduling: T_p <= work/p + depth (with steal slack we allow
        // a factor of ~3); also T_p >= max(work/p, depth).
        let t = Task::balanced(32, 50, 2);
        for p in [2usize, 4, 8] {
            let s = simulate_work_stealing(&t, p, &mut rng());
            let lower = (t.work() / p as u64).max(t.depth());
            let upper = 3 * (t.work() / p as u64 + t.depth()) + 3;
            assert!(s.time >= lower, "p={p}: {} < {lower}", s.time);
            assert!(s.time <= upper, "p={p}: {} > {upper}", s.time);
        }
    }

    #[test]
    fn steals_scale_with_p_times_depth() {
        let t = Task::balanced(256, 20, 1);
        let d = t.depth();
        for p in [2usize, 4, 8, 16] {
            let mut total = 0u64;
            for seed in 0..5u64 {
                let mut r = StdRng::seed_from_u64(seed);
                total += simulate_work_stealing(&t, p, &mut r).steals;
            }
            let mean = total / 5;
            let bound = 4 * p as u64 * d;
            assert!(
                mean <= bound,
                "p={p}: mean steals {mean} exceeds 4·p·D = {bound}"
            );
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_attributes_every_steal() {
        let t = Task::balanced(64, 20, 1);
        for p in [1usize, 3, 8] {
            let trace = simulate_work_stealing_traced(&t, p, &mut rng());
            let stats = simulate_work_stealing(&t, p, &mut rng());
            assert_eq!(
                trace.stats, stats,
                "p={p}: trace must not perturb the schedule"
            );
            assert_eq!(trace.steals_by_thief.len(), p);
            assert_eq!(
                trace.steals_by_thief.iter().sum::<u64>(),
                trace.stats.steals,
                "p={p}: per-thief counts must sum to the aggregate"
            );
        }
        // Structurally-empty tasks return an all-zero attribution.
        let trace = simulate_work_stealing_traced(&Task::Seq(vec![]), 4, &mut rng());
        assert_eq!(trace.steals_by_thief, vec![0; 4]);
    }

    #[test]
    fn empty_and_trivial_tasks_complete() {
        let s = simulate_work_stealing(&Task::Work(0), 2, &mut rng());
        assert_eq!(s.time, 0);
        let s = simulate_work_stealing(&Task::Seq(vec![]), 2, &mut rng());
        assert_eq!(s.time, 0);
        let s = simulate_work_stealing(&Task::Par(vec![]), 3, &mut rng());
        assert_eq!(s.time, 0);
        let s = simulate_work_stealing(&Task::Work(5), 4, &mut rng());
        assert_eq!(s.time, 5);
    }

    #[test]
    fn nested_seq_par_chains_complete() {
        let t = Task::Seq(vec![
            Task::Par(vec![
                Task::Seq(vec![Task::Work(1), Task::Work(1)]),
                Task::Par(vec![Task::Work(2), Task::Work(3), Task::Work(1)]),
            ]),
            Task::Work(4),
        ]);
        let s = simulate_work_stealing(&t, 3, &mut rng());
        assert!(s.time >= t.depth());
        assert_eq!(s.work, t.work());
    }

    #[test]
    fn pdf_single_processor_is_sequential() {
        let t = Task::balanced(16, 8, 1);
        let s = simulate_pdf(&t, 1);
        assert_eq!(s.time, t.work());
        assert!(s.max_premature <= 1, "p=1 executes in sequential order");
    }

    #[test]
    fn pdf_premature_work_bounded_by_p_times_depth() {
        let t = Task::balanced(256, 16, 1);
        for p in [2usize, 4, 8, 16] {
            let s = simulate_pdf(&t, p);
            assert!(
                s.max_premature <= (p as u64) * t.depth(),
                "p={p}: premature {} beyond p*D = {}",
                s.max_premature,
                p as u64 * t.depth()
            );
        }
    }

    #[test]
    fn pdf_respects_greedy_time_bounds() {
        let t = Task::balanced(64, 32, 2);
        for p in [2usize, 8] {
            let s = simulate_pdf(&t, p);
            let lower = (t.work() / p as u64).max(t.depth());
            assert!(s.time >= lower);
            assert!(s.time <= t.work() / p as u64 + t.depth() + 1);
        }
    }

    #[test]
    fn pdf_handles_structural_edge_cases() {
        assert_eq!(simulate_pdf(&Task::Seq(vec![]), 4).time, 0);
        assert_eq!(simulate_pdf(&Task::Par(vec![]), 4).time, 0);
        assert_eq!(simulate_pdf(&Task::Work(0), 2).time, 0);
        assert_eq!(simulate_pdf(&Task::Work(7), 3).time, 7);
    }

    #[test]
    fn utilization_is_high_with_ample_parallelism() {
        let t = Task::balanced(128, 100, 0);
        let s = simulate_work_stealing(&t, 4, &mut rng());
        assert!(s.utilization(4) > 0.8, "utilization {}", s.utilization(4));
    }
}

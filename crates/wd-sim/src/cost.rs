//! The work-depth cost algebra.

/// A work-depth cost in the Asymmetric PRAM model.
///
/// ```
/// use wd_sim::Cost;
/// let omega = 8;
/// let scan = Cost::strand(100, 10, omega);        // sequential strand
/// let par = scan.par(Cost::strand(50, 50, omega)); // parallel: depth maxes
/// assert_eq!(par.depth, 50 + 8 * 50);
/// assert_eq!(par.reads, 150);
/// ```
///
/// `reads` and `writes` are raw operation counts (work splits); `depth` is
/// the ω-weighted length of the critical path. Costs compose with
/// [`then`](Cost::then) (sequential: depths add) and [`par`](Cost::par)
/// (parallel: depths max), so an algorithm that builds its cost bottom-up
/// obtains the work and depth of its actual dependence DAG.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Read (and other unit-cost) operations.
    pub reads: u64,
    /// Write operations (each costs ω in time and depth).
    pub writes: u64,
    /// ω-weighted critical-path length.
    pub depth: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        reads: 0,
        writes: 0,
        depth: 0,
    };

    /// A sequential strand of `reads` reads and `writes` writes under write
    /// cost `omega`: depth is its full ω-weighted length.
    pub fn strand(reads: u64, writes: u64, omega: u64) -> Cost {
        Cost {
            reads,
            writes,
            depth: reads + omega * writes,
        }
    }

    /// A strand of only reads.
    pub fn reads(n: u64) -> Cost {
        Cost {
            reads: n,
            writes: 0,
            depth: n,
        }
    }

    /// A strand of only writes under write cost `omega`.
    pub fn writes(n: u64, omega: u64) -> Cost {
        Cost {
            reads: 0,
            writes: n,
            depth: n * omega,
        }
    }

    /// Sequential composition: work adds, depth adds.
    #[must_use]
    pub fn then(self, o: Cost) -> Cost {
        Cost {
            reads: self.reads + o.reads,
            writes: self.writes + o.writes,
            depth: self.depth + o.depth,
        }
    }

    /// Parallel composition: work adds, depth maxes.
    #[must_use]
    pub fn par(self, o: Cost) -> Cost {
        Cost {
            reads: self.reads + o.reads,
            writes: self.writes + o.writes,
            depth: self.depth.max(o.depth),
        }
    }

    /// Parallel composition of many costs.
    pub fn par_all(costs: impl IntoIterator<Item = Cost>) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::par)
    }

    /// Sequential composition of many costs.
    pub fn seq_all(costs: impl IntoIterator<Item = Cost>) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::then)
    }

    /// Total ω-weighted work.
    pub fn work(&self, omega: u64) -> u64 {
        self.reads + omega * self.writes
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} depth={}",
            self.reads, self.writes, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strand_depth_is_omega_weighted() {
        let c = Cost::strand(10, 3, 4);
        assert_eq!(c.depth, 10 + 12);
        assert_eq!(c.work(4), 22);
        assert_eq!(Cost::reads(5).depth, 5);
        assert_eq!(Cost::writes(2, 8).depth, 16);
    }

    #[test]
    fn then_adds_depth_par_maxes() {
        let a = Cost::strand(4, 0, 2);
        let b = Cost::strand(0, 3, 2);
        let s = a.then(b);
        assert_eq!(s.depth, 4 + 6);
        assert_eq!((s.reads, s.writes), (4, 3));
        let p = a.par(b);
        assert_eq!(p.depth, 6);
        assert_eq!((p.reads, p.writes), (4, 3));
    }

    #[test]
    fn par_all_and_seq_all_fold() {
        let cs = vec![Cost::reads(1), Cost::reads(5), Cost::reads(3)];
        let p = Cost::par_all(cs.clone());
        assert_eq!(p.reads, 9);
        assert_eq!(p.depth, 5);
        let s = Cost::seq_all(cs);
        assert_eq!(s.depth, 9);
        assert_eq!(Cost::par_all(std::iter::empty()), Cost::ZERO);
    }

    #[test]
    fn algebra_is_associative_on_samples() {
        let a = Cost::strand(1, 2, 3);
        let b = Cost::strand(4, 0, 3);
        let c = Cost::strand(0, 5, 3);
        assert_eq!(a.then(b).then(c), a.then(b.then(c)));
        assert_eq!(a.par(b).par(c), a.par(b.par(c)));
    }

    #[test]
    fn display_lists_components() {
        let s = Cost::strand(1, 2, 3).to_string();
        assert!(s.contains("reads=1") && s.contains("writes=2") && s.contains("depth=7"));
    }
}

//! Brent's-theorem running-time bounds.

use crate::cost::Cost;

/// Running time of a computation with cost `c` on `p` processors under write
/// cost `omega`:
///
/// `T(n, p) = (ω·w(n) + r(n)) / p + d(n)`
///
/// (§2 of the paper, assuming work can be allocated to processors
/// efficiently).
pub fn time_on(c: Cost, p: u64, omega: u64) -> u64 {
    assert!(p >= 1, "need at least one processor");
    (omega * c.writes + c.reads).div_ceil(p) + c.depth
}

/// The smallest processor count at which the span term dominates the work
/// term (the "linear speedup limit"): p such that work/p <= depth.
pub fn linear_speedup_limit(c: Cost, omega: u64) -> u64 {
    if c.depth == 0 {
        return 1;
    }
    (c.work(omega)).div_ceil(c.depth).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_processor_time_is_work_plus_depth() {
        let c = Cost::strand(100, 10, 4);
        assert_eq!(time_on(c, 1, 4), 140 + c.depth);
    }

    #[test]
    fn many_processors_leave_depth() {
        let c = Cost {
            reads: 1000,
            writes: 0,
            depth: 10,
        };
        assert_eq!(time_on(c, 1_000_000, 1), 1 + 10);
    }

    #[test]
    fn time_decreases_with_processors() {
        let c = Cost {
            reads: 10_000,
            writes: 1_000,
            depth: 50,
        };
        let t1 = time_on(c, 1, 8);
        let t4 = time_on(c, 4, 8);
        let t16 = time_on(c, 16, 8);
        assert!(t1 > t4 && t4 > t16);
        assert!(t16 >= c.depth);
    }

    #[test]
    fn speedup_limit_is_work_over_depth() {
        let c = Cost {
            reads: 1000,
            writes: 0,
            depth: 10,
        };
        assert_eq!(linear_speedup_limit(c, 1), 100);
        assert_eq!(linear_speedup_limit(Cost::ZERO, 4), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_processors_rejected() {
        let _ = time_on(Cost::ZERO, 0, 1);
    }
}

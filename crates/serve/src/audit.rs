//! The audit log as a write-ahead log: versioned lifecycle events and the
//! pure replay that [`SortService::recover`](crate::SortService::recover)
//! rebuilds its state from.
//!
//! Every line of `audit.jsonl` is one [`AuditEvent`], rendered with a
//! schema version (`"v"`) first. The event set is chosen so the log is
//! *sufficient* to restart the service: `accepted` embeds the full
//! [`JobRequest`] (the service can re-run the job), `completed` embeds the
//! full outcome telemetry (a restarted service still serves old results),
//! and every terminal event names its job. [`replay`] folds any prefix of
//! a log into a [`Replay`]:
//!
//! * terminal outcomes win and never un-terminalize, so replaying a longer
//!   prefix only ever *adds* information — the monotonicity property
//!   `tests/recovery.rs` pins;
//! * a torn final line (the crash happened mid-`write`) is tolerated and
//!   flagged, torn interior lines are typed errors;
//! * an unknown schema version anywhere is a typed
//!   [`AuditError::UnknownVersion`] — forward-compat for consumers that
//!   must not misread a future log as an empty one.

use crate::job::{FailureKind, JobId, JobRequest};
use asym_model::json::{self, Json, JsonObj};
use std::collections::BTreeMap;

/// The audit schema this build writes and the only one it replays.
pub const SCHEMA_VERSION: u64 = 1;

/// Why an audit line (or log) failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The line declares a schema version this build does not speak.
    UnknownVersion(u64),
    /// The line is not JSON, or not a well-formed event.
    Malformed(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::UnknownVersion(v) => {
                write!(
                    f,
                    "audit schema v{v} is not supported (this build speaks v{SCHEMA_VERSION})"
                )
            }
            AuditError::Malformed(m) => write!(f, "malformed audit line: {m}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// One line of the audit log.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// Admission: the job is now the service's responsibility. Carries the
    /// whole request so recovery can re-run it.
    Accepted {
        /// The assigned id.
        id: JobId,
        /// The full request, embedded verbatim.
        request: JobRequest,
        /// The admission-time [`peak_bytes`](asym_core::sort::CostEstimate::peak_bytes).
        predicted_bytes: u64,
    },
    /// Turned away by the memory budget. Not a job; replay only counts it.
    RejectedBudget {
        /// The submission's predicted peak bytes.
        predicted: u64,
        /// What the budget had left.
        available: u64,
    },
    /// Turned away because the modeled ETA cannot meet the deadline.
    RejectedDeadline {
        /// Modeled time to run the job on an idle service.
        eta_ms: u64,
        /// What the client asked for.
        deadline_ms: u64,
    },
    /// Turned away by the I/O-cost budget (`reads + ω·writes`), the
    /// second admission axis beside peak bytes.
    RejectedIo {
        /// The submission's predicted I/O cost.
        predicted: u64,
        /// What the I/O budget had left.
        available: u64,
    },
    /// A worker began attempt `attempt` (1-based).
    Started {
        /// The job.
        id: JobId,
        /// Which attempt this is.
        attempt: u32,
    },
    /// A staged job completed a phase; the manifest is durable the moment
    /// this line is. Recovery hands the *latest* manifest back to the
    /// re-queued job so a restarted worker resumes instead of restarting.
    Checkpointed {
        /// The job.
        id: JobId,
        /// Completed phases (the manifest's `phases_done`).
        phase: u64,
        /// [`CheckpointManifest::to_json`], embedded verbatim.
        ///
        /// [`CheckpointManifest::to_json`]: asym_core::sort::CheckpointManifest::to_json
        manifest: String,
    },
    /// A retryable failure; the job re-queued with backoff.
    Retried {
        /// The job.
        id: JobId,
        /// The attempt that failed.
        attempt: u32,
        /// How long the job waits before the next attempt.
        backoff_ms: u64,
        /// The failure message.
        error: String,
    },
    /// Terminal success. Carries the full telemetry so a recovered service
    /// still serves the result.
    Completed {
        /// The job.
        id: JobId,
        /// [`SortOutcome::to_json`](asym_core::sort::SortOutcome::to_json),
        /// embedded verbatim.
        telemetry: String,
    },
    /// Terminal failure (fatal kind, or the attempt budget is spent).
    Failed {
        /// The job.
        id: JobId,
        /// The classification.
        kind: FailureKind,
        /// The failure message.
        error: String,
    },
    /// Terminal expiry: the deadline lapsed while the job was queued.
    Expired {
        /// The job.
        id: JobId,
    },
    /// A graceful drain completed.
    Drained,
    /// A recovery replayed this log (informational; replay ignores it).
    Recovered {
        /// Jobs re-queued (accepted but not terminal in the log).
        requeued: u64,
        /// Terminal jobs restored with their results.
        restored: u64,
        /// Where the id counter resumed.
        next_id: JobId,
    },
}

impl AuditEvent {
    /// Stable wire name of the event.
    pub fn name(&self) -> &'static str {
        match self {
            AuditEvent::Accepted { .. } => "accepted",
            AuditEvent::RejectedBudget { .. }
            | AuditEvent::RejectedDeadline { .. }
            | AuditEvent::RejectedIo { .. } => "rejected",
            AuditEvent::Started { .. } => "started",
            AuditEvent::Checkpointed { .. } => "checkpointed",
            AuditEvent::Retried { .. } => "retried",
            AuditEvent::Completed { .. } => "completed",
            AuditEvent::Failed { .. } => "failed",
            AuditEvent::Expired { .. } => "expired",
            AuditEvent::Drained => "drained",
            AuditEvent::Recovered { .. } => "recovered",
        }
    }

    /// Render as one JSON line (no trailing newline), version first.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("v", SCHEMA_VERSION).str("event", self.name());
        match self {
            AuditEvent::Accepted {
                id,
                request,
                predicted_bytes,
            } => {
                o.u64("id", *id)
                    .u64("predicted_bytes", *predicted_bytes)
                    .raw("request", &request.to_json());
            }
            AuditEvent::RejectedBudget {
                predicted,
                available,
            } => {
                o.str("reason", "budget")
                    .u64("predicted", *predicted)
                    .u64("available", *available);
            }
            AuditEvent::RejectedDeadline {
                eta_ms,
                deadline_ms,
            } => {
                o.str("reason", "deadline")
                    .u64("eta_ms", *eta_ms)
                    .u64("deadline_ms", *deadline_ms);
            }
            AuditEvent::RejectedIo {
                predicted,
                available,
            } => {
                o.str("reason", "io_budget")
                    .u64("predicted", *predicted)
                    .u64("available", *available);
            }
            AuditEvent::Started { id, attempt } => {
                o.u64("id", *id).u64("attempt", *attempt as u64);
            }
            AuditEvent::Checkpointed {
                id,
                phase,
                manifest,
            } => {
                o.u64("id", *id)
                    .u64("phase", *phase)
                    .raw("manifest", manifest);
            }
            AuditEvent::Retried {
                id,
                attempt,
                backoff_ms,
                error,
            } => {
                o.u64("id", *id)
                    .u64("attempt", *attempt as u64)
                    .u64("backoff_ms", *backoff_ms)
                    .str("error", error);
            }
            AuditEvent::Completed { id, telemetry } => {
                o.u64("id", *id).raw("outcome", telemetry);
            }
            AuditEvent::Failed { id, kind, error } => {
                o.u64("id", *id)
                    .str("kind", kind.name())
                    .str("error", error);
            }
            AuditEvent::Expired { id } => {
                o.u64("id", *id);
            }
            AuditEvent::Drained => {}
            AuditEvent::Recovered {
                requeued,
                restored,
                next_id,
            } => {
                o.u64("requeued", *requeued)
                    .u64("restored", *restored)
                    .u64("next_id", *next_id);
            }
        }
        o.finish()
    }

    /// Decode one line. Unknown schema versions are
    /// [`AuditError::UnknownVersion`]; everything else unexpected is
    /// [`AuditError::Malformed`].
    pub fn from_json(line: &str) -> Result<AuditEvent, AuditError> {
        let bad = |m: String| AuditError::Malformed(m);
        let v = Json::parse(line).map_err(bad)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| bad("event must be a JSON object".into()))?;
        let version = json::get_u64(obj, "v")
            .ok_or_else(|| bad("missing schema version field \"v\"".into()))?;
        if version != SCHEMA_VERSION {
            return Err(AuditError::UnknownVersion(version));
        }
        let event = json::get_str(obj, "event")
            .ok_or_else(|| bad("missing string field \"event\"".into()))?;
        let id =
            || json::get_u64(obj, "id").ok_or_else(|| bad(format!("{event} event missing \"id\"")));
        let attempt = || {
            json::get_u64(obj, "attempt")
                .map(|a| a as u32)
                .ok_or_else(|| bad(format!("{event} event missing \"attempt\"")))
        };
        match event.as_str() {
            "accepted" => {
                let rv = json::find(obj, "request")
                    .ok_or_else(|| bad("accepted event missing \"request\"".into()))?;
                let request = JobRequest::from_json(&rv.render())
                    .map_err(|e| bad(format!("embedded request: {e}")))?;
                Ok(AuditEvent::Accepted {
                    id: id()?,
                    request,
                    predicted_bytes: json::get_u64(obj, "predicted_bytes").unwrap_or(0),
                })
            }
            "rejected" => {
                let reason = json::get_str(obj, "reason").unwrap_or_else(|| "budget".into());
                match reason.as_str() {
                    "budget" => Ok(AuditEvent::RejectedBudget {
                        predicted: json::get_u64(obj, "predicted").unwrap_or(0),
                        available: json::get_u64(obj, "available").unwrap_or(0),
                    }),
                    "deadline" => Ok(AuditEvent::RejectedDeadline {
                        eta_ms: json::get_u64(obj, "eta_ms").unwrap_or(0),
                        deadline_ms: json::get_u64(obj, "deadline_ms").unwrap_or(0),
                    }),
                    "io_budget" => Ok(AuditEvent::RejectedIo {
                        predicted: json::get_u64(obj, "predicted").unwrap_or(0),
                        available: json::get_u64(obj, "available").unwrap_or(0),
                    }),
                    other => Err(bad(format!("unknown rejection reason {other:?}"))),
                }
            }
            "started" => Ok(AuditEvent::Started {
                id: id()?,
                attempt: attempt()?,
            }),
            "checkpointed" => {
                let manifest = json::find(obj, "manifest")
                    .ok_or_else(|| bad("checkpointed event missing \"manifest\"".into()))?
                    .render();
                Ok(AuditEvent::Checkpointed {
                    id: id()?,
                    phase: json::get_u64(obj, "phase")
                        .ok_or_else(|| bad("checkpointed event missing \"phase\"".into()))?,
                    manifest,
                })
            }
            "retried" => Ok(AuditEvent::Retried {
                id: id()?,
                attempt: attempt()?,
                backoff_ms: json::get_u64(obj, "backoff_ms").unwrap_or(0),
                error: json::get_str(obj, "error").unwrap_or_default(),
            }),
            "completed" => {
                let telemetry = json::find(obj, "outcome")
                    .ok_or_else(|| bad("completed event missing \"outcome\"".into()))?
                    .render();
                Ok(AuditEvent::Completed {
                    id: id()?,
                    telemetry,
                })
            }
            "failed" => {
                let name = json::get_str(obj, "kind")
                    .ok_or_else(|| bad("failed event missing \"kind\"".into()))?;
                let kind = FailureKind::parse(&name)
                    .ok_or_else(|| bad(format!("unknown failure kind {name:?}")))?;
                Ok(AuditEvent::Failed {
                    id: id()?,
                    kind,
                    error: json::get_str(obj, "error").unwrap_or_default(),
                })
            }
            "expired" => Ok(AuditEvent::Expired { id: id()? }),
            "drained" => Ok(AuditEvent::Drained),
            "recovered" => Ok(AuditEvent::Recovered {
                requeued: json::get_u64(obj, "requeued").unwrap_or(0),
                restored: json::get_u64(obj, "restored").unwrap_or(0),
                next_id: json::get_u64(obj, "next_id").unwrap_or(0),
            }),
            other => Err(bad(format!("unknown event {other:?}"))),
        }
    }
}

/// A job's fate as read off a log prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayOutcome {
    /// Accepted, no terminal event yet: recovery must re-queue it.
    Pending,
    /// Done; the embedded telemetry is the result.
    Completed {
        /// The embedded outcome JSON.
        telemetry: String,
    },
    /// Terminally failed.
    Failed {
        /// The classification.
        kind: FailureKind,
        /// The failure message.
        error: String,
    },
    /// Expired before running.
    Expired,
}

impl ReplayOutcome {
    /// Whether this fate is final.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ReplayOutcome::Pending)
    }
}

/// One job reconstructed from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// The embedded request, ready to re-run.
    pub request: JobRequest,
    /// Attempts already consumed (max attempt number seen).
    pub attempts: u32,
    /// The job's fate so far.
    pub outcome: ReplayOutcome,
    /// The latest checkpoint manifest (embedded JSON), if the job made
    /// phase progress before the log ended. A re-queued job resumes from
    /// it instead of restarting.
    pub manifest: Option<String>,
    /// `phases_done` of that manifest (0: none). Only advances — a stale
    /// or replayed `checkpointed` line can never roll progress back.
    pub checkpoint_phase: u64,
    /// The attempt count at the moment of the last phase progress — the
    /// retry clock's epoch: backoff and fault decay key off
    /// `attempts − attempts_at_checkpoint`, so attempts that *made*
    /// progress are never re-billed.
    pub attempts_at_checkpoint: u32,
}

/// The fold of a log prefix: everything a restarted service needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Every accepted job, by id (BTreeMap: re-queue in id order).
    pub jobs: BTreeMap<JobId, ReplayJob>,
    /// Where the id counter must resume (max accepted id + 1).
    pub next_id: JobId,
    /// Rejections seen (both reasons).
    pub rejected: u64,
    /// Retry events seen.
    pub retries: u64,
    /// The final line was unparsable — a crash tore it mid-write. The
    /// prefix before it replayed fine.
    pub torn_tail: bool,
}

impl Replay {
    /// Ids that must be re-queued, in submission order.
    pub fn pending(&self) -> impl Iterator<Item = JobId> + '_ {
        self.jobs
            .iter()
            .filter(|(_, j)| !j.outcome.is_terminal())
            .map(|(&id, _)| id)
    }

    fn apply(&mut self, ev: AuditEvent) {
        match ev {
            AuditEvent::Accepted { id, request, .. } => {
                self.next_id = self.next_id.max(id + 1);
                // First acceptance wins: replaying a duplicated line (or a
                // prefix twice) cannot double a job.
                self.jobs.entry(id).or_insert(ReplayJob {
                    request,
                    attempts: 0,
                    outcome: ReplayOutcome::Pending,
                    manifest: None,
                    checkpoint_phase: 0,
                    attempts_at_checkpoint: 0,
                });
            }
            AuditEvent::RejectedBudget { .. }
            | AuditEvent::RejectedDeadline { .. }
            | AuditEvent::RejectedIo { .. } => {
                self.rejected += 1;
            }
            AuditEvent::Started { id, attempt } => {
                if let Some(j) = self.jobs.get_mut(&id) {
                    j.attempts = j.attempts.max(attempt);
                }
            }
            AuditEvent::Checkpointed {
                id,
                phase,
                manifest,
            } => {
                // Progress only moves forward, and a manifest arriving
                // after the job's terminal outcome is stale noise (a torn
                // race the WAL ordering makes possible only across
                // replays) — ignore both.
                if let Some(j) = self.jobs.get_mut(&id) {
                    if !j.outcome.is_terminal() && phase > j.checkpoint_phase {
                        j.checkpoint_phase = phase;
                        j.manifest = Some(manifest);
                        j.attempts_at_checkpoint = j.attempts;
                    }
                }
            }
            AuditEvent::Retried { id, attempt, .. } => {
                self.retries += 1;
                if let Some(j) = self.jobs.get_mut(&id) {
                    j.attempts = j.attempts.max(attempt);
                }
            }
            AuditEvent::Completed { id, telemetry } => {
                self.terminalize(id, ReplayOutcome::Completed { telemetry });
            }
            AuditEvent::Failed { id, kind, error } => {
                self.terminalize(id, ReplayOutcome::Failed { kind, error });
            }
            AuditEvent::Expired { id } => {
                self.terminalize(id, ReplayOutcome::Expired);
            }
            AuditEvent::Drained | AuditEvent::Recovered { .. } => {}
        }
    }

    /// Terminal outcomes stick: the first one recorded for a job wins, so
    /// replay is idempotent and monotonic over prefixes.
    fn terminalize(&mut self, id: JobId, outcome: ReplayOutcome) {
        if let Some(j) = self.jobs.get_mut(&id) {
            if !j.outcome.is_terminal() {
                j.outcome = outcome;
            }
        }
    }
}

/// Fold a log (or any prefix of one, including byte prefixes that tear the
/// final line) into a [`Replay`].
pub fn replay(text: &str) -> Result<Replay, AuditError> {
    let mut r = Replay::default();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match AuditEvent::from_json(line) {
            Ok(ev) => r.apply(ev),
            Err(AuditError::Malformed(_)) if i + 1 == lines.len() => {
                r.torn_tail = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::sort::{Algorithm, SortSpec};
    use asym_model::workload::Workload;

    fn request() -> JobRequest {
        JobRequest {
            spec: SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
                .k(2)
                .build()
                .unwrap(),
            workload: Workload::Zipf,
            records: 300,
            data_seed: 5,
            input: None,
            include_output: false,
            deadline_ms: Some(9_000),
            checkpoint: false,
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            AuditEvent::Accepted {
                id: 3,
                request: request(),
                predicted_bytes: 4096,
            },
            AuditEvent::RejectedBudget {
                predicted: 10,
                available: 4,
            },
            AuditEvent::RejectedDeadline {
                eta_ms: 100,
                deadline_ms: 10,
            },
            AuditEvent::Started { id: 3, attempt: 1 },
            AuditEvent::Retried {
                id: 3,
                attempt: 1,
                backoff_ms: 10,
                error: "interrupted".into(),
            },
            AuditEvent::Completed {
                id: 3,
                telemetry: r#"{"reads": 1, "writes": 2}"#.into(),
            },
            AuditEvent::Failed {
                id: 4,
                kind: FailureKind::Panic,
                error: "boom".into(),
            },
            AuditEvent::Expired { id: 5 },
            AuditEvent::Drained,
            AuditEvent::Recovered {
                requeued: 1,
                restored: 2,
                next_id: 6,
            },
        ];
        for ev in events {
            let line = ev.to_json();
            let back = AuditEvent::from_json(&line).expect(&line);
            // The embedded telemetry re-renders through the parser, so
            // compare semantically where whitespace may differ.
            match (&ev, &back) {
                (
                    AuditEvent::Completed {
                        id: a,
                        telemetry: t,
                    },
                    AuditEvent::Completed {
                        id: b,
                        telemetry: u,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(
                        Json::parse(t).unwrap().render(),
                        Json::parse(u).unwrap().render()
                    );
                }
                _ => assert_eq!(ev, back, "{line}"),
            }
        }
    }

    #[test]
    fn checkpoint_and_io_rejection_events_round_trip() {
        let io = AuditEvent::RejectedIo {
            predicted: 5_000,
            available: 300,
        };
        let line = io.to_json();
        assert!(line.contains("\"io_budget\""), "{line}");
        assert_eq!(AuditEvent::from_json(&line), Ok(io));

        let manifest = Json::parse(r#"{"version": 1, "phases_done": 3}"#)
            .unwrap()
            .render();
        let ev = AuditEvent::Checkpointed {
            id: 9,
            phase: 3,
            manifest: manifest.clone(),
        };
        let back = AuditEvent::from_json(&ev.to_json()).expect("decode");
        match back {
            AuditEvent::Checkpointed {
                id,
                phase,
                manifest: m,
            } => {
                assert_eq!((id, phase), (9, 3));
                assert_eq!(Json::parse(&m).unwrap().render(), manifest);
            }
            other => panic!("decoded as {other:?}"),
        }
        // Required fields are enforced, not defaulted.
        assert!(AuditEvent::from_json(r#"{"v": 1, "event": "checkpointed", "id": 9}"#).is_err());
    }

    #[test]
    fn replay_tracks_checkpoint_progress_monotonically() {
        let r = request();
        let mut log = String::new();
        for ev in [
            AuditEvent::Accepted {
                id: 0,
                request: r.clone(),
                predicted_bytes: 100,
            },
            AuditEvent::Started { id: 0, attempt: 1 },
            AuditEvent::Checkpointed {
                id: 0,
                phase: 1,
                manifest: r#"{"phases_done": 1}"#.into(),
            },
            AuditEvent::Checkpointed {
                id: 0,
                phase: 2,
                manifest: r#"{"phases_done": 2}"#.into(),
            },
            // A duplicated / late-arriving older manifest must not roll
            // progress back.
            AuditEvent::Checkpointed {
                id: 0,
                phase: 1,
                manifest: r#"{"phases_done": 1}"#.into(),
            },
        ] {
            log.push_str(&ev.to_json());
            log.push('\n');
        }
        let rep = replay(&log).expect("replays");
        let j = &rep.jobs[&0];
        assert_eq!(j.checkpoint_phase, 2);
        assert!(j.manifest.as_deref().unwrap().contains("2"));
        assert_eq!(j.attempts_at_checkpoint, 1, "progress made on attempt 1");
        assert_eq!(j.outcome, ReplayOutcome::Pending);

        // After a terminal outcome, a stale manifest line is ignored.
        let mut terminal = log.clone();
        for ev in [
            AuditEvent::Completed {
                id: 0,
                telemetry: r#"{"reads": 7}"#.into(),
            },
            AuditEvent::Checkpointed {
                id: 0,
                phase: 3,
                manifest: r#"{"phases_done": 3}"#.into(),
            },
        ] {
            terminal.push_str(&ev.to_json());
            terminal.push('\n');
        }
        let rep2 = replay(&terminal).expect("replays");
        assert!(rep2.jobs[&0].outcome.is_terminal());
        assert_eq!(
            rep2.jobs[&0].checkpoint_phase, 2,
            "stale manifest after terminal outcome is ignored"
        );
        // And replay is idempotent over the extended log too.
        assert_eq!(replay(&terminal).unwrap(), rep2);
    }

    #[test]
    fn unknown_versions_are_typed_errors() {
        let future = r#"{"v": 2, "event": "accepted", "id": 1}"#;
        assert_eq!(
            AuditEvent::from_json(future),
            Err(AuditError::UnknownVersion(2))
        );
        let versionless = r#"{"event": "drained"}"#;
        assert!(matches!(
            AuditEvent::from_json(versionless),
            Err(AuditError::Malformed(ref m)) if m.contains("\"v\"")
        ));
        // A future version mid-log poisons the whole replay — better to
        // refuse than to recover a half-understood state.
        let log = format!("{}\n{future}\n", AuditEvent::Drained.to_json());
        assert_eq!(replay(&log), Err(AuditError::UnknownVersion(2)));
    }

    #[test]
    fn replay_folds_and_tolerates_a_torn_tail() {
        let r = request();
        let mut log = String::new();
        for ev in [
            AuditEvent::Accepted {
                id: 0,
                request: r.clone(),
                predicted_bytes: 100,
            },
            AuditEvent::Accepted {
                id: 1,
                request: r.clone(),
                predicted_bytes: 100,
            },
            AuditEvent::Started { id: 0, attempt: 1 },
            AuditEvent::Retried {
                id: 0,
                attempt: 1,
                backoff_ms: 10,
                error: "interrupted".into(),
            },
            AuditEvent::Started { id: 0, attempt: 2 },
            AuditEvent::Completed {
                id: 0,
                telemetry: r#"{"reads": 7}"#.into(),
            },
            AuditEvent::RejectedBudget {
                predicted: 9,
                available: 1,
            },
        ] {
            log.push_str(&ev.to_json());
            log.push('\n');
        }
        log.push_str(r#"{"v": 1, "event": "acc"#); // the crash tore this line

        let rep = replay(&log).expect("replays");
        assert!(rep.torn_tail);
        assert_eq!(rep.next_id, 2);
        assert_eq!(rep.rejected, 1);
        assert_eq!(rep.retries, 1);
        assert_eq!(rep.jobs.len(), 2);
        assert_eq!(rep.jobs[&0].attempts, 2);
        assert!(rep.jobs[&0].outcome.is_terminal());
        assert_eq!(rep.jobs[&1].outcome, ReplayOutcome::Pending);
        assert_eq!(rep.pending().collect::<Vec<_>>(), vec![1]);
        // Idempotence: replaying the same text again gives the same fold.
        assert_eq!(replay(&log).unwrap(), rep);
    }
}

//! Job descriptions and job lifecycle: what a client submits and what it
//! can observe afterwards.
//!
//! A [`JobRequest`] is a [`SortSpec`] plus the data to sort, described one
//! of two ways. The original form names the data — a [`Workload`]
//! generator, a record count, and a seed — so the request stays a few
//! hundred bytes no matter how large the job is, and the service
//! regenerates identical input on its side (the same convention the bench
//! harness uses). Library consumers whose data is not a named generator
//! (the `asym-kv` compactor merging real sorted runs) instead ship the
//! records *inline* via [`JobRequest::inline`]: when `input` is present it
//! is sorted verbatim, `workload`/`data_seed` are ignored, and `records`
//! mirrors `input.len()` so `predict()` prices the actual payload.
//! `include_output` chooses between lean telemetry and full sorted output
//! in the completion payload.

use asym_core::sort::{checkpoint, CostEstimate, SortSpec, WireError};
use asym_model::json::{self, Json, JsonArr, JsonObj};
use asym_model::workload::Workload;
use asym_model::Record;

/// Identifies one submitted job for the rest of its life (assigned by the
/// service, monotonically increasing).
pub type JobId = u64;

/// One sort job as submitted over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRequest {
    /// The validated job description (algorithm, geometry, backend, ...).
    pub spec: SortSpec,
    /// Named input generator; the service regenerates the data server-side.
    /// Ignored when [`input`](Self::input) is present.
    pub workload: Workload,
    /// How many records to generate and sort. When [`input`](Self::input)
    /// is present this mirrors `input.len()` (the decoder enforces it).
    pub records: usize,
    /// Seed for the workload generator. Ignored when
    /// [`input`](Self::input) is present.
    pub data_seed: u64,
    /// Inline records to sort verbatim, for consumers whose data is not a
    /// named generator (compactions merging real sorted runs). Takes
    /// precedence over `workload`/`data_seed`. Over HTTP the encoded
    /// request must still fit the body cap
    /// ([`MAX_BODY`](crate::http::MAX_BODY)), which bounds inline jobs to
    /// tens of thousands of records — by design: bulk data belongs in
    /// named generators or future object-store references.
    pub input: Option<Vec<Record>>,
    /// Include the sorted records in the completion telemetry (off for
    /// stats-only submissions).
    pub include_output: bool,
    /// Time budget in milliseconds. Checked against the modeled ETA at
    /// admission (when the service has a configured rate) and enforced by
    /// queue expiry: a job still queued when the budget lapses becomes
    /// [`JobState::Expired`] without running. `None`: no deadline.
    pub deadline_ms: Option<u64>,
    /// Run the job as a staged, checkpointable sequence of phases
    /// ([`checkpoint::run_staged`]): every completed phase is persisted to
    /// the audit WAL as a `checkpointed` event, and a crashed or killed
    /// attempt resumes from its latest manifest instead of restarting.
    /// Output is identical to the single-shot path; modeled costs follow
    /// the staged envelope ([`checkpoint::predict_staged`]), which is what
    /// `predict()` prices when this is set.
    ///
    /// [`checkpoint::run_staged`]: asym_core::sort::checkpoint::run_staged
    /// [`checkpoint::predict_staged`]: asym_core::sort::checkpoint::predict_staged
    pub checkpoint: bool,
}

impl JobRequest {
    /// A job over inline data: sort exactly `input`, return the sorted
    /// records in the telemetry. The `asym-kv` compactor submits its run
    /// merges through this.
    pub fn inline(spec: SortSpec, input: Vec<Record>) -> JobRequest {
        JobRequest {
            spec,
            workload: Workload::UniformRandom, // ignored: input is inline
            records: input.len(),
            data_seed: 0,
            input: Some(input),
            include_output: true,
            deadline_ms: None,
            checkpoint: false,
        }
    }

    /// Toggle staged, checkpointable execution (see
    /// [`checkpoint`](Self::checkpoint)).
    pub fn checkpointed(mut self, on: bool) -> JobRequest {
        self.checkpoint = on;
        self
    }

    /// How many records this job sorts — the inline payload length when
    /// present, the generator count otherwise.
    pub fn record_count(&self) -> usize {
        self.input.as_ref().map_or(self.records, Vec::len)
    }

    /// The pre-run cost bounds the service admits on: the single-shot
    /// envelope normally, the staged envelope for checkpointed jobs (the
    /// execution they actually get).
    pub fn predict(&self) -> CostEstimate {
        if self.checkpoint {
            checkpoint::predict_staged(&self.spec, self.record_count())
        } else {
            self.spec.predict(self.record_count())
        }
    }

    /// Render as a single-line JSON object (`spec` nested verbatim,
    /// inline input as `[key, payload]` pairs when present).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.raw("spec", &self.spec.to_json())
            .str("workload", self.workload.name())
            .u64("records", self.record_count() as u64)
            .u64("data_seed", self.data_seed)
            .bool("include_output", self.include_output);
        if let Some(input) = &self.input {
            let mut arr = JsonArr::new();
            for r in input {
                arr.raw(&format!("[{}, {}]", r.key, r.payload));
            }
            o.raw("input", &arr.finish());
        }
        if let Some(d) = self.deadline_ms {
            o.u64("deadline_ms", d);
        }
        if self.checkpoint {
            o.bool("checkpoint", true);
        }
        o.finish()
    }

    /// Decode a request; the nested spec goes through the normal
    /// [`SortSpec`] wire decoding and builder validation. `data_seed`
    /// defaults to 0 and `include_output` to false.
    pub fn from_json(text: &str) -> Result<JobRequest, WireError> {
        let v = Json::parse(text).map_err(WireError::Malformed)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| WireError::Malformed("job request must be a JSON object".into()))?;
        let spec = SortSpec::from_json_value(
            json::find(obj, "spec")
                .ok_or_else(|| WireError::Malformed("missing \"spec\" object".into()))?,
        )?;
        let name = json::get_str(obj, "workload")
            .ok_or_else(|| WireError::Malformed("missing string field \"workload\"".into()))?;
        let workload = Workload::parse(&name)
            .ok_or_else(|| WireError::Malformed(format!("unknown workload {name:?}")))?;
        let input = match json::find(obj, "input") {
            None => None,
            Some(arr) => {
                let items = arr
                    .as_arr()
                    .ok_or_else(|| WireError::Malformed("\"input\" must be an array".into()))?;
                let mut records = Vec::with_capacity(items.len());
                for item in items {
                    let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        WireError::Malformed("input records are [key, payload] pairs".into())
                    })?;
                    let key = pair[0]
                        .as_u64()
                        .ok_or_else(|| WireError::Malformed("record key must be a u64".into()))?;
                    let payload = pair[1].as_u64().ok_or_else(|| {
                        WireError::Malformed("record payload must be a u64".into())
                    })?;
                    records.push(Record::new(key, payload));
                }
                Some(records)
            }
        };
        // Inline input is authoritative for the record count; `records` is
        // only required for generator jobs.
        let records = match &input {
            Some(v) => v.len(),
            None => json::get_u64(obj, "records")
                .ok_or_else(|| WireError::Malformed("missing numeric field \"records\"".into()))?
                as usize,
        };
        Ok(JobRequest {
            spec,
            workload,
            records,
            data_seed: json::get_u64(obj, "data_seed").unwrap_or(0),
            input,
            include_output: json::get_bool(obj, "include_output").unwrap_or(false),
            deadline_ms: json::get_u64(obj, "deadline_ms"),
            checkpoint: json::get_bool(obj, "checkpoint").unwrap_or(false),
        })
    }
}

/// Where a job is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished; telemetry is available.
    Completed,
    /// The sort itself failed (e.g. file backend I/O error), terminally —
    /// retryable failures re-queue until the attempt budget is spent.
    Failed,
    /// The deadline lapsed while the job was still queued; it never ran.
    Expired,
}

impl JobState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Expired => "expired",
        }
    }

    /// Whether the state is final: exactly one of completed / failed /
    /// expired, never left once entered.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Expired
        )
    }
}

/// Why a job failed terminally — the classification retry logic and
/// clients dispatch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A transient I/O fault ([`ModelError::Io`](asym_model::ModelError)):
    /// the retryable class.
    Io,
    /// The sorter panicked; the worker caught it (`catch_unwind`). Fatal —
    /// a panic is a bug or an injected crash, not weather.
    Panic,
    /// Any other model or validation error. Fatal.
    Fatal,
}

impl FailureKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Io => "io",
            FailureKind::Panic => "panic",
            FailureKind::Fatal => "fatal",
        }
    }

    /// Parse a stable name back (audit replay uses this).
    pub fn parse(name: &str) -> Option<FailureKind> {
        [FailureKind::Io, FailureKind::Panic, FailureKind::Fatal]
            .into_iter()
            .find(|k| k.name() == name)
    }

    /// Whether a failure of this kind earns another attempt.
    pub fn retryable(self) -> bool {
        matches!(self, FailureKind::Io)
    }
}

/// A point-in-time view of one job, as returned by
/// [`SortService::status`](crate::SortService::status).
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job.
    pub id: JobId,
    /// Lifecycle state at the time of the query.
    pub state: JobState,
    /// The admission-time prediction.
    pub predicted: CostEstimate,
    /// How many run attempts the job has consumed so far.
    pub attempts: u32,
    /// Completion telemetry ([`SortOutcome::to_json`]) once `Completed`.
    ///
    /// [`SortOutcome::to_json`]: asym_core::sort::SortOutcome::to_json
    pub telemetry: Option<String>,
    /// The most recent failure message (`Failed`, or a retried attempt).
    pub error: Option<String>,
    /// The failure classification once `Failed`.
    pub failure: Option<FailureKind>,
}

impl JobStatus {
    /// Render as JSON: id, state, the predicted bounds, and — depending on
    /// state — the nested outcome telemetry or the error message.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("id", self.id)
            .str("state", self.state.name())
            .u64("attempts", self.attempts as u64);
        let mut p = JsonObj::new();
        p.u64("reads", self.predicted.reads)
            .u64("writes", self.predicted.writes)
            .u64("peak_memory", self.predicted.peak_memory as u64)
            .u64("peak_bytes", self.predicted.peak_bytes())
            .u64("io_cost", self.predicted.io_cost());
        o.raw("predicted", &p.finish());
        if let Some(t) = &self.telemetry {
            o.raw("outcome", t);
        }
        if let Some(e) = &self.error {
            o.str("error", e);
        }
        if let Some(k) = self.failure {
            o.str("failure_kind", k.name());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_core::sort::Algorithm;

    fn request() -> JobRequest {
        JobRequest {
            spec: SortSpec::builder(Algorithm::ParSamplesort, 64, 8, 16)
                .k(2)
                .lanes(4)
                .seed(u64::MAX - 1)
                .build()
                .unwrap(),
            workload: Workload::Zipf,
            records: 5_000,
            data_seed: 0xDEAD_BEEF_DEAD_BEEF,
            input: None,
            include_output: true,
            deadline_ms: Some(2_500),
            checkpoint: false,
        }
    }

    #[test]
    fn checkpoint_flag_round_trips_and_reprices() {
        let r = request().checkpointed(true);
        let decoded = JobRequest::from_json(&r.to_json()).expect("decode");
        assert_eq!(decoded, r);
        assert!(decoded.checkpoint);
        assert_eq!(
            r.predict(),
            checkpoint::predict_staged(&r.spec, r.record_count()),
            "checkpointed jobs are priced by the staged envelope"
        );
        let plain = request();
        assert_eq!(plain.predict(), plain.spec.predict(plain.record_count()));
        assert!(
            !JobRequest::from_json(&plain.to_json()).unwrap().checkpoint,
            "absent flag defaults off"
        );
    }

    #[test]
    fn requests_round_trip() {
        let r = request();
        let decoded = JobRequest::from_json(&r.to_json()).expect("decode");
        assert_eq!(decoded, r);
    }

    #[test]
    fn inline_requests_round_trip_and_predict_on_payload_length() {
        let spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(4)
            .build()
            .unwrap();
        let input: Vec<Record> = (0..300).map(|i| Record::new(999 - i, i)).collect();
        let r = JobRequest::inline(spec.clone(), input.clone());
        assert_eq!(r.records, 300);
        assert_eq!(r.record_count(), 300);
        assert!(r.include_output, "inline jobs want the sorted payload back");
        assert_eq!(r.predict(), spec.predict(300));
        let decoded = JobRequest::from_json(&r.to_json()).expect("decode");
        assert_eq!(decoded, r);
        assert_eq!(decoded.input.as_deref(), Some(&input[..]));
    }

    #[test]
    fn inline_length_is_authoritative_over_a_lying_records_field() {
        let text = r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                        "workload": "uniform", "records": 7,
                        "input": [[5, 0], [3, 1], [4, 2]] }"#;
        let r = JobRequest::from_json(text).expect("decode");
        assert_eq!(r.records, 3, "records mirrors input.len()");
        assert_eq!(r.predict(), r.spec.predict(3));
    }

    #[test]
    fn malformed_inline_input_is_typed() {
        for (text, needle) in [
            (
                r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                    "workload": "uniform", "input": 9 }"#,
                "must be an array",
            ),
            (
                r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                    "workload": "uniform", "input": [[1, 2, 3]] }"#,
                "[key, payload] pairs",
            ),
            (
                r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                    "workload": "uniform", "input": [[1, -2]] }"#,
                "payload must be a u64",
            ),
        ] {
            let err = JobRequest::from_json(text).unwrap_err();
            assert!(
                matches!(err, WireError::Malformed(ref m) if m.contains(needle)),
                "{text}: {err:?}"
            );
        }
    }

    #[test]
    fn optional_fields_default() {
        let text = r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                        "workload": "uniform", "records": 100 }"#;
        let r = JobRequest::from_json(text).expect("decode");
        assert_eq!(r.data_seed, 0);
        assert!(!r.include_output);
        assert_eq!(r.deadline_ms, None, "no deadline unless asked for");
    }

    #[test]
    fn bad_requests_are_typed() {
        for (text, needle) in [
            ("42", "must be a JSON object"),
            (r#"{"workload": "zipf", "records": 9}"#, "\"spec\""),
            (
                r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                    "workload": "cauchy", "records": 9 }"#,
                "unknown workload",
            ),
            (
                r#"{ "spec": {"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8},
                    "workload": "zipf" }"#,
                "\"records\"",
            ),
        ] {
            let err = JobRequest::from_json(text).unwrap_err();
            assert!(
                matches!(err, WireError::Malformed(ref m) if m.contains(needle)),
                "{text}: {err:?}"
            );
        }
        // Spec errors pass through typed, not stringified.
        let err = JobRequest::from_json(
            r#"{ "spec": {"algorithm": "aem-mergesort", "m": 4, "b": 32, "omega": 8},
                "workload": "zipf", "records": 9 }"#,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Spec(_)), "{err:?}");
    }

    #[test]
    fn status_renders_state_and_prediction() {
        let r = request();
        let status = JobStatus {
            id: 7,
            state: JobState::Completed,
            predicted: r.predict(),
            attempts: 2,
            telemetry: Some(r#"{ "reads": 1 }"#.into()),
            error: None,
            failure: None,
        };
        let v = Json::parse(&status.to_json()).expect("parses");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("state").and_then(Json::as_str), Some("completed"));
        assert_eq!(v.get("attempts").and_then(Json::as_u64), Some(2));
        let p = v.get("predicted").expect("predicted");
        assert_eq!(
            p.get("peak_bytes").and_then(Json::as_u64),
            Some(r.predict().peak_bytes())
        );
        assert!(v.get("outcome").is_some());
    }

    #[test]
    fn states_and_failure_kinds_have_stable_names() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Expired,
        ] {
            assert_eq!(
                s.is_terminal(),
                matches!(
                    s,
                    JobState::Completed | JobState::Failed | JobState::Expired
                )
            );
        }
        for k in [FailureKind::Io, FailureKind::Panic, FailureKind::Fatal] {
            assert_eq!(FailureKind::parse(k.name()), Some(k));
        }
        assert_eq!(FailureKind::parse("luck"), None);
        assert!(FailureKind::Io.retryable());
        assert!(!FailureKind::Panic.retryable());
        assert!(!FailureKind::Fatal.retryable());
    }
}

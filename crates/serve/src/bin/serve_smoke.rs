//! CI smoke check for the sort service: start a real server on loopback,
//! submit one acceptable and one over-budget job over actual HTTP, verify
//! the telemetry parses and the count gates hold, then drain. Exits
//! non-zero (panics) on any violation — `bench_check` style.

use asym_core::sort::SortOutcome;
use asym_model::json::Json;
use asym_serve::{serve, ServiceConfig, SortService};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const ACCEPTED_JOB: &str = r#"{
    "spec": {"algorithm": "par-aem-samplesort", "m": 64, "b": 8, "omega": 16, "k": 2, "lanes": 4},
    "workload": "uniform", "records": 20000, "data_seed": 7, "include_output": false }"#;

const OVERSIZED_JOB: &str = r#"{
    "spec": {"algorithm": "aem-mergesort", "m": 16777216, "b": 8, "omega": 16},
    "workload": "uniform", "records": 1000, "data_seed": 7, "include_output": false }"#;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    (
        code,
        response.split_once("\r\n\r\n").expect("body").1.to_string(),
    )
}

fn main() {
    let root = std::env::temp_dir().join(format!("asym-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service =
        SortService::start(ServiceConfig::new(2, 64 << 20, root.clone())).expect("start service");
    let server = serve(service, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    println!("serve_smoke: listening on {addr}");

    let (code, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(code, 200, "healthz: {body}");

    // One job the budget admits...
    let (code, body) = request(addr, "POST", "/jobs", ACCEPTED_JOB);
    assert_eq!(code, 202, "submit: {body}");
    let id = Json::parse(&body)
        .expect("submit response parses")
        .get("id")
        .and_then(Json::as_u64)
        .expect("job id");
    println!("serve_smoke: job {id} accepted");

    // ...and one whose predicted peak no budget this size can hold.
    let (code, body) = request(addr, "POST", "/jobs", OVERSIZED_JOB);
    assert_eq!(code, 429, "oversized submit: {body}");
    let rejection = Json::parse(&body).expect("rejection parses");
    assert_eq!(
        rejection.get("error").and_then(Json::as_str),
        Some("rejected")
    );
    let predicted = rejection
        .get("predicted")
        .and_then(Json::as_u64)
        .expect("predicted");
    let available = rejection
        .get("available")
        .and_then(Json::as_u64)
        .expect("available");
    assert!(predicted > available, "rejection must be a real shortfall");
    println!(
        "serve_smoke: oversized job rejected ({predicted} B predicted, {available} B available)"
    );

    // Long-poll the accepted job to completion; its telemetry must decode.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let outcome = loop {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}/wait?timeout_ms=2000"), "");
        let v = Json::parse(&body).expect("status parses");
        match v.get("state").and_then(Json::as_str).expect("state") {
            "completed" => {
                assert_eq!(code, 200, "wait: {body}");
                let telemetry = v.get("outcome").expect("outcome present").render();
                break SortOutcome::from_json(&telemetry).expect("telemetry decodes");
            }
            "failed" => panic!("job failed: {body}"),
            _ => {
                assert_eq!(code, 408, "non-terminal wait must time out: {body}");
                assert!(std::time::Instant::now() < deadline, "job did not finish");
            }
        }
    };
    // Count gates: a real 20k-record parallel sort moved real blocks.
    assert!(outcome.stats.block_reads > 0, "no reads counted");
    assert!(outcome.stats.block_writes > 0, "no writes counted");
    assert!(outcome.report.total() >= outcome.stats.block_reads);
    println!(
        "serve_smoke: job {id} completed ({} reads, {} writes, io cost {})",
        outcome.stats.block_reads,
        outcome.stats.block_writes,
        outcome.report.total(),
    );

    let (code, body) = request(addr, "GET", "/stats", "");
    assert_eq!(code, 200, "stats: {body}");
    let v = Json::parse(&body).expect("stats parse");
    assert_eq!(v.get("submitted").and_then(Json::as_u64), Some(1), "{body}");
    assert_eq!(v.get("rejected").and_then(Json::as_u64), Some(1), "{body}");
    assert_eq!(v.get("completed").and_then(Json::as_u64), Some(1), "{body}");

    let (code, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(code, 200, "shutdown: {body}");
    assert_eq!(
        Json::parse(&body)
            .expect("parses")
            .get("drained")
            .and_then(Json::as_bool),
        Some(true)
    );
    drop(server);

    let audit = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit log");
    for line in audit.lines() {
        asym_serve::AuditEvent::from_json(line).expect("audit line decodes");
    }
    assert!(
        audit.lines().count() >= 4,
        "audit must hold the whole session"
    );
    let replayed = asym_serve::replay(&audit).expect("audit replays");
    assert!(!replayed.torn_tail, "clean shutdown leaves no torn tail");
    assert_eq!(replayed.jobs.len(), 1, "one accepted job in the log");
    assert_eq!(replayed.rejected, 1, "one rejection in the log");
    assert!(
        replayed.pending().next().is_none(),
        "nothing left pending after a drain"
    );
    let _ = std::fs::remove_dir_all(&root);
    println!("serve_smoke: ok");
}

//! CI smoke for the checkpoint/resume subsystem — `bench_check` style,
//! panics (non-zero exit) on any violation.
//!
//! Two waves, both on pinned seeds so a red run reproduces exactly:
//!
//! 1. **Kill/recover mid-phase.** Three checkpointed jobs on one worker;
//!    the process is killed as soon as the WAL shows a job mid-flight
//!    (some phase done, more to go), then recovered. Every job must land
//!    `completed` with modeled stats bit-identical to a fault-free staged
//!    run, the per-job phase stream across the whole log must be exactly
//!    `1..=total` with no duplicates (a completed phase is never re-run),
//!    and the resumed job's total paid writes — fault-free total plus the
//!    one interrupted phase it can have re-started — must stay strictly
//!    under 2× the fault-free run.
//!
//! 2. **Fault storm.** Checkpointed jobs under seeded retryable I/O
//!    faults (reads and writes, torn and clean, no panics). Retries keep
//!    whatever phases checkpointed — the phase stream stays
//!    duplicate-free even across `started` attempt boundaries — and the
//!    final telemetry is still bit-identical to the fault-free reference.
//!
//! Artifacts (audit logs + every job's final manifest) land in
//! `CHECKPOINT_CHAOS_DIR` when set, a temp dir otherwise.

use asym_core::sort::{
    self, Algorithm, CheckpointManifest, MemCheckpointer, SortOutcome, SortSpec,
};
use asym_model::workload::Workload;
use asym_serve::{replay, AuditEvent, JobRequest, JobState, ServiceConfig, SortService};
use em_sim::FaultSpec;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn out_dir() -> PathBuf {
    std::env::var_os("CHECKPOINT_CHAOS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("asym-checkpoint-chaos-{}", std::process::id()))
        })
}

fn spec(fault: Option<FaultSpec>) -> SortSpec {
    SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
        .k(2)
        .fault(fault)
        .build()
        .expect("valid spec")
}

fn job(records: usize, data_seed: u64, fault: Option<FaultSpec>) -> JobRequest {
    JobRequest {
        spec: spec(fault),
        workload: Workload::Zipf,
        records,
        data_seed,
        input: None,
        include_output: false,
        deadline_ms: None,
        checkpoint: true,
    }
}

/// Fault-free staged reference for a request: final outcome plus the
/// manifest at every phase (faults are stripped — modeled costs are
/// fault-invariant, so this is exactly what a surviving job must report).
fn reference(request: &JobRequest) -> (SortOutcome, Vec<CheckpointManifest>) {
    let clean = JobRequest {
        spec: spec(None),
        ..request.clone()
    };
    let input = clean.workload.generate(clean.records, clean.data_seed);
    let mut sink = MemCheckpointer::default();
    let outcome = sort::run_staged(&clean.spec, &input, &mut sink).expect("reference run");
    (outcome, sink.manifests)
}

/// Per-job checkpointed phases in log order, and the raw manifest JSON of
/// the highest phase seen.
fn phase_streams(log: &str) -> BTreeMap<u64, (Vec<u64>, String)> {
    let mut streams: BTreeMap<u64, (Vec<u64>, String)> = BTreeMap::new();
    for line in log.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(AuditEvent::Checkpointed {
            id,
            phase,
            manifest,
        }) = AuditEvent::from_json(line)
        {
            let entry = streams.entry(id).or_default();
            if entry.0.last().is_none_or(|&last| phase > last) {
                entry.1 = manifest;
            }
            entry.0.push(phase);
        }
    }
    streams
}

/// The per-phase *write* deltas of a reference manifest stream.
fn write_deltas(manifests: &[CheckpointManifest]) -> Vec<u64> {
    let mut deltas = Vec::with_capacity(manifests.len());
    let mut prev = 0u64;
    for m in manifests {
        deltas.push(m.stats.block_writes - prev);
        prev = m.stats.block_writes;
    }
    deltas
}

/// Assert `got` telemetry decodes to stats bit-identical to `want`.
fn assert_stats(service: &SortService, id: u64, want: &SortOutcome, label: &str) {
    let status = service.wait(id).expect("known job");
    assert_eq!(
        status.state,
        JobState::Completed,
        "{label}: job {id} not completed: {:?}",
        status.error
    );
    let got =
        SortOutcome::from_json(status.telemetry.as_ref().expect("telemetry")).expect("decodes");
    assert_eq!(
        got.stats, want.stats,
        "{label}: job {id} modeled stats diverged from the fault-free reference"
    );
}

/// Dump every job's final manifest (decoded and re-rendered, proving it
/// parses) next to the audit log, as CI evidence.
fn dump_manifests(root: &Path, log: &str) {
    let dir = root.join("manifests");
    std::fs::create_dir_all(&dir).expect("manifest dir");
    for (id, (_, manifest)) in phase_streams(log) {
        let m = CheckpointManifest::from_json(&manifest).expect("final manifest decodes");
        std::fs::write(dir.join(format!("job-{id}.json")), m.to_json()).expect("write manifest");
    }
}

fn kill_recover_wave(root: &Path) {
    println!("checkpoint_chaos: wave 1 — kill/recover mid-phase");
    let _ = std::fs::remove_dir_all(root);
    let mut cfg = ServiceConfig::new(1, u64::MAX, root.to_path_buf());
    cfg.backoff_base_ms = 1;
    cfg.backoff_cap_ms = 10;

    let requests = [
        job(400_000, 101, None),
        job(200_000, 102, None),
        job(100_000, 103, None),
    ];
    let refs: Vec<(SortOutcome, Vec<CheckpointManifest>)> =
        requests.iter().map(reference).collect();
    let totals: Vec<u64> = refs.iter().map(|(_, m)| m.len() as u64).collect();
    assert!(totals.iter().all(|&t| t >= 3), "jobs must be multi-phase");

    let service = SortService::start(cfg.clone()).expect("start");
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admitted"))
        .collect();

    // Kill as soon as any job is visibly mid-flight in the WAL.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let log = std::fs::read_to_string(root.join("audit.jsonl")).unwrap_or_default();
        let streams = phase_streams(&log);
        let mid_flight = ids.iter().enumerate().any(|(i, id)| {
            streams.get(id).is_some_and(|(phases, _)| {
                let max = phases.iter().copied().max().unwrap_or(0);
                max >= 1
                    && max < totals[i]
                    && !service.status(*id).expect("known").state.is_terminal()
            })
        });
        if mid_flight {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no job was ever observably mid-phase; grow the jobs"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    service.kill();
    drop(service);

    let log = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let pre = replay(&log).expect("replays");
    let killed: Vec<u64> = ids
        .iter()
        .copied()
        .filter(|id| {
            let j = &pre.jobs[id];
            !j.outcome.is_terminal() && j.checkpoint_phase >= 1
        })
        .collect();
    assert!(
        !killed.is_empty(),
        "the kill must have caught at least one job mid-phase"
    );
    println!(
        "checkpoint_chaos: killed with job(s) {killed:?} mid-phase (phases {:?})",
        killed
            .iter()
            .map(|id| pre.jobs[id].checkpoint_phase)
            .collect::<Vec<_>>()
    );

    let (service, report) = SortService::recover(cfg).expect("recover");
    assert!(report.requeued >= 1, "unfinished jobs must be re-queued");
    for (i, id) in ids.iter().enumerate() {
        assert_stats(&service, *id, &refs[i].0, "wave 1");
    }
    service.drain();
    drop(service);

    // Whole-log phase accounting: exactly 1..=total per job, no phase
    // ever re-run — the WAL-visible form of "resume starts at k+1".
    let log = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let streams = phase_streams(&log);
    for (i, id) in ids.iter().enumerate() {
        let (phases, _) = &streams[id];
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (1..=totals[i]).collect::<Vec<_>>(),
            "job {id}: phase stream has duplicates or holes: {phases:?}"
        );
    }

    // The 2× gate: a resumed job paid, at most, the fault-free total plus
    // the one phase the kill interrupted (whose completed phases were
    // restored from the manifest, not re-run). Strictly under 2×.
    for id in &killed {
        let i = ids.iter().position(|x| x == id).expect("known id");
        let fault_free = refs[i].0.stats.block_writes;
        let deltas = write_deltas(&refs[i].1);
        let interrupted = pre.jobs[id].checkpoint_phase as usize; // died in phase k+1
        let paid_bound = fault_free + deltas[interrupted];
        assert!(
            paid_bound < 2 * fault_free,
            "job {id}: paid-writes bound {paid_bound} not under 2x fault-free {fault_free}"
        );
        println!(
            "checkpoint_chaos: job {id} resumed from phase {} — paid ≤ {paid_bound} writes \
             vs {fault_free} fault-free ({:.2}x)",
            interrupted,
            paid_bound as f64 / fault_free as f64
        );
    }
    dump_manifests(root, &log);
}

fn fault_storm_wave(root: &Path) {
    println!("checkpoint_chaos: wave 2 — seeded retryable-fault storm");
    let _ = std::fs::remove_dir_all(root);
    let mut cfg = ServiceConfig::new(2, u64::MAX, root.to_path_buf());
    cfg.max_attempts = 8; // rates decay to zero well inside this
    cfg.backoff_base_ms = 1;
    cfg.backoff_cap_ms = 10;

    // Retryable flavors only (reads, writes, half of them torn) — the
    // storm exercises resume-under-retry, not catch_unwind.
    let storm = |seed: u64| {
        let mut f = FaultSpec::new(seed);
        f.read_permille = 1;
        f.write_permille = 1;
        f.short_permille = 500;
        f
    };
    let requests = [
        job(60_000, 201, Some(storm(0xC0AC))),
        job(40_000, 202, Some(storm(0x5EED))),
        job(30_000, 203, Some(storm(0xFA11))),
    ];
    let refs: Vec<(SortOutcome, Vec<CheckpointManifest>)> =
        requests.iter().map(reference).collect();

    let service = SortService::start(cfg).expect("start");
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admitted"))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        assert_stats(&service, *id, &refs[i].0, "wave 2");
    }
    service.drain();
    drop(service);

    let log = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let rep = replay(&log).expect("replays");
    assert!(
        rep.pending().next().is_none(),
        "every job terminal after the storm"
    );
    let retried: Vec<u64> = ids
        .iter()
        .copied()
        .filter(|id| rep.jobs[id].attempts > 1)
        .collect();
    println!(
        "checkpoint_chaos: storm settled — {} retries across jobs {retried:?}",
        rep.retries
    );

    // Even across retry boundaries no phase is ever paid twice: the
    // stream per job is duplicate-free, and whatever prefix an attempt
    // checkpointed survives into the next attempt.
    let streams = phase_streams(&log);
    for (i, id) in ids.iter().enumerate() {
        let (phases, _) = &streams[id];
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        let total = refs[i].1.len() as u64;
        assert_eq!(
            sorted,
            (1..=total).collect::<Vec<_>>(),
            "job {id}: a retry re-ran a checkpointed phase: {phases:?}"
        );
    }
    dump_manifests(root, &log);
}

fn main() {
    // Injected write faults surface as `StoreIoPanic` inside the workers'
    // catch_unwind; silence the hook for worker threads only so the storm
    // doesn't spray backtraces (main-thread panics stay visible — they
    // are the failures this binary exists to report).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("sort-worker"));
        if !worker {
            default_hook(info);
        }
    }));
    let out = out_dir();
    std::fs::create_dir_all(&out).expect("output dir");
    kill_recover_wave(&out.join("kill-recover"));
    fault_storm_wave(&out.join("fault-storm"));
    println!("checkpoint_chaos: ok (artifacts in {})", out.display());
}

//! The job server proper: a fixed worker pool behind cost-model admission
//! control.
//!
//! Admission is decided **before** a job runs, from
//! [`JobRequest::predict`] alone: the service tracks the summed
//! [`CostEstimate::peak_bytes`] of every admitted-but-unfinished job and
//! rejects any submission that would push the total over
//! [`ServiceConfig::budget_bytes`] — with a typed
//! [`SubmitError::Rejected`] carrying both the job's predicted bytes and
//! the bytes currently available, so clients can resize or retry. Because
//! the peak-memory prediction is a hard bound (each lane's leases are
//! capped at `M + slack`; see `tests/predict_bounds.rs`), the invariant is
//! real: total *actual* peak memory of in-flight jobs never exceeds the
//! budget either.
//!
//! Jobs run on `workers` plain `std::thread` workers pulling from a shared
//! queue ([`EmMachine`](em_sim::EmMachine) is single-threaded by design, so
//! each worker builds its machines privately inside the job run). Jobs on
//! the [`Backend::File`](em_sim::Backend) backend are isolated into a
//! per-job directory under the service root, whatever `file_dir` the wire
//! spec carried. Every lifecycle event is appended to `audit.jsonl` in the
//! service root — one JSON object per line, flushed per event — and
//! [`SortService::drain`] refuses new work, lets the queue empty, joins the
//! workers, and flushes the audit stream.

use crate::job::{JobId, JobRequest, JobState, JobStatus};
use asym_core::sort::{self, CostEstimate, SortSpec, SpecError};
use asym_model::json::JsonObj;
use em_sim::Backend;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

/// How to size a [`SortService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (threads running sorts).
    pub workers: usize,
    /// Admission budget: max summed predicted peak bytes in flight.
    pub budget_bytes: u64,
    /// Service root: per-job file-backend directories and `audit.jsonl`
    /// live here. Created if absent.
    pub root_dir: PathBuf,
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting this job would exceed the memory budget. Both sides of
    /// the comparison are returned so the client can resize or wait.
    Rejected {
        /// The job's predicted peak bytes ([`CostEstimate::peak_bytes`]).
        predicted: u64,
        /// Budget minus bytes currently in flight.
        available: u64,
    },
    /// The service is draining and takes no new work.
    Draining,
}

impl SubmitError {
    /// Structured error payload (`error` is `"rejected"` or `"draining"`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        match self {
            SubmitError::Rejected {
                predicted,
                available,
            } => {
                o.str("error", "rejected")
                    .u64("predicted", *predicted)
                    .u64("available", *available)
                    .str(
                        "message",
                        "predicted peak memory exceeds the available budget",
                    );
            }
            SubmitError::Draining => {
                o.str("error", "draining")
                    .str("message", "service is draining; resubmit elsewhere");
            }
        }
        o.finish()
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected {
                predicted,
                available,
            } => write!(
                f,
                "rejected: predicted peak {predicted} B exceeds available {available} B"
            ),
            SubmitError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time service counters (see [`SortService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted over the service lifetime.
    pub submitted: u64,
    /// Submissions turned away by admission control.
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs whose sort failed.
    pub failed: u64,
    /// Jobs admitted but not yet picked up by a worker.
    pub queued: u64,
    /// Jobs currently running.
    pub active: u64,
    /// Summed predicted peak bytes of admitted-but-unfinished jobs.
    pub in_flight_bytes: u64,
    /// High-water mark of `in_flight_bytes` — the number the budget
    /// invariant is checked against.
    pub peak_in_flight_bytes: u64,
    /// The configured admission budget.
    pub budget_bytes: u64,
}

impl ServiceStats {
    /// Render as JSON.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("submitted", self.submitted)
            .u64("rejected", self.rejected)
            .u64("completed", self.completed)
            .u64("failed", self.failed)
            .u64("queued", self.queued)
            .u64("active", self.active)
            .u64("in_flight_bytes", self.in_flight_bytes)
            .u64("peak_in_flight_bytes", self.peak_in_flight_bytes)
            .u64("budget_bytes", self.budget_bytes);
        o.finish()
    }
}

struct JobEntry {
    request: JobRequest,
    predicted: CostEstimate,
    state: JobState,
    telemetry: Option<String>,
    error: Option<String>,
}

#[derive(Default)]
struct State {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    in_flight_bytes: u64,
    peak_in_flight_bytes: u64,
    active: u64,
    draining: bool,
    drained: bool,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    /// Signals workers: queue non-empty or draining.
    work_ready: Condvar,
    /// Signals waiters: some job left the queue/run set.
    job_done: Condvar,
    audit: Mutex<std::fs::File>,
}

/// The in-process sort server. See the [module docs](self) for semantics;
/// [`crate::http`] puts an HTTP/1.1 front door on it.
pub struct SortService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SortService {
    /// Start the worker pool and open the audit log. Fails only on I/O
    /// (unwritable root directory).
    pub fn start(cfg: ServiceConfig) -> std::io::Result<SortService> {
        std::fs::create_dir_all(&cfg.root_dir)?;
        let audit = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(cfg.root_dir.join("audit.jsonl"))?;
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            audit: Mutex::new(audit),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sort-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(SortService {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Admit or reject one job. Admission holds the job's predicted peak
    /// bytes against the budget until the job finishes.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, SubmitError> {
        let predicted = request.predict();
        let need = predicted.peak_bytes();
        let accepted = {
            let mut st = self.inner.state.lock().expect("service state");
            if st.draining {
                return Err(SubmitError::Draining);
            }
            let available = self
                .inner
                .cfg
                .budget_bytes
                .saturating_sub(st.in_flight_bytes);
            if need > available {
                st.rejected += 1;
                drop(st);
                self.audit_line(|o| {
                    o.str("event", "rejected")
                        .str("algorithm", request.spec.algorithm().name())
                        .u64("records", request.records as u64)
                        .u64("predicted", need)
                        .u64("available", available);
                });
                return Err(SubmitError::Rejected {
                    predicted: need,
                    available,
                });
            }
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            st.in_flight_bytes += need;
            st.peak_in_flight_bytes = st.peak_in_flight_bytes.max(st.in_flight_bytes);
            st.jobs.insert(
                id,
                JobEntry {
                    request: request.clone(),
                    predicted,
                    state: JobState::Queued,
                    telemetry: None,
                    error: None,
                },
            );
            st.queue.push_back(id);
            id
        };
        self.inner.work_ready.notify_one();
        self.audit_line(|o| {
            o.str("event", "accepted")
                .u64("id", accepted)
                .str("algorithm", request.spec.algorithm().name())
                .str("workload", request.workload.name())
                .u64("records", request.records as u64)
                .u64("predicted", need);
        });
        Ok(accepted)
    }

    /// A snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().expect("service state");
        st.jobs.get(&id).map(|e| JobStatus {
            id,
            state: e.state,
            predicted: e.predicted,
            telemetry: e.telemetry.clone(),
            error: e.error.clone(),
        })
    }

    /// Block until job `id` completes or fails; returns its final status
    /// (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().expect("service state");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(e) if matches!(e.state, JobState::Completed | JobState::Failed) => {
                    return Some(JobStatus {
                        id,
                        state: e.state,
                        predicted: e.predicted,
                        telemetry: e.telemetry.clone(),
                        error: e.error.clone(),
                    });
                }
                Some(_) => st = self.inner.job_done.wait(st).expect("service state"),
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.state.lock().expect("service state");
        ServiceStats {
            submitted: st.submitted,
            rejected: st.rejected,
            completed: st.completed,
            failed: st.failed,
            queued: st.queue.len() as u64,
            active: st.active,
            in_flight_bytes: st.in_flight_bytes,
            peak_in_flight_bytes: st.peak_in_flight_bytes,
            budget_bytes: self.inner.cfg.budget_bytes,
        }
    }

    /// Graceful shutdown: refuse new submissions, let every admitted job
    /// finish, join the workers, and flush the audit log. Idempotent.
    pub fn drain(&self) {
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.draining = true;
            self.inner.work_ready.notify_all();
            while !st.queue.is_empty() || st.active > 0 {
                st = self.inner.job_done.wait(st).expect("service state");
            }
            if st.drained {
                return;
            }
            st.drained = true;
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        self.audit_line(|o| {
            o.str("event", "drained");
        });
        let _ = self.inner.audit.lock().expect("audit log").flush();
    }

    fn audit_line(&self, fill: impl FnOnce(&mut JsonObj)) {
        let mut o = JsonObj::new();
        fill(&mut o);
        let line = o.finish();
        let mut f = self.inner.audit.lock().expect("audit log");
        // Audit faults must not take down the data path; events are
        // best-effort once the file opened.
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (id, request) = {
            let mut st = inner.state.lock().expect("service state");
            let id = loop {
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                if st.draining {
                    return;
                }
                st = inner.work_ready.wait(st).expect("service state");
            };
            st.active += 1;
            let entry = st.jobs.get_mut(&id).expect("queued job exists");
            entry.state = JobState::Running;
            (id, entry.request.clone())
        };
        let result = run_job(inner, id, &request);
        let (event, need) = {
            let mut st = inner.state.lock().expect("service state");
            let entry = st.jobs.get_mut(&id).expect("running job exists");
            let need = entry.predicted.peak_bytes();
            let event = match result {
                Ok(telemetry) => {
                    entry.state = JobState::Completed;
                    entry.telemetry = Some(telemetry);
                    "completed"
                }
                Err(msg) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(msg);
                    "failed"
                }
            };
            st.active -= 1;
            st.in_flight_bytes -= need;
            match event {
                "completed" => st.completed += 1,
                _ => st.failed += 1,
            }
            (event, need)
        };
        inner.job_done.notify_all();
        let mut o = JsonObj::new();
        o.str("event", event).u64("id", id).u64("released", need);
        let line = o.finish();
        let mut f = inner.audit.lock().expect("audit log");
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }
}

/// Run one job: regenerate its input, isolate file-backed storage into a
/// per-job directory, sort, and render telemetry.
fn run_job(inner: &Arc<Inner>, id: JobId, request: &JobRequest) -> Result<String, String> {
    let spec = if request.spec.backend() == Backend::File {
        let dir = inner.cfg.root_dir.join(format!("job-{id}"));
        std::fs::create_dir_all(&dir).map_err(|e| format!("job dir: {e}"))?;
        isolate(&request.spec, dir).map_err(|e| format!("respec: {e}"))?
    } else {
        request.spec.clone()
    };
    let input = request
        .workload
        .generate(request.records, request.data_seed);
    let outcome = sort::run(&spec, &input).map_err(|e| e.to_string())?;
    Ok(outcome.to_json(request.include_output))
}

/// The same job description with its file directory re-pointed — wire specs
/// may name any `file_dir`, but on the server every file-backed job gets a
/// private directory under the service root.
fn isolate(spec: &SortSpec, dir: PathBuf) -> Result<SortSpec, SpecError> {
    SortSpec::builder(spec.algorithm(), spec.m(), spec.b(), spec.omega())
        .k(spec.k())
        .lanes(spec.lanes())
        .backend(spec.backend())
        .seed(spec.seed())
        .slack(spec.slack())
        .steal_charge(spec.steal_charge())
        .file_dir(dir)
        .build()
}

//! The job server proper: a fixed worker pool behind cost-model admission
//! control, hardened for crashes.
//!
//! Admission is decided **before** a job runs, from
//! [`JobRequest::predict`] alone: the service tracks the summed
//! [`CostEstimate::peak_bytes`] of every admitted-but-unfinished job and
//! rejects any submission that would push the total over
//! [`ServiceConfig::budget_bytes`] — with a typed
//! [`SubmitError::Rejected`] carrying both the job's predicted bytes and
//! the bytes currently available, so clients can resize or retry. Because
//! the peak-memory prediction is a hard bound (each lane's leases are
//! capped at `M + slack`; see `tests/predict_bounds.rs`), the invariant is
//! real: total *actual* peak memory of in-flight jobs never exceeds the
//! budget either. When the service has a configured I/O rate
//! ([`ServiceConfig::io_per_ms`]), the same prediction also prices *time*:
//! a request whose modeled ETA already exceeds its `deadline_ms` is
//! refused up front ([`SubmitError::DeadlineUnmeetable`]).
//!
//! `audit.jsonl` in the service root is a **write-ahead log**, not a
//! diary: the `accepted` event (carrying the whole request) is flushed
//! *before* the job becomes runnable, and every later transition appends
//! its own versioned [`AuditEvent`]. That
//! ordering is what makes [`SortService::recover`] sound — any job the
//! service ever owned is in the log, so replaying the log re-queues
//! exactly the accepted-but-unfinished jobs, restores terminal results,
//! and resumes the id counter. Replay tolerates a torn final line (the
//! crash tore it mid-write) and is idempotent over prefixes.
//!
//! Failures are classified ([`FailureKind`]): `ModelError::Io` is
//! transient weather and earns bounded-exponential-backoff retries up to
//! [`ServiceConfig::max_attempts`]; panics (caught per-attempt with
//! `catch_unwind`, so a crashing sorter cannot wedge the pool) and
//! validation errors are fatal. Jobs whose deadline lapses while queued
//! expire ([`JobState::Expired`]) without running. [`SortService::drain`]
//! is the graceful shutdown; [`SortService::kill`] is the simulated crash
//! the recovery tests lean on — it drops queued and running work on the
//! floor exactly like a power cut.

use crate::audit::{replay, AuditError, AuditEvent, ReplayOutcome};
use crate::job::{FailureKind, JobId, JobRequest, JobState, JobStatus};
use asym_core::sort::{self, CheckpointManifest, Checkpointer, CostEstimate, SortSpec, SpecError};
use asym_model::json::JsonObj;
use asym_model::ModelError;
use em_sim::{Backend, FaultSpec};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How to size a [`SortService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (threads running sorts).
    pub workers: usize,
    /// Admission budget: max summed predicted peak bytes in flight.
    pub budget_bytes: u64,
    /// Service root: per-job file-backend directories and `audit.jsonl`
    /// live here. Created if absent.
    pub root_dir: PathBuf,
    /// Attempt budget per job: a retryable failure re-queues the job until
    /// this many attempts are spent, then it fails terminally. Minimum 1.
    pub max_attempts: u32,
    /// First retry backoff; attempt `n` waits `base << (n-1)`, capped.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_ms: u64,
    /// Modeled I/O units the service retires per millisecond — the
    /// exchange rate that turns [`CostEstimate::io_cost`] into an ETA for
    /// deadline admission. `0` (the default) disables the ETA check;
    /// queue expiry still applies.
    pub io_per_ms: u64,
    /// Second admission axis: max summed predicted I/O cost
    /// (`reads + ω·writes`, [`CostEstimate::io_cost`]) in flight. A
    /// submission over this line is a typed [`SubmitError::RejectedIo`],
    /// distinct from the memory rejection. `0` (the default): unlimited.
    pub io_budget: u64,
    /// Aging rate of the ETA-priority queue: every millisecond a job
    /// waits discounts its effective cost by this many modeled I/O units,
    /// so bulk jobs cannot starve behind a stream of small ones. `0`
    /// disables aging (pure shortest-ETA-first).
    pub aging_io_per_ms: u64,
}

impl ServiceConfig {
    /// A config with the fault-tolerance knobs at their defaults
    /// (3 attempts, 10 ms base / 1 s cap backoff, no ETA check).
    pub fn new(workers: usize, budget_bytes: u64, root_dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            workers,
            budget_bytes,
            root_dir: root_dir.into(),
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            io_per_ms: 0,
            io_budget: 0,
            aging_io_per_ms: 16,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting this job would exceed the memory budget. Both sides of
    /// the comparison are returned so the client can resize or wait.
    Rejected {
        /// The job's predicted peak bytes ([`CostEstimate::peak_bytes`]).
        predicted: u64,
        /// Budget minus bytes currently in flight.
        available: u64,
    },
    /// Admitting this job would exceed the I/O-cost budget
    /// (`reads + ω·writes`) — the second admission axis. Typed apart from
    /// [`SubmitError::Rejected`] so clients know *which* budget refused.
    RejectedIo {
        /// The job's predicted I/O cost ([`CostEstimate::io_cost`]).
        predicted: u64,
        /// I/O budget minus cost currently in flight.
        available: u64,
    },
    /// The modeled ETA on an otherwise idle service already exceeds the
    /// request's deadline; running it would only waste the queue's time.
    DeadlineUnmeetable {
        /// Modeled milliseconds to run the job ([`CostEstimate::io_cost`]
        /// over [`ServiceConfig::io_per_ms`]).
        eta_ms: u64,
        /// What the request asked for.
        deadline_ms: u64,
    },
    /// The service is draining and takes no new work.
    Draining,
}

impl SubmitError {
    /// Structured error payload (`error` is `"rejected"`,
    /// `"deadline_unmeetable"`, or `"draining"`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        match self {
            SubmitError::Rejected {
                predicted,
                available,
            } => {
                o.str("error", "rejected")
                    .u64("predicted", *predicted)
                    .u64("available", *available)
                    .str(
                        "message",
                        "predicted peak memory exceeds the available budget",
                    );
            }
            SubmitError::RejectedIo {
                predicted,
                available,
            } => {
                o.str("error", "rejected_io")
                    .u64("predicted", *predicted)
                    .u64("available", *available)
                    .str(
                        "message",
                        "predicted I/O cost exceeds the available I/O budget",
                    );
            }
            SubmitError::DeadlineUnmeetable {
                eta_ms,
                deadline_ms,
            } => {
                o.str("error", "deadline_unmeetable")
                    .u64("eta_ms", *eta_ms)
                    .u64("deadline_ms", *deadline_ms)
                    .str("message", "modeled ETA exceeds the requested deadline");
            }
            SubmitError::Draining => {
                o.str("error", "draining")
                    .str("message", "service is draining; resubmit elsewhere");
            }
        }
        o.finish()
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected {
                predicted,
                available,
            } => write!(
                f,
                "rejected: predicted peak {predicted} B exceeds available {available} B"
            ),
            SubmitError::RejectedIo {
                predicted,
                available,
            } => write!(
                f,
                "rejected: predicted I/O cost {predicted} exceeds available {available}"
            ),
            SubmitError::DeadlineUnmeetable {
                eta_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline unmeetable: modeled ETA {eta_ms} ms exceeds deadline {deadline_ms} ms"
            ),
            SubmitError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`SortService::recover`] could not bring the service up.
#[derive(Debug)]
pub enum RecoverError {
    /// The audit log (or service root) could not be read or opened.
    Io(std::io::Error),
    /// The audit log is corrupt or from an unknown schema version.
    Audit(AuditError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery I/O: {e}"),
            RecoverError::Audit(e) => write!(f, "recovery replay: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> RecoverError {
        RecoverError::Io(e)
    }
}

/// What [`SortService::recover`] found in the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Jobs that were accepted but not terminal: re-queued to run again.
    pub requeued: u64,
    /// Terminal jobs restored with their recorded outcomes.
    pub restored: u64,
    /// Where the id counter resumed.
    pub next_id: JobId,
    /// The log's final line was torn by the crash (tolerated).
    pub torn_tail: bool,
}

/// Point-in-time service counters (see [`SortService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted over the service lifetime.
    pub submitted: u64,
    /// Submissions turned away by admission control (budget or deadline).
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Jobs whose deadline lapsed while queued.
    pub expired: u64,
    /// Retryable failures that re-queued a job.
    pub retried: u64,
    /// Jobs admitted but not yet picked up by a worker.
    pub queued: u64,
    /// Jobs parked in retry backoff.
    pub delayed: u64,
    /// Jobs currently running.
    pub active: u64,
    /// Summed predicted peak bytes of admitted-but-unfinished jobs.
    pub in_flight_bytes: u64,
    /// High-water mark of `in_flight_bytes` — the number the budget
    /// invariant is checked against.
    pub peak_in_flight_bytes: u64,
    /// The configured admission budget.
    pub budget_bytes: u64,
    /// Summed predicted I/O cost of admitted-but-unfinished jobs.
    pub in_flight_io: u64,
    /// High-water mark of `in_flight_io`.
    pub peak_in_flight_io: u64,
    /// The configured I/O-cost budget (0: unlimited).
    pub io_budget: u64,
    /// Checkpoint manifests recorded over the service lifetime.
    pub checkpoints: u64,
}

impl ServiceStats {
    /// Render as JSON.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("submitted", self.submitted)
            .u64("rejected", self.rejected)
            .u64("completed", self.completed)
            .u64("failed", self.failed)
            .u64("expired", self.expired)
            .u64("retried", self.retried)
            .u64("queued", self.queued)
            .u64("delayed", self.delayed)
            .u64("active", self.active)
            .u64("in_flight_bytes", self.in_flight_bytes)
            .u64("peak_in_flight_bytes", self.peak_in_flight_bytes)
            .u64("budget_bytes", self.budget_bytes)
            .u64("in_flight_io", self.in_flight_io)
            .u64("peak_in_flight_io", self.peak_in_flight_io)
            .u64("io_budget", self.io_budget)
            .u64("checkpoints", self.checkpoints);
        o.finish()
    }
}

struct JobEntry {
    request: JobRequest,
    predicted: CostEstimate,
    state: JobState,
    attempts: u32,
    /// Queue-expiry deadline, armed at admission from `deadline_ms`.
    expires_at: Option<Instant>,
    telemetry: Option<String>,
    error: Option<String>,
    failure: Option<FailureKind>,
    /// When the job entered the queue — the aging clock of the
    /// ETA-priority scheduler.
    enqueued_at: Instant,
    /// Latest checkpoint manifest (embedded JSON) for a staged job; the
    /// next attempt resumes from it.
    manifest: Option<String>,
    /// `phases_done` of that manifest (0: no progress yet).
    checkpoint_phase: u64,
    /// The plan's total phase count, once known (0: unknown) — lets the
    /// scheduler scale remaining work by phases left.
    checkpoint_total: u64,
    /// Attempt count at the moment of the last phase progress: the retry
    /// clock's epoch. Backoff and fault decay key off
    /// `attempts − attempts_at_progress`, so an attempt that completed a
    /// phase is never re-billed as a failure.
    attempts_at_progress: u32,
}

#[derive(Default)]
struct State {
    next_id: JobId,
    queue: VecDeque<JobId>,
    /// Retry parking lot: jobs waiting out their backoff, with due times.
    delayed: Vec<(Instant, JobId)>,
    jobs: HashMap<JobId, JobEntry>,
    in_flight_bytes: u64,
    peak_in_flight_bytes: u64,
    in_flight_io: u64,
    peak_in_flight_io: u64,
    checkpoints: u64,
    /// Admin hold: workers leave the queue untouched until released —
    /// tests use this to line up a deterministic schedule.
    held: bool,
    active: u64,
    draining: bool,
    drained: bool,
    /// Simulated crash: workers bail, drain no-ops, audit is dead.
    killed: bool,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    expired: u64,
    retried: u64,
}

/// Where audit events go. `Dead` models the post-crash world: writes
/// vanish, exactly as they would have after the real process died.
enum AuditSink {
    File(std::fs::File),
    Dead,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    /// Signals workers: queue non-empty, a delayed job may be due, or
    /// draining.
    work_ready: Condvar,
    /// Signals waiters: some job reached a terminal state.
    job_done: Condvar,
    audit: Mutex<AuditSink>,
}

impl Inner {
    /// Append one event, flushed — the WAL write. Lock order is always
    /// state → audit (or audit alone); never take state while holding
    /// audit.
    fn audit_event(&self, ev: &AuditEvent) {
        let mut sink = self.audit.lock().expect("audit log");
        if let AuditSink::File(f) = &mut *sink {
            // Audit faults must not take down the data path; events are
            // best-effort once the file opened.
            let _ = writeln!(f, "{}", ev.to_json());
            let _ = f.flush();
        }
    }
}

/// The in-process sort server. See the [module docs](self) for semantics;
/// [`crate::http`] puts an HTTP/1.1 front door on it.
pub struct SortService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SortService {
    /// Start fresh: empty state, append to (or create) the audit log.
    /// Fails only on I/O (unwritable root directory).
    pub fn start(cfg: ServiceConfig) -> std::io::Result<SortService> {
        SortService::boot(cfg, State::default(), None)
    }

    /// Start by replaying `audit.jsonl` in the config's root: terminal
    /// jobs come back with their recorded outcomes, accepted-but-
    /// unfinished jobs re-queue (in id order, with a fresh deadline
    /// window), and the id counter resumes past every id ever issued.
    /// Replay is idempotent over any log prefix — recovering from a crash
    /// *during recovery* replays the same prefix plus whatever the first
    /// recovery appended, and lands in the same state. A missing log is an
    /// empty service, not an error.
    pub fn recover(cfg: ServiceConfig) -> Result<(SortService, RecoveryReport), RecoverError> {
        let text = match std::fs::read_to_string(cfg.root_dir.join("audit.jsonl")) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(RecoverError::Io(e)),
        };
        let rep = replay(&text).map_err(RecoverError::Audit)?;
        if rep.torn_tail {
            // Truncate the torn final line before reopening for append, or
            // the next event would glue onto the fragment and corrupt an
            // *interior* line. Dropping an unparsable suffix is idempotent:
            // a crash during this rewrite just leaves a shorter prefix.
            let lines: Vec<&str> = text.lines().collect();
            let mut keep = lines[..lines.len() - 1].join("\n");
            if !keep.is_empty() {
                keep.push('\n');
            }
            std::fs::write(cfg.root_dir.join("audit.jsonl"), keep)?;
        }

        let mut st = State {
            next_id: rep.next_id,
            rejected: rep.rejected,
            retried: rep.retries,
            ..State::default()
        };
        let mut report = RecoveryReport {
            next_id: rep.next_id,
            torn_tail: rep.torn_tail,
            ..RecoveryReport::default()
        };
        let now = Instant::now();
        for (id, job) in rep.jobs {
            st.submitted += 1;
            let predicted = job.request.predict();
            // A recovered staged job carries its latest durable manifest:
            // the next attempt resumes from it instead of restarting, and
            // its retry clock restarts at the manifest's progress epoch.
            let checkpoint_total = job
                .manifest
                .as_deref()
                .and_then(|m| asym_core::sort::CheckpointManifest::from_json(m).ok())
                .map_or(0, |m| m.total_phases);
            let mut entry = JobEntry {
                predicted,
                state: JobState::Queued,
                attempts: job.attempts,
                expires_at: None,
                telemetry: None,
                error: None,
                failure: None,
                request: job.request,
                enqueued_at: now,
                manifest: job.manifest,
                checkpoint_phase: job.checkpoint_phase,
                checkpoint_total,
                attempts_at_progress: job.attempts_at_checkpoint,
            };
            match job.outcome {
                ReplayOutcome::Pending => {
                    // The deadline clock restarts at recovery: the log has
                    // no wall-clock anchor, and punishing a job for the
                    // outage would expire everything.
                    entry.expires_at = entry
                        .request
                        .deadline_ms
                        .map(|ms| now + Duration::from_millis(ms));
                    st.in_flight_bytes += predicted.peak_bytes();
                    st.in_flight_io += predicted.io_cost();
                    st.queue.push_back(id);
                    report.requeued += 1;
                }
                ReplayOutcome::Completed { telemetry } => {
                    entry.state = JobState::Completed;
                    entry.telemetry = Some(telemetry);
                    st.completed += 1;
                    report.restored += 1;
                }
                ReplayOutcome::Failed { kind, error } => {
                    entry.state = JobState::Failed;
                    entry.failure = Some(kind);
                    entry.error = Some(error);
                    st.failed += 1;
                    report.restored += 1;
                }
                ReplayOutcome::Expired => {
                    entry.state = JobState::Expired;
                    entry.error = Some("deadline expired while queued".into());
                    st.expired += 1;
                    report.restored += 1;
                }
            }
            st.jobs.insert(id, entry);
        }
        st.peak_in_flight_bytes = st.in_flight_bytes;
        st.peak_in_flight_io = st.in_flight_io;

        let service = SortService::boot(cfg, st, Some(report))?;
        Ok((service, report))
    }

    fn boot(
        cfg: ServiceConfig,
        state: State,
        recovered: Option<RecoveryReport>,
    ) -> std::io::Result<SortService> {
        std::fs::create_dir_all(&cfg.root_dir)?;
        let audit = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(cfg.root_dir.join("audit.jsonl"))?;
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            audit: Mutex::new(AuditSink::File(audit)),
        });
        if let Some(r) = recovered {
            inner.audit_event(&AuditEvent::Recovered {
                requeued: r.requeued,
                restored: r.restored,
                next_id: r.next_id,
            });
        }
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sort-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(SortService {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Admit or reject one job. Admission holds the job's predicted peak
    /// bytes against the budget until the job finishes, and — this is the
    /// WAL discipline — flushes the `accepted` audit event *before* the
    /// job becomes visible to workers.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, SubmitError> {
        let predicted = request.predict();
        let need = predicted.peak_bytes();
        let id = {
            let mut st = self.inner.state.lock().expect("service state");
            // A killed service must refuse work: its audit sink is dead, so
            // an acceptance here would be a job the log never heard of.
            if st.draining || st.killed {
                return Err(SubmitError::Draining);
            }
            expire_overdue(&self.inner, &mut st);
            let available = self
                .inner
                .cfg
                .budget_bytes
                .saturating_sub(st.in_flight_bytes);
            if need > available {
                st.rejected += 1;
                drop(st);
                self.inner.audit_event(&AuditEvent::RejectedBudget {
                    predicted: need,
                    available,
                });
                return Err(SubmitError::Rejected {
                    predicted: need,
                    available,
                });
            }
            let need_io = predicted.io_cost();
            if self.inner.cfg.io_budget > 0 {
                let available = self.inner.cfg.io_budget.saturating_sub(st.in_flight_io);
                if need_io > available {
                    st.rejected += 1;
                    drop(st);
                    self.inner.audit_event(&AuditEvent::RejectedIo {
                        predicted: need_io,
                        available,
                    });
                    return Err(SubmitError::RejectedIo {
                        predicted: need_io,
                        available,
                    });
                }
            }
            if let (Some(deadline_ms), rate) = (request.deadline_ms, self.inner.cfg.io_per_ms) {
                if rate > 0 {
                    let eta_ms = predicted.io_cost().div_ceil(rate);
                    if eta_ms > deadline_ms {
                        st.rejected += 1;
                        drop(st);
                        self.inner.audit_event(&AuditEvent::RejectedDeadline {
                            eta_ms,
                            deadline_ms,
                        });
                        return Err(SubmitError::DeadlineUnmeetable {
                            eta_ms,
                            deadline_ms,
                        });
                    }
                }
            }
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            st.in_flight_bytes += need;
            st.peak_in_flight_bytes = st.peak_in_flight_bytes.max(st.in_flight_bytes);
            st.in_flight_io += need_io;
            st.peak_in_flight_io = st.peak_in_flight_io.max(st.in_flight_io);
            st.jobs.insert(
                id,
                JobEntry {
                    request: request.clone(),
                    predicted,
                    state: JobState::Queued,
                    attempts: 0,
                    expires_at: request
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms)),
                    telemetry: None,
                    error: None,
                    failure: None,
                    enqueued_at: Instant::now(),
                    manifest: None,
                    checkpoint_phase: 0,
                    checkpoint_total: 0,
                    attempts_at_progress: 0,
                },
            );
            // WAL ordering: the accepted record must be on disk before the
            // job can run, or a crash could complete work the log never
            // heard of. The audit lock nests inside the state lock here;
            // that is the one sanctioned nesting (state → audit).
            self.inner.audit_event(&AuditEvent::Accepted {
                id,
                request,
                predicted_bytes: need,
            });
            st.queue.push_back(id);
            id
        };
        self.inner.work_ready.notify_one();
        Ok(id)
    }

    /// A snapshot of one job, or `None` for an unknown id. Observing a
    /// job also sweeps queue expiry, so a lapsed deadline is visible on
    /// the very next status call even on an idle service.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().expect("service state");
        expire_overdue(&self.inner, &mut st);
        st.jobs.get(&id).map(|e| snapshot(id, e))
    }

    /// Block until job `id` reaches a terminal state; returns its final
    /// status (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        self.wait_until(id, None)
    }

    /// Like [`wait`](SortService::wait), but gives up after `timeout`. On
    /// timeout the job's *current* (non-terminal) snapshot is returned —
    /// callers distinguish by [`JobState::is_terminal`].
    pub fn wait_timeout(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        self.wait_until(id, Some(Instant::now() + timeout))
    }

    fn wait_until(&self, id: JobId, deadline: Option<Instant>) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().expect("service state");
        loop {
            expire_overdue(&self.inner, &mut st);
            let e = st.jobs.get(&id)?;
            if e.state.is_terminal() {
                return Some(snapshot(id, e));
            }
            let now = Instant::now();
            if deadline.is_some_and(|d| d <= now) {
                return Some(snapshot(id, e));
            }
            // Short bounded steps rather than one long wait: expiry has no
            // dedicated timer thread, so waiters double as the sweep.
            let step = deadline
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50))
                .max(Duration::from_millis(1));
            let (guard, _) = self
                .inner
                .job_done
                .wait_timeout(st, step)
                .expect("service state");
            st = guard;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let mut st = self.inner.state.lock().expect("service state");
        expire_overdue(&self.inner, &mut st);
        ServiceStats {
            submitted: st.submitted,
            rejected: st.rejected,
            completed: st.completed,
            failed: st.failed,
            expired: st.expired,
            retried: st.retried,
            queued: st.queue.len() as u64,
            delayed: st.delayed.len() as u64,
            active: st.active,
            in_flight_bytes: st.in_flight_bytes,
            peak_in_flight_bytes: st.peak_in_flight_bytes,
            budget_bytes: self.inner.cfg.budget_bytes,
            in_flight_io: st.in_flight_io,
            peak_in_flight_io: st.peak_in_flight_io,
            io_budget: self.inner.cfg.io_budget,
            checkpoints: st.checkpoints,
        }
    }

    /// Admin hold: workers stop picking up queued (and parked) jobs until
    /// [`release`](SortService::release). Running jobs finish. Tests use
    /// the pair to line up a queue and observe the scheduler's order
    /// deterministically; [`drain`](SortService::drain) clears a hold so a
    /// held service still shuts down.
    pub fn hold(&self) {
        self.inner.state.lock().expect("service state").held = true;
    }

    /// Lift an admin [`hold`](SortService::hold).
    pub fn release(&self) {
        self.inner.state.lock().expect("service state").held = false;
        self.inner.work_ready.notify_all();
    }

    /// Graceful shutdown: refuse new submissions, let every admitted job
    /// finish (including parked retries), join the workers, and flush the
    /// audit log. Idempotent; a no-op after [`kill`](SortService::kill).
    pub fn drain(&self) {
        {
            let mut st = self.inner.state.lock().expect("service state");
            if st.killed {
                return;
            }
            st.draining = true;
            // A hold must not outlive a drain: the whole point of drain is
            // that admitted work finishes.
            st.held = false;
            self.inner.work_ready.notify_all();
            while !st.queue.is_empty() || !st.delayed.is_empty() || st.active > 0 {
                expire_overdue(&self.inner, &mut st);
                if st.killed {
                    return;
                }
                let (guard, _) = self
                    .inner
                    .job_done
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("service state");
                st = guard;
            }
            if st.drained {
                return;
            }
            st.drained = true;
        }
        self.join_workers();
        self.inner.audit_event(&AuditEvent::Drained);
        if let AuditSink::File(f) = &mut *self.inner.audit.lock().expect("audit log") {
            let _ = f.flush();
        }
    }

    /// Simulated crash, for recovery and chaos tests: flush what the log
    /// already has, then make every *later* audit write vanish (as it
    /// would have in a real crash), abandon queued and running jobs, and
    /// join the workers. The on-disk log is left exactly as a power cut
    /// would leave it; [`recover`](SortService::recover) picks up from
    /// there.
    pub fn kill(&self) {
        {
            let mut sink = self.inner.audit.lock().expect("audit log");
            if let AuditSink::File(f) = &mut *sink {
                let _ = f.flush();
            }
            *sink = AuditSink::Dead;
        }
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.killed = true;
        }
        self.inner.work_ready.notify_all();
        self.inner.job_done.notify_all();
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.drain();
    }
}

fn snapshot(id: JobId, e: &JobEntry) -> JobStatus {
    JobStatus {
        id,
        state: e.state,
        predicted: e.predicted,
        attempts: e.attempts,
        telemetry: e.telemetry.clone(),
        error: e.error.clone(),
        failure: e.failure,
    }
}

/// Expire every queued job whose deadline has lapsed. Called under the
/// state lock from every observer path and from the worker loop, so a
/// dedicated timer thread is unnecessary. Running jobs are never expired
/// — they already consumed a worker; killing them mid-sort buys nothing.
fn expire_overdue(inner: &Inner, st: &mut State) {
    let now = Instant::now();
    let overdue: Vec<JobId> = st
        .jobs
        .iter()
        .filter(|(_, e)| e.state == JobState::Queued && e.expires_at.is_some_and(|t| t <= now))
        .map(|(&id, _)| id)
        .collect();
    if overdue.is_empty() {
        return;
    }
    for &id in &overdue {
        st.queue.retain(|&q| q != id);
        st.delayed.retain(|&(_, d)| d != id);
        let e = st.jobs.get_mut(&id).expect("overdue job exists");
        e.state = JobState::Expired;
        e.error = Some("deadline expired while queued".into());
        st.in_flight_bytes -= e.predicted.peak_bytes();
        st.in_flight_io -= e.predicted.io_cost();
        st.expired += 1;
        inner.audit_event(&AuditEvent::Expired { id });
    }
    inner.job_done.notify_all();
}

/// A classified attempt failure.
struct JobFailure {
    kind: FailureKind,
    message: String,
}

/// The ETA-priority pick: the queued job with the lowest *effective*
/// cost — modeled I/O still owed (scaled by phases left, for checkpointed
/// jobs whose completed phases are already paid for) minus an aging
/// credit of [`ServiceConfig::aging_io_per_ms`] per millisecond waited.
/// Small urgent jobs jump bulk ones; the aging term guarantees every
/// job's effective cost eventually goes lowest, so nothing starves. Ties
/// break to the lower id (submission order). Returns the queue index.
fn pick_next(st: &State, cfg: &ServiceConfig, now: Instant) -> Option<usize> {
    let mut best: Option<(i128, JobId, usize)> = None;
    for (pos, &id) in st.queue.iter().enumerate() {
        let Some(e) = st.jobs.get(&id) else { continue };
        let io = e.predicted.io_cost();
        let remaining = if e.checkpoint_total > 0 {
            let left = e.checkpoint_total - e.checkpoint_phase.min(e.checkpoint_total);
            (io as u128 * left as u128 / e.checkpoint_total as u128) as u64
        } else {
            io
        };
        let age_ms = now.saturating_duration_since(e.enqueued_at).as_millis() as i128;
        let effective = remaining as i128 - age_ms * cfg.aging_io_per_ms as i128;
        if best.is_none_or(|(be, bid, _)| (effective, id) < (be, bid)) {
            best = Some((effective, id, pos));
        }
    }
    best.map(|(_, _, pos)| pos)
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (id, request, attempt, failed_since_progress, manifest) = {
            let mut st = inner.state.lock().expect("service state");
            let id = loop {
                if st.killed {
                    return;
                }
                expire_overdue(inner, &mut st);
                let now = Instant::now();
                if !st.held {
                    if let Some(pos) = pick_next(&st, &inner.cfg, now) {
                        break st.queue.remove(pos).expect("picked index in range");
                    }
                    if let Some(i) = st.delayed.iter().position(|&(due, _)| due <= now) {
                        let (_, id) = st.delayed.swap_remove(i);
                        break id;
                    }
                }
                if st.draining && st.queue.is_empty() && st.delayed.is_empty() {
                    return;
                }
                // Sleep until the earliest reason to wake: a due retry, a
                // queued job's expiry, or (bounded) a notification.
                let mut step = Duration::from_millis(500);
                for &(due, _) in &st.delayed {
                    step = step.min(due.saturating_duration_since(now));
                }
                for e in st.jobs.values() {
                    if e.state == JobState::Queued {
                        if let Some(t) = e.expires_at {
                            step = step.min(t.saturating_duration_since(now));
                        }
                    }
                }
                let (guard, _) = inner
                    .work_ready
                    .wait_timeout(st, step.max(Duration::from_millis(1)))
                    .expect("service state");
                st = guard;
            };
            st.active += 1;
            let entry = st.jobs.get_mut(&id).expect("queued job exists");
            entry.state = JobState::Running;
            entry.attempts += 1;
            let attempt = entry.attempts;
            // The fault-decay clock counts only attempts since the last
            // phase progress: an attempt that checkpointed a phase reset
            // the storm's schedule along with the retry clock.
            let failed_since_progress = (attempt - 1).saturating_sub(entry.attempts_at_progress);
            let manifest = entry.manifest.clone();
            inner.audit_event(&AuditEvent::Started { id, attempt });
            (
                id,
                entry.request.clone(),
                attempt,
                failed_since_progress,
                manifest,
            )
        };

        // The sort runs outside the lock, fenced by catch_unwind: a
        // panicking sorter becomes a typed failure, not a dead worker.
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_job(
                inner,
                id,
                &request,
                failed_since_progress,
                manifest.as_deref(),
            )
        }))
        .unwrap_or_else(|payload| {
            // Store paths with no `Result` channel (block appends,
            // cursor reads) unwind injected device faults as a typed
            // payload — those are transient I/O, not bugs, and retry.
            if let Some(io) = payload.downcast_ref::<em_sim::StoreIoPanic>() {
                return Err(JobFailure {
                    kind: FailureKind::Io,
                    message: format!("store I/O: {io}"),
                });
            }
            Err(JobFailure {
                kind: FailureKind::Panic,
                message: panic_message(payload.as_ref()),
            })
        });

        {
            let mut st = inner.state.lock().expect("service state");
            let max_attempts = inner.cfg.max_attempts.max(1);
            let entry = st.jobs.get_mut(&id).expect("running job exists");
            let need = entry.predicted.peak_bytes();
            let need_io = entry.predicted.io_cost();
            // The retry budget is per progress epoch: attempts that
            // completed a phase (this one included — the checkpointer may
            // have advanced the epoch while we ran) moved the epoch
            // forward and are not billed against `max_attempts`.
            let effective_attempts = attempt.saturating_sub(entry.attempts_at_progress);
            enum Done {
                Completed,
                Retried(u64),
                Failed,
            }
            let done = match result {
                Ok(telemetry) => {
                    entry.state = JobState::Completed;
                    entry.telemetry = Some(telemetry.clone());
                    entry.error = None;
                    inner.audit_event(&AuditEvent::Completed { id, telemetry });
                    Done::Completed
                }
                Err(f) if f.kind.retryable() && effective_attempts < max_attempts && !st.killed => {
                    let entry = st.jobs.get_mut(&id).expect("running job exists");
                    entry.state = JobState::Queued;
                    entry.error = Some(f.message.clone());
                    let shift = effective_attempts.saturating_sub(1).min(20);
                    let backoff_ms = inner
                        .cfg
                        .backoff_base_ms
                        .saturating_mul(1u64 << shift)
                        .min(inner.cfg.backoff_cap_ms);
                    inner.audit_event(&AuditEvent::Retried {
                        id,
                        attempt,
                        backoff_ms,
                        error: f.message,
                    });
                    Done::Retried(backoff_ms)
                }
                Err(f) => {
                    let entry = st.jobs.get_mut(&id).expect("running job exists");
                    entry.state = JobState::Failed;
                    entry.failure = Some(f.kind);
                    entry.error = Some(f.message.clone());
                    inner.audit_event(&AuditEvent::Failed {
                        id,
                        kind: f.kind,
                        error: f.message,
                    });
                    Done::Failed
                }
            };
            st.active -= 1;
            match done {
                Done::Completed => {
                    st.completed += 1;
                    st.in_flight_bytes -= need;
                    st.in_flight_io -= need_io;
                }
                Done::Retried(backoff_ms) => {
                    // The budgets stay held: the job is still the
                    // service's responsibility, just parked.
                    st.retried += 1;
                    st.delayed
                        .push((Instant::now() + Duration::from_millis(backoff_ms), id));
                }
                Done::Failed => {
                    st.failed += 1;
                    st.in_flight_bytes -= need;
                    st.in_flight_io -= need_io;
                }
            }
        }
        inner.job_done.notify_all();
        inner.work_ready.notify_all();
    }
}

/// The [`Checkpointer`] the worker hands a staged job: each manifest is
/// appended to the audit WAL *first* (durability), then credited to the
/// job's in-memory entry — progress only ever advances, and advancing it
/// moves the retry clock's epoch so the attempt that made progress is
/// never re-billed. The two locks are taken strictly in sequence (audit,
/// then state), never nested, per the service's lock order.
struct ServiceCheckpointer {
    inner: Arc<Inner>,
    id: JobId,
}

impl Checkpointer for ServiceCheckpointer {
    fn save(&mut self, manifest: &CheckpointManifest) -> asym_model::Result<()> {
        let rendered = manifest.to_json();
        self.inner.audit_event(&AuditEvent::Checkpointed {
            id: self.id,
            phase: manifest.phases_done,
            manifest: rendered.clone(),
        });
        let mut st = self.inner.state.lock().expect("service state");
        st.checkpoints += 1;
        if let Some(e) = st.jobs.get_mut(&self.id) {
            if manifest.phases_done > e.checkpoint_phase {
                e.checkpoint_phase = manifest.phases_done;
                e.checkpoint_total = manifest.total_phases;
                e.manifest = Some(rendered);
                e.attempts_at_progress = e.attempts;
            }
        }
        Ok(())
    }
}

/// Run one attempt: materialize the input (inline payload, or regenerated
/// from the named workload), point file-backed storage and
/// the fault schedule at this attempt, sort, render telemetry. Staged
/// (checkpointed) jobs resume from their latest durable manifest when it
/// still validates, and fall back to a fresh staged run otherwise.
/// Failures come back classified.
fn run_job(
    inner: &Arc<Inner>,
    id: JobId,
    request: &JobRequest,
    failed_since_progress: u32,
    manifest: Option<&str>,
) -> Result<String, JobFailure> {
    let dir = if request.spec.backend() == Backend::File {
        let dir = inner.cfg.root_dir.join(format!("job-{id}"));
        // A transient filesystem hiccup here is as retryable as one
        // inside the sort.
        std::fs::create_dir_all(&dir).map_err(|e| JobFailure {
            kind: FailureKind::Io,
            message: format!("job dir: {e}"),
        })?;
        Some(dir)
    } else {
        None
    };
    // Each retry decays the injected-fault schedule (`for_attempt`): the
    // storm abates while the backoff waits it out, so chaos runs
    // terminate by construction. The clock is attempts *since the last
    // checkpoint progress*, not absolute attempts — a staged job that
    // keeps finishing phases keeps its storm (and its backoff) fresh
    // rather than being billed for attempts that worked.
    let fault = request
        .spec
        .fault()
        .map(|f| f.for_attempt(failed_since_progress));
    let spec = if dir.is_some() || fault != request.spec.fault() {
        respec(&request.spec, dir, fault).map_err(|e| JobFailure {
            kind: FailureKind::Fatal,
            message: format!("respec: {e}"),
        })?
    } else {
        request.spec.clone()
    };
    // Inline payloads sort verbatim; generator jobs regenerate server-side.
    let input = match &request.input {
        Some(records) => records.clone(),
        None => request
            .workload
            .generate(request.records, request.data_seed),
    };
    let outcome = if request.checkpoint {
        // Staged path: resume from the latest durable manifest when it
        // still matches this job (the digest ignores backend/file_dir/
        // fault, so the per-attempt respec cannot orphan a manifest);
        // otherwise start a fresh staged run. Either way every completed
        // phase lands in the WAL via the service checkpointer.
        let mut sink = ServiceCheckpointer {
            inner: Arc::clone(inner),
            id,
        };
        let resume = manifest
            .and_then(|m| CheckpointManifest::from_json(m).ok())
            .filter(|m| m.validate(&spec, &input).is_ok());
        match resume {
            Some(m) => sort::resume_from(&spec, &input, &m, &mut sink),
            None => sort::run_staged(&spec, &input, &mut sink),
        }
    } else {
        sort::run(&spec, &input)
    }
    .map_err(|e| JobFailure {
        kind: match e {
            ModelError::Io(_) => FailureKind::Io,
            _ => FailureKind::Fatal,
        },
        message: e.to_string(),
    })?;
    Ok(outcome.to_json(request.include_output))
}

/// The same job description with its file directory re-pointed (wire specs
/// may name any `file_dir`; on the server every file-backed job gets a
/// private directory under the service root) and its fault schedule
/// stepped to the current attempt.
fn respec(
    spec: &SortSpec,
    dir: Option<PathBuf>,
    fault: Option<FaultSpec>,
) -> Result<SortSpec, SpecError> {
    let mut b = SortSpec::builder(spec.algorithm(), spec.m(), spec.b(), spec.omega())
        .k(spec.k())
        .lanes(spec.lanes())
        .backend(spec.backend())
        .seed(spec.seed())
        .slack(spec.slack())
        .steal_charge(spec.steal_charge())
        .fault(fault);
    if let Some(d) = dir.or_else(|| spec.file_dir().map(PathBuf::from)) {
        b = b.file_dir(d);
    }
    b.build()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".into()
    }
}

//! Sort-as-a-service: the paper's cost model as an admission controller.
//!
//! The SPAA 2015 cost model prices a sort before it runs — reads, ω-weighted
//! writes, and a *hard* peak-memory bound, all computable from the job
//! description alone ([`SortSpec::predict`]). This crate turns that into a
//! multi-tenant job server: [`SortService`] runs submitted
//! [`JobRequest`]s on a fixed worker pool and admits them against a
//! predicted-peak-memory budget, so an over-committed machine is refused at
//! submission time ([`SubmitError::Rejected`]) instead of discovered by
//! thrashing at run time. [`http::serve`] puts a dependency-free HTTP/1.1
//! front door on it, speaking the [`asym_core::sort::wire`] JSON formats.
//!
//! The service is built to survive its process: `audit.jsonl` is a
//! versioned write-ahead log ([`audit`]), [`SortService::recover`] replays
//! it after a crash (re-queueing unfinished jobs, restoring finished
//! ones), transient I/O failures retry with bounded exponential backoff,
//! panicking sorters are caught per-attempt, and deadlines are enforced
//! both at admission (modeled ETA) and by queue expiry. The
//! `em_sim::FaultStore` fault injector plugs into job specs so all of it
//! is testable under a seeded storm (`tests/chaos.rs`).
//!
//! Long jobs can opt into *checkpointed* execution
//! ([`JobRequest::checkpoint`]): the sort runs as a staged sequence of
//! phases, every completed phase lands in the WAL as a `checkpointed`
//! manifest, and a crashed, killed, or retried attempt resumes from the
//! latest manifest instead of restarting — recovery re-queues unfinished
//! jobs *with* their manifests, and the retry/backoff/fault-decay clocks
//! key off attempts-since-last-progress so work that checkpointed is
//! never re-billed. The queue itself is ETA-priority ordered (smallest
//! predicted remaining I/O first, with an aging credit so bulk jobs
//! cannot starve), and admission budgets both predicted peak bytes and
//! predicted I/O cost ([`SubmitError::RejectedIo`]).
//!
//! ```
//! use asym_core::sort::{Algorithm, SortSpec};
//! use asym_model::workload::Workload;
//! use asym_serve::{JobRequest, ServiceConfig, SortService};
//!
//! let dir = std::env::temp_dir().join("asym-serve-doc");
//! let service = SortService::start(ServiceConfig::new(2, 1 << 20, dir)).expect("start");
//! let id = service
//!     .submit(JobRequest {
//!         spec: SortSpec::builder(Algorithm::Mergesort, 64, 8, 16).build().unwrap(),
//!         workload: Workload::UniformRandom,
//!         records: 10_000,
//!         data_seed: 42,
//!         input: None,
//!         include_output: false,
//!         deadline_ms: None,
//!         checkpoint: false,
//!     })
//!     .expect("within budget");
//! let done = service.wait(id).expect("known job");
//! assert_eq!(done.state, asym_serve::JobState::Completed);
//! service.drain();
//! ```
//!
//! [`SortSpec::predict`]: asym_core::sort::SortSpec::predict
//! [`SortSpec`]: asym_core::sort::SortSpec

pub mod audit;
pub mod http;
pub mod job;
pub mod service;

pub use audit::{replay, AuditError, AuditEvent, Replay, ReplayJob, ReplayOutcome, SCHEMA_VERSION};
pub use http::{serve, ServerHandle};
pub use job::{FailureKind, JobId, JobRequest, JobState, JobStatus};
pub use service::{
    RecoverError, RecoveryReport, ServiceConfig, ServiceStats, SortService, SubmitError,
};

//! Sort-as-a-service: the paper's cost model as an admission controller.
//!
//! The SPAA 2015 cost model prices a sort before it runs — reads, ω-weighted
//! writes, and a *hard* peak-memory bound, all computable from the job
//! description alone ([`SortSpec::predict`]). This crate turns that into a
//! multi-tenant job server: [`SortService`] runs submitted
//! [`JobRequest`]s on a fixed worker pool and admits them against a
//! predicted-peak-memory budget, so an over-committed machine is refused at
//! submission time ([`SubmitError::Rejected`]) instead of discovered by
//! thrashing at run time. [`http::serve`] puts a dependency-free HTTP/1.1
//! front door on it, speaking the [`asym_core::sort::wire`] JSON formats;
//! every lifecycle event lands in an append-only `audit.jsonl`.
//!
//! ```
//! use asym_core::sort::{Algorithm, SortSpec};
//! use asym_model::workload::Workload;
//! use asym_serve::{JobRequest, ServiceConfig, SortService};
//!
//! let dir = std::env::temp_dir().join("asym-serve-doc");
//! let service = SortService::start(ServiceConfig {
//!     workers: 2,
//!     budget_bytes: 1 << 20,
//!     root_dir: dir,
//! })
//! .expect("start");
//! let id = service
//!     .submit(JobRequest {
//!         spec: SortSpec::builder(Algorithm::Mergesort, 64, 8, 16).build().unwrap(),
//!         workload: Workload::UniformRandom,
//!         records: 10_000,
//!         data_seed: 42,
//!         include_output: false,
//!     })
//!     .expect("within budget");
//! let done = service.wait(id).expect("known job");
//! assert_eq!(done.state, asym_serve::JobState::Completed);
//! service.drain();
//! ```
//!
//! [`SortSpec::predict`]: asym_core::sort::SortSpec::predict
//! [`SortSpec`]: asym_core::sort::SortSpec

pub mod http;
pub mod job;
pub mod service;

pub use http::{serve, ServerHandle};
pub use job::{JobId, JobRequest, JobState, JobStatus};
pub use service::{ServiceConfig, ServiceStats, SortService, SubmitError};

//! The HTTP/1.1 front door: [`SortService`] over a `std::net::TcpListener`.
//!
//! Deliberately minimal — the same dependency-free discipline as the JSON
//! codec. One request per connection (`Connection: close`), bodies framed
//! by `Content-Length`, every response `application/json`. Routes:
//!
//! | Method | Path          | Meaning                                       |
//! |--------|---------------|-----------------------------------------------|
//! | GET    | `/healthz`    | liveness → `{"ok": true}`                     |
//! | POST   | `/jobs`       | submit a [`JobRequest`] → `202` + id, `429` on admission rejection, `400` on malformed/invalid payloads |
//! | GET    | `/jobs/<id>`  | job status/telemetry → `200`, `404` unknown   |
//! | GET    | `/stats`      | service counters                              |
//! | POST   | `/shutdown`   | graceful drain, respond, stop accepting       |
//!
//! The accept loop runs on its own thread; [`ServerHandle::shutdown`]
//! triggers the same drain as `POST /shutdown`, nudging the blocking
//! `accept` with a loopback self-connection.

use crate::job::JobRequest;
use crate::service::SortService;
use asym_model::json::JsonObj;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Largest accepted request body; bigger submissions get `400`.
const MAX_BODY: usize = 1 << 20;

/// A running HTTP server wrapping a [`SortService`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<SortService>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (for in-process inspection).
    pub fn service(&self) -> &SortService {
        &self.service
    }

    /// Drain the service and stop the accept loop (idempotent; also runs
    /// on drop).
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Nudge the blocking accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.service.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` until shutdown.
pub fn serve(service: SortService, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("sort-http".into())
            .spawn(move || accept_loop(&listener, &service, &stop))?
    };
    Ok(ServerHandle {
        addr,
        stop,
        service,
        thread: Some(thread),
    })
}

fn accept_loop(listener: &TcpListener, service: &SortService, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // One request per connection, handled inline: submissions are
        // admission decisions (microseconds), the sorts themselves run on
        // the worker pool.
        if let HandleResult::Shutdown = handle(stream, service) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

enum HandleResult {
    KeepServing,
    Shutdown,
}

fn handle(stream: TcpStream, service: &SortService) -> HandleResult {
    let mut reader = BufReader::new(stream);
    let Some((method, path, body)) = read_request(&mut reader) else {
        respond(
            reader.into_inner(),
            400,
            "Bad Request",
            r#"{"error": "malformed", "message": "unreadable HTTP request"}"#,
        );
        return HandleResult::KeepServing;
    };
    let stream = reader.into_inner();
    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond(stream, 200, "OK", r#"{"ok": true}"#),
        ("GET", "/stats") => respond(stream, 200, "OK", &service.stats().to_json()),
        ("POST", "/jobs") => match JobRequest::from_json(&body) {
            Err(e) => respond(stream, 400, "Bad Request", &e.to_json()),
            Ok(request) => match service.submit(request) {
                Ok(id) => {
                    let status = service.status(id).expect("submitted job exists");
                    let mut o = JsonObj::new();
                    o.u64("id", id).raw("status", &status.to_json());
                    respond(stream, 202, "Accepted", &o.finish());
                }
                Err(e @ crate::service::SubmitError::Rejected { .. }) => {
                    respond(stream, 429, "Too Many Requests", &e.to_json());
                }
                Err(e) => respond(stream, 503, "Service Unavailable", &e.to_json()),
            },
        },
        ("GET", p) if p.starts_with("/jobs/") => {
            match p["/jobs/".len()..]
                .parse::<u64>()
                .ok()
                .and_then(|id| service.status(id))
            {
                Some(status) => respond(stream, 200, "OK", &status.to_json()),
                None => respond(stream, 404, "Not Found", r#"{"error": "unknown job"}"#),
            }
        }
        ("POST", "/shutdown") => {
            service.drain();
            let mut o = JsonObj::new();
            o.bool("drained", true)
                .raw("stats", &service.stats().to_json());
            respond(stream, 200, "OK", &o.finish());
            return HandleResult::Shutdown;
        }
        _ => respond(stream, 404, "Not Found", r#"{"error": "no such route"}"#),
    }
    HandleResult::KeepServing
}

/// Parse one request: the request line, headers (only `Content-Length`
/// matters), then exactly that many body bytes. `None` on anything
/// unframeable.
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<(String, String, String)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().ok()?;
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((method, path, String::from_utf8(body).ok()?))
}

fn respond(mut stream: TcpStream, code: u16, reason: &str, body: &str) {
    let msg = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    // The client may already have hung up; nothing useful to do about it.
    let _ = stream.write_all(msg.as_bytes());
    let _ = stream.flush();
}

//! The HTTP/1.1 front door: [`SortService`] over a `std::net::TcpListener`.
//!
//! Deliberately minimal — the same dependency-free discipline as the JSON
//! codec. One request per connection (`Connection: close`), bodies framed
//! by `Content-Length` and capped ([`MAX_BODY`] → typed `413` *before* any
//! allocation), every response `application/json`. Routes:
//!
//! | Method | Path               | Meaning                                  |
//! |--------|--------------------|------------------------------------------|
//! | GET    | `/healthz`         | liveness → `{"ok": true}`                |
//! | POST   | `/jobs`            | submit a [`JobRequest`] → `202` + id, `429` budget rejection, `422` unmeetable deadline, `400` malformed |
//! | GET    | `/jobs/<id>`       | job status/telemetry → `200`, `404` unknown, `504` expired |
//! | GET    | `/jobs/<id>/wait`  | long-poll until terminal → `200` terminal, `408` + current status on server-side timeout (`?timeout_ms=`, capped), `404`, `504` expired |
//! | GET    | `/stats`           | service counters                         |
//! | POST   | `/shutdown`        | graceful drain, respond, stop accepting  |
//!
//! The accept loop runs on its own thread; [`ServerHandle::shutdown`]
//! triggers the same drain as `POST /shutdown`, nudging the blocking
//! `accept` with a loopback self-connection.

use crate::job::{JobRequest, JobState};
use crate::service::{SortService, SubmitError};
use asym_model::json::JsonObj;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request body; bigger submissions get a typed `413`
/// without the body ever being read.
pub const MAX_BODY: usize = 1 << 20;

/// `/jobs/<id>/wait` with no `timeout_ms` waits this long.
const DEFAULT_WAIT_MS: u64 = 2_000;

/// Hard cap on `timeout_ms` — a long-poll cannot pin a connection forever.
const MAX_WAIT_MS: u64 = 10_000;

/// A running HTTP server wrapping a [`SortService`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<SortService>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (for in-process inspection —
    /// recovery and chaos tests call [`SortService::kill`] through this).
    pub fn service(&self) -> &SortService {
        &self.service
    }

    /// Drain the service and stop the accept loop (idempotent; also runs
    /// on drop). A no-op drain after [`SortService::kill`] — the killed
    /// service stays killed.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Nudge the blocking accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.service.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` until shutdown.
pub fn serve(service: SortService, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("sort-http".into())
            .spawn(move || accept_loop(&listener, &service, &stop))?
    };
    Ok(ServerHandle {
        addr,
        stop,
        service,
        thread: Some(thread),
    })
}

fn accept_loop(listener: &TcpListener, service: &SortService, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // One request per connection, handled inline: submissions are
        // admission decisions (microseconds), the sorts themselves run on
        // the worker pool. The one blocking route, /wait, is bounded by
        // MAX_WAIT_MS.
        if let HandleResult::Shutdown = handle(stream, service) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

enum HandleResult {
    KeepServing,
    Shutdown,
}

fn handle(stream: TcpStream, service: &SortService) -> HandleResult {
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader) {
        Ok(req) => req,
        Err(ReadError::TooLarge { length }) => {
            let mut o = JsonObj::new();
            o.str("error", "too_large")
                .u64("length", length as u64)
                .u64("max", MAX_BODY as u64)
                .str("message", "request body exceeds the accepted maximum");
            respond(reader.into_inner(), 413, "Payload Too Large", &o.finish());
            return HandleResult::KeepServing;
        }
        Err(ReadError::Malformed) => {
            respond(
                reader.into_inner(),
                400,
                "Bad Request",
                r#"{"error": "malformed", "message": "unreadable HTTP request"}"#,
            );
            return HandleResult::KeepServing;
        }
    };
    let stream = reader.into_inner();
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path.as_str(), ""),
    };
    match (method.as_str(), route) {
        ("GET", "/healthz") => respond(stream, 200, "OK", r#"{"ok": true}"#),
        ("GET", "/stats") => respond(stream, 200, "OK", &service.stats().to_json()),
        ("POST", "/jobs") => match JobRequest::from_json(&body) {
            Err(e) => respond(stream, 400, "Bad Request", &e.to_json()),
            Ok(request) => match service.submit(request) {
                Ok(id) => {
                    let status = service.status(id).expect("submitted job exists");
                    let mut o = JsonObj::new();
                    o.u64("id", id).raw("status", &status.to_json());
                    respond(stream, 202, "Accepted", &o.finish());
                }
                Err(e @ (SubmitError::Rejected { .. } | SubmitError::RejectedIo { .. })) => {
                    respond(stream, 429, "Too Many Requests", &e.to_json());
                }
                Err(e @ SubmitError::DeadlineUnmeetable { .. }) => {
                    respond(stream, 422, "Unprocessable Entity", &e.to_json());
                }
                Err(e) => respond(stream, 503, "Service Unavailable", &e.to_json()),
            },
        },
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/wait") => {
            let id = p["/jobs/".len()..p.len() - "/wait".len()]
                .parse::<u64>()
                .ok();
            let timeout_ms = query_u64(query, "timeout_ms")
                .unwrap_or(DEFAULT_WAIT_MS)
                .min(MAX_WAIT_MS);
            match id.and_then(|id| service.wait_timeout(id, Duration::from_millis(timeout_ms))) {
                None => respond(stream, 404, "Not Found", r#"{"error": "unknown job"}"#),
                Some(status) if status.state == JobState::Expired => {
                    respond(stream, 504, "Gateway Timeout", &status.to_json());
                }
                Some(status) if status.state.is_terminal() => {
                    respond(stream, 200, "OK", &status.to_json());
                }
                // Server-side timeout: the job is alive but not done; the
                // current snapshot rides along so pollers learn something.
                Some(status) => respond(stream, 408, "Request Timeout", &status.to_json()),
            }
        }
        ("GET", p) if p.starts_with("/jobs/") => {
            match p["/jobs/".len()..]
                .parse::<u64>()
                .ok()
                .and_then(|id| service.status(id))
            {
                Some(status) if status.state == JobState::Expired => {
                    respond(stream, 504, "Gateway Timeout", &status.to_json());
                }
                Some(status) => respond(stream, 200, "OK", &status.to_json()),
                None => respond(stream, 404, "Not Found", r#"{"error": "unknown job"}"#),
            }
        }
        ("POST", "/shutdown") => {
            service.drain();
            let mut o = JsonObj::new();
            o.bool("drained", true)
                .raw("stats", &service.stats().to_json());
            respond(stream, 200, "OK", &o.finish());
            return HandleResult::Shutdown;
        }
        _ => respond(stream, 404, "Not Found", r#"{"error": "no such route"}"#),
    }
    HandleResult::KeepServing
}

/// `read_request` failure classification: a `413` is not a `400`.
enum ReadError {
    /// Unframeable request (bad request line, unparsable headers, short
    /// body, non-UTF-8 payload).
    Malformed,
    /// `Content-Length` admits to more than [`MAX_BODY`]; the body was
    /// never read, let alone allocated.
    TooLarge { length: usize },
}

/// Parse one request: the request line, headers (only `Content-Length`
/// matters), then exactly that many body bytes.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), ReadError> {
    let malformed = |_| ReadError::Malformed;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(malformed)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ReadError::Malformed)?.to_string();
    let path = parts.next().ok_or(ReadError::Malformed)?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(malformed)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|_| ReadError::Malformed)?;
        }
    }
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge {
            length: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(malformed)?;
    Ok((
        method,
        path,
        String::from_utf8(body).map_err(|_| ReadError::Malformed)?,
    ))
}

/// Pull one numeric query parameter out of `a=1&b=2` (missing or
/// unparsable → `None`).
fn query_u64(query: &str, key: &str) -> Option<u64> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

fn respond(mut stream: TcpStream, code: u16, reason: &str, body: &str) {
    let msg = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    // The client may already have hung up; nothing useful to do about it.
    let _ = stream.write_all(msg.as_bytes());
    let _ = stream.flush();
}

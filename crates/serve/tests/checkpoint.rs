//! Checkpointed jobs through the whole service lifecycle: a job killed
//! after phase k resumes from phase k+1 (never re-running a paid phase),
//! with output byte-identical and modeled stats bit-identical to an
//! uninterrupted staged run; a torn `checkpointed` line is tolerated and
//! truncated; a stale manifest after the terminal outcome is ignored; and
//! recovery is idempotent.

use asym_core::sort::{
    self, Algorithm, CheckpointManifest, MemCheckpointer, SortOutcome, SortSpec,
};
use asym_model::workload::Workload;
use asym_serve::{
    replay, AuditEvent, JobRequest, JobState, ReplayOutcome, ServiceConfig, SortService,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn staged_job(records: usize) -> JobRequest {
    JobRequest {
        spec: SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(2)
            .build()
            .expect("valid spec"),
        workload: Workload::Zipf,
        records,
        data_seed: 31,
        input: None,
        include_output: true,
        deadline_ms: None,
        checkpoint: true,
    }
}

/// The phases recorded in the WAL for `id`, in log order.
fn checkpointed_phases(root: &Path, id: u64) -> Vec<u64> {
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| match AuditEvent::from_json(l) {
            Ok(AuditEvent::Checkpointed { id: jid, phase, .. }) if jid == id => Some(phase),
            _ => None,
        })
        .collect()
}

/// The fault-free staged reference for a request: output, stats, and the
/// full manifest stream an uninterrupted run produces.
fn reference(request: &JobRequest) -> (SortOutcome, MemCheckpointer) {
    let input = request
        .workload
        .generate(request.records, request.data_seed);
    let mut sink = MemCheckpointer::default();
    let outcome = sort::run_staged(&request.spec, &input, &mut sink).expect("staged reference");
    (outcome, sink)
}

#[test]
fn job_killed_after_phase_k_resumes_from_phase_k_plus_one() {
    let root = fresh_root("kill-resume");
    let cfg = ServiceConfig::new(1, u64::MAX, root.clone());
    let request = staged_job(150_000);
    let (want, full) = reference(&request);
    let total = full.manifests.len() as u64;
    assert!(total >= 3, "need a multi-phase job to kill mid-flight");

    // Run until the WAL shows real mid-job progress, then pull the plug.
    let service = SortService::start(cfg.clone()).expect("start");
    let id = service.submit(request.clone()).expect("admitted");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let phases = checkpointed_phases(&root, id);
        if phases.iter().any(|&p| p >= 1 && p < total) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no mid-job checkpoint appeared; phases so far: {phases:?}"
        );
        assert!(
            !service.status(id).expect("known").state.is_terminal(),
            "job finished before the kill — grow the job size"
        );
        std::thread::sleep(Duration::from_micros(300));
    }
    service.kill();
    drop(service);

    let pre = replay(&std::fs::read_to_string(root.join("audit.jsonl")).expect("audit"))
        .expect("replays");
    let k = pre.jobs[&id].checkpoint_phase;
    assert!(
        k >= 1 && k < total,
        "killed mid-job at phase {k} of {total}"
    );
    assert_eq!(pre.jobs[&id].outcome, ReplayOutcome::Pending);

    // Recover: the job comes back WITH its manifest and completes.
    let (service, report) = SortService::recover(cfg).expect("recover");
    assert_eq!(report.requeued, 1);
    let done = service.wait(id).expect("known job");
    assert_eq!(done.state, JobState::Completed, "{:?}", done.error);
    let got = SortOutcome::from_json(done.telemetry.as_ref().expect("telemetry")).expect("decode");
    assert_eq!(got.output, want.output, "resumed output diverged");
    assert_eq!(
        got.stats, want.stats,
        "resume ⊕ prefix modeled stats diverged from an uninterrupted run"
    );
    service.drain();
    drop(service);

    // The resume picked up at phase k+1: across the whole log every phase
    // appears exactly once — completed phases were never re-run, which is
    // the "never redo paid writes" property in WAL form.
    let phases = checkpointed_phases(&root, id);
    let mut sorted = phases.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted,
        (1..=total).collect::<Vec<_>>(),
        "phase stream with duplicates or holes: {phases:?}"
    );
    // And the durable manifests agree bit-for-bit with the uninterrupted
    // reference stream at every phase.
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(AuditEvent::Checkpointed {
            id: jid,
            phase,
            manifest,
        }) = AuditEvent::from_json(line)
        {
            if jid == id {
                let m = CheckpointManifest::from_json(&manifest).expect("manifest decodes");
                assert_eq!(&m, &full.manifests[(phase - 1) as usize], "phase {phase}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_checkpoint_line_is_tolerated_and_resume_starts_from_the_last_whole_one() {
    let root = fresh_root("torn");
    std::fs::create_dir_all(&root).expect("mkdir");
    let request = staged_job(2_000);
    let (want, full) = reference(&request);

    // Hand-build a WAL: the job was accepted, started, checkpointed twice
    // — and the third manifest line was torn mid-write by the crash.
    let mut log = String::new();
    for ev in [
        AuditEvent::Accepted {
            id: 0,
            request: request.clone(),
            predicted_bytes: request.predict().peak_bytes(),
        },
        AuditEvent::Started { id: 0, attempt: 1 },
        AuditEvent::Checkpointed {
            id: 0,
            phase: 1,
            manifest: full.manifests[0].to_json(),
        },
        AuditEvent::Checkpointed {
            id: 0,
            phase: 2,
            manifest: full.manifests[1].to_json(),
        },
    ] {
        log.push_str(&ev.to_json());
        log.push('\n');
    }
    let torn = AuditEvent::Checkpointed {
        id: 0,
        phase: 3,
        manifest: full.manifests[2].to_json(),
    }
    .to_json();
    log.push_str(&torn[..torn.len() / 2]); // crash mid-write
    std::fs::write(root.join("audit.jsonl"), &log).expect("write log");

    let rep = replay(&log).expect("torn tail tolerated");
    assert!(rep.torn_tail);
    assert_eq!(rep.jobs[&0].checkpoint_phase, 2, "last whole manifest wins");

    let (service, report) =
        SortService::recover(ServiceConfig::new(1, u64::MAX, root.clone())).expect("recover");
    assert!(report.torn_tail);
    assert_eq!(report.requeued, 1);
    let done = service.wait(0).expect("known job");
    assert_eq!(done.state, JobState::Completed, "{:?}", done.error);
    let got = SortOutcome::from_json(done.telemetry.as_ref().expect("telemetry")).expect("decode");
    assert_eq!(got.output, want.output);
    assert_eq!(got.stats, want.stats);
    service.drain();
    drop(service);

    // The resumed attempt re-recorded only phases 3.. — phases 1 and 2
    // still appear exactly once each in the (truncated, then appended)
    // log.
    let phases = checkpointed_phases(&root, 0);
    assert_eq!(phases.iter().filter(|&&p| p == 1).count(), 1);
    assert_eq!(phases.iter().filter(|&&p| p == 2).count(), 1);
    assert!(phases.contains(&(full.manifests.len() as u64)));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stale_manifest_after_terminal_outcome_is_ignored_and_recovery_is_idempotent() {
    let root = fresh_root("stale");
    std::fs::create_dir_all(&root).expect("mkdir");
    let request = staged_job(2_000);
    let (want, full) = reference(&request);
    let telemetry = want.to_json(true);

    let mut log = String::new();
    for ev in [
        AuditEvent::Accepted {
            id: 0,
            request: request.clone(),
            predicted_bytes: request.predict().peak_bytes(),
        },
        AuditEvent::Started { id: 0, attempt: 1 },
        AuditEvent::Checkpointed {
            id: 0,
            phase: full.manifests.len() as u64,
            manifest: full.manifests.last().unwrap().to_json(),
        },
        AuditEvent::Completed {
            id: 0,
            telemetry: telemetry.clone(),
        },
        // A stale (older) manifest line landing after the terminal
        // outcome — replay must not resurrect the job or touch progress.
        AuditEvent::Checkpointed {
            id: 0,
            phase: 1,
            manifest: full.manifests[0].to_json(),
        },
    ] {
        log.push_str(&ev.to_json());
        log.push('\n');
    }
    std::fs::write(root.join("audit.jsonl"), &log).expect("write log");

    let cfg = ServiceConfig::new(1, u64::MAX, root.clone());
    for round in 0..2 {
        let (service, report) = SortService::recover(cfg.clone()).expect("recover");
        assert_eq!(
            report.requeued, 0,
            "round {round}: terminal jobs stay terminal"
        );
        assert_eq!(report.restored, 1, "round {round}");
        let done = service.status(0).expect("known job");
        assert_eq!(done.state, JobState::Completed);
        let got =
            SortOutcome::from_json(done.telemetry.as_ref().expect("telemetry")).expect("decode");
        assert_eq!(got.output, want.output, "round {round}");
        assert_eq!(got.stats, want.stats, "round {round}");
        service.kill(); // leave the log as-is for the next round
        drop(service);
    }
    let _ = std::fs::remove_dir_all(&root);
}

//! The headline admission-control scenario from the service's contract:
//! a pool of 4 workers, a budget sized for exactly two standard jobs, six
//! concurrent submissions. Accepted jobs must produce byte-identical output
//! to a direct `sort::run`, the summed predicted peak bytes in flight must
//! never exceed the budget, over-budget submissions must come back as
//! typed rejections, and a graceful drain must flush every lifecycle event
//! to the audit log.

use asym_core::sort::{self, Algorithm, SortOutcome, SortSpec};
use asym_model::json::Json;
use asym_model::workload::Workload;
use asym_serve::{JobRequest, JobState, ServiceConfig, SortService, SubmitError};
use std::path::PathBuf;

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn standard_spec() -> SortSpec {
    SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
        .k(2)
        .build()
        .expect("valid spec")
}

fn standard_job(data_seed: u64) -> JobRequest {
    JobRequest {
        spec: standard_spec(),
        // Big enough that a sort takes real time: all six submissions land
        // while the first two jobs are still running, so exactly two fit
        // the two-job budget.
        workload: Workload::UniformRandom,
        records: 60_000,
        data_seed,
        input: None,
        include_output: true,
        deadline_ms: None,
        checkpoint: false,
    }
}

#[test]
fn six_concurrent_jobs_against_a_two_job_budget() {
    let per_job = standard_job(0).predict().peak_bytes();
    let budget = 2 * per_job;
    let root = fresh_root("six-jobs");
    let service = std::sync::Arc::new(
        SortService::start(ServiceConfig::new(4, budget, root.clone())).expect("start"),
    );

    let results: Vec<(u64, Result<u64, SubmitError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6u64)
            .map(|seed| {
                let service = std::sync::Arc::clone(&service);
                s.spawn(move || (seed, service.submit(standard_job(seed))))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let accepted: Vec<(u64, u64)> = results
        .iter()
        .filter_map(|(seed, r)| r.as_ref().ok().map(|id| (*seed, *id)))
        .collect();
    let rejected: Vec<&SubmitError> = results
        .iter()
        .filter_map(|(_, r)| r.as_ref().err())
        .collect();
    assert_eq!(accepted.len(), 2, "budget fits exactly two: {results:?}");
    assert_eq!(rejected.len(), 4);
    for err in rejected {
        match err {
            SubmitError::Rejected {
                predicted,
                available,
            } => {
                assert_eq!(*predicted, per_job);
                assert!(*available < per_job, "rejection implies shortfall");
                let payload = Json::parse(&err.to_json()).expect("payload parses");
                assert_eq!(
                    payload.get("error").and_then(Json::as_str),
                    Some("rejected")
                );
                assert_eq!(
                    payload.get("predicted").and_then(Json::as_u64),
                    Some(per_job)
                );
                assert!(payload.get("available").and_then(Json::as_u64).is_some());
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    // Accepted jobs: byte-identical to running the same job directly.
    for (seed, id) in &accepted {
        let status = service.wait(*id).expect("known job");
        assert_eq!(status.state, JobState::Completed, "{:?}", status.error);
        let outcome =
            SortOutcome::from_json(status.telemetry.as_ref().expect("telemetry")).expect("decode");
        let request = standard_job(*seed);
        let direct = sort::run(
            &request.spec,
            &request
                .workload
                .generate(request.records, request.data_seed),
        )
        .expect("direct run");
        assert_eq!(outcome.output, direct.output, "seed {seed}");
        assert_eq!(outcome.stats, direct.stats, "seed {seed}");
    }

    // The admission invariant, by high-water mark.
    let stats = service.stats();
    assert!(
        stats.peak_in_flight_bytes <= budget,
        "in-flight {} exceeded budget {budget}",
        stats.peak_in_flight_bytes,
    );
    assert_eq!(
        stats.peak_in_flight_bytes, budget,
        "both admitted jobs counted"
    );
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 4);

    service.drain();
    let stats = service.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.in_flight_bytes, 0, "drain releases everything");

    // Audit log: every event, one JSON object per line, flushed.
    let audit = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit exists");
    let lines: Vec<&str> = audit.lines().collect();
    let mut events = std::collections::HashMap::new();
    for line in &lines {
        let v = Json::parse(line).expect("audit line parses");
        let e = v
            .get("event")
            .and_then(Json::as_str)
            .expect("event field")
            .to_owned();
        *events.entry(e).or_insert(0u32) += 1;
    }
    assert_eq!(events.get("accepted"), Some(&2));
    assert_eq!(events.get("rejected"), Some(&4));
    assert_eq!(events.get("completed"), Some(&2));
    assert_eq!(events.get("drained"), Some(&1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_jobs_are_rejected_deterministically() {
    let root = fresh_root("oversized");
    let service = SortService::start(ServiceConfig::new(2, 1024, root.clone())).expect("start");
    let job = standard_job(1);
    let predicted = job.predict().peak_bytes();
    assert!(predicted > 1024);
    let err = service.submit(job).expect_err("cannot fit");
    assert_eq!(
        err,
        SubmitError::Rejected {
            predicted,
            available: 1024,
        }
    );
    service.drain();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn draining_service_refuses_new_work_and_finishes_old() {
    let root = fresh_root("drain");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    let ids: Vec<u64> = (0..3)
        .map(|s| service.submit(standard_job(s)).expect("admitted"))
        .collect();
    service.drain();
    for id in ids {
        let status = service.status(id).expect("known");
        assert_eq!(status.state, JobState::Completed, "drain ran the queue dry");
    }
    assert_eq!(service.submit(standard_job(9)), Err(SubmitError::Draining));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn file_backend_jobs_get_isolated_directories() {
    let root = fresh_root("file-iso");
    let service = SortService::start(ServiceConfig::new(2, u64::MAX, root.clone())).expect("start");
    let mut job = standard_job(5);
    job.records = 2_000;
    job.spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
        .k(2)
        .backend(em_sim::Backend::File)
        // A client-supplied directory the server must NOT honor.
        .file_dir("/definitely/not/writable")
        .build()
        .expect("valid spec");
    let id = service.submit(job.clone()).expect("admitted");
    let status = service.wait(id).expect("known");
    assert_eq!(status.state, JobState::Completed, "{:?}", status.error);
    assert!(
        root.join(format!("job-{id}")).is_dir(),
        "per-job dir created"
    );
    // Isolation does not change the modeled costs or the output.
    let outcome = SortOutcome::from_json(&status.telemetry.unwrap()).expect("decode");
    let mem = sort::run(
        &standard_spec(),
        &job.workload.generate(job.records, job.data_seed),
    )
    .expect("mem run");
    assert_eq!(outcome.output, mem.output);
    assert_eq!(outcome.stats, mem.stats);
    service.drain();
    let _ = std::fs::remove_dir_all(&root);
}

//! The seeded chaos harness: a full HTTP sort service under a fault storm
//! — double-digit read *and* write fault rates, torn transfers, simulated
//! crashes — interleaved with two kill/recover cycles. One pinned seed
//! drives everything, so a failure replays exactly.
//!
//! What must hold when the dust settles:
//!
//! * every accepted job lands terminally in exactly one of
//!   completed / failed / expired — nothing wedges, nothing is lost;
//! * jobs whose only weather is retryable I/O complete within the attempt
//!   budget (fault rates halve per retry, so success is by construction);
//! * jobs that crash deterministically fail with kind `panic`;
//! * modeled costs of every successful job are bit-identical to a
//!   fault-free run of the same spec — injection perturbs availability,
//!   never the model;
//! * the final audit log replays to exactly the service's own view.
//!
//! Set `CHAOS_AUDIT_DIR` to keep the audit log as a CI artifact.

use asym_core::sort::{self, Algorithm, SortOutcome, SortSpec};
use asym_model::json::Json;
use asym_model::workload::Workload;
use asym_serve::{replay, serve, JobRequest, ServiceConfig, SortService};
use em_sim::FaultSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The one seed. Change it and the whole storm — which jobs fault, where,
/// how often — changes reproducibly.
const CHAOS_SEED: u64 = 0xC0FFEE;

/// Hard guard against the one failure a status check can't see: a wedged
/// pool. If the session doesn't reach terminal states in this long,
/// something deadlocked.
const GUARD: Duration = Duration::from_secs(180);

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (code, body)
}

/// What we expect of a job once the storm passes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Fate {
    /// Retryable I/O weather only: must complete within the budget.
    Completes,
    /// A certain simulated crash on every attempt: must fail as `panic`.
    Crashes,
    /// A 1 ms deadline: completed if a worker got there first, expired if
    /// it lapsed in the queue — either way terminal.
    Races,
}

fn base_spec(alg: Algorithm, fault: Option<FaultSpec>) -> SortSpec {
    SortSpec::builder(alg, 64, 8, 16)
        .k(2)
        .fault(fault)
        .build()
        .expect("valid spec")
}

/// The fault-free twin of a submitted spec — what the model says the job
/// costs when the device behaves.
fn fault_free(spec: &SortSpec) -> SortSpec {
    SortSpec::builder(spec.algorithm(), spec.m(), spec.b(), spec.omega())
        .k(spec.k())
        .build()
        .expect("valid spec")
}

fn job(spec: SortSpec, records: usize, data_seed: u64) -> JobRequest {
    JobRequest {
        spec,
        workload: Workload::UniformRandom,
        records,
        data_seed,
        input: None,
        include_output: false,
        deadline_ms: None,
        checkpoint: false,
    }
}

/// The storm roster for one round. Only *serial* sorts carry I/O faults:
/// their store paths either propagate `Result`s or unwind the typed
/// `StoreIoPanic`, both of which the service classifies as retryable.
fn roster(round: u64) -> Vec<(JobRequest, Fate)> {
    let mut jobs = Vec::new();
    // Eight I/O-storm jobs: read and write faults both well above 10%,
    // with a healthy share of torn transfers.
    for i in 0..8u64 {
        let alg = if i % 2 == 0 {
            Algorithm::Mergesort
        } else {
            Algorithm::Samplesort
        };
        let fault = FaultSpec {
            seed: CHAOS_SEED ^ (round << 32) ^ i,
            read_permille: 150,
            write_permille: 120,
            short_permille: 300,
            panic_permille: 0,
        };
        jobs.push((
            job(base_spec(alg, Some(fault)), 2_000 + 250 * i as usize, i),
            Fate::Completes,
        ));
    }
    // Three certain crashers: every attempt dies in a simulated device
    // crash, so the service must fail them without wedging a worker.
    for i in 0..3u64 {
        let fault = FaultSpec {
            seed: CHAOS_SEED ^ (round << 32) ^ (0x100 + i),
            panic_permille: 1_000,
            ..FaultSpec::new(0)
        };
        jobs.push((
            job(base_spec(Algorithm::Mergesort, Some(fault)), 2_000, 100 + i),
            Fate::Crashes,
        ));
    }
    // Two clean jobs riding through the same weather.
    for i in 0..2u64 {
        jobs.push((
            job(base_spec(Algorithm::Samplesort, None), 3_000, 200 + i),
            Fate::Completes,
        ));
    }
    // And one racing a 1 ms deadline through a backlogged queue.
    let mut dated = job(base_spec(Algorithm::Mergesort, None), 2_000, 300);
    dated.deadline_ms = Some(1);
    jobs.push((dated, Fate::Races));
    jobs
}

fn submit(addr: SocketAddr, req: &JobRequest) -> u64 {
    let (code, body) = request(addr, "POST", "/jobs", &req.to_json());
    assert_eq!(code, 202, "{body}");
    Json::parse(&body)
        .expect("parses")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id")
}

#[test]
fn chaos_storm_with_kill_and_recover_settles_every_job() {
    // The crashers panic inside the workers' catch_unwind; silence the
    // hook for worker threads only (test-harness panics stay visible).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("sort-worker"));
        if !worker {
            default_hook(info);
        }
    }));

    let root = std::env::temp_dir().join(format!("asym-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = ServiceConfig::new(3, u64::MAX, root.clone());
    cfg.max_attempts = 12; // rates decay to zero well inside this
    cfg.backoff_base_ms = 1;
    cfg.backoff_cap_ms = 20;

    let mut jobs: Vec<(u64, JobRequest, Fate)> = Vec::new();

    // --- Round A: fresh service, full roster over HTTP, then a power cut
    // mid-flight.
    let service = SortService::start(cfg.clone()).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    for (req, fate) in roster(0) {
        let id = submit(addr, &req);
        jobs.push((id, req, fate));
    }
    std::thread::sleep(Duration::from_millis(100));
    server.service().kill();
    server.shutdown();
    drop(server);

    // --- Round B: recover (conservation against the log), storm some
    // more from concurrent clients, and cut the power again.
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let rep = replay(&text).expect("replays");
    let pending = rep.pending().count() as u64;
    assert_eq!(rep.jobs.len() as u64, jobs.len() as u64, "no job unaudited");
    let (service, report) = SortService::recover(cfg.clone()).expect("recover");
    assert_eq!(report.requeued, pending, "conservation: requeued");
    assert_eq!(
        report.restored,
        rep.jobs.len() as u64 - pending,
        "conservation: restored"
    );
    assert_eq!(report.next_id, rep.next_id);

    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let handles: Vec<_> = roster(1)
        .into_iter()
        .take(4)
        .map(|(req, fate)| {
            std::thread::spawn(move || {
                let id = submit(addr, &req);
                (id, req, fate)
            })
        })
        .collect();
    for h in handles {
        jobs.push(h.join().expect("submitter thread"));
    }
    std::thread::sleep(Duration::from_millis(80));
    server.service().kill();
    server.shutdown();
    drop(server);

    // --- Round C: recover once more and let everything settle.
    let (service, _) = SortService::recover(cfg).expect("recover again");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let deadline = Instant::now() + GUARD;
    for (id, req, fate) in &jobs {
        // Long-poll to a terminal state; the guard deadline is the
        // no-deadlock assertion.
        let (state, body) = loop {
            let (code, body) =
                request(addr, "GET", &format!("/jobs/{id}/wait?timeout_ms=2000"), "");
            let v = Json::parse(&body).expect("parses");
            let state = v
                .get("state")
                .and_then(Json::as_str)
                .expect("state")
                .to_string();
            match state.as_str() {
                "completed" | "failed" | "expired" => {
                    assert_eq!(code, if state == "expired" { 504 } else { 200 }, "{body}");
                    break (state, body);
                }
                _ => {
                    assert_eq!(code, 408, "{body}");
                    assert!(
                        Instant::now() < deadline,
                        "job {id} did not settle — pool wedged?"
                    );
                }
            }
        };
        let v = Json::parse(&body).expect("parses");
        match fate {
            Fate::Completes => {
                assert_eq!(state, "completed", "job {id}: {body}");
                // The availability storm never touches the model: modeled
                // costs equal a fault-free run of the same spec, bit for
                // bit.
                let telemetry = v.get("outcome").expect("telemetry").render();
                let outcome = SortOutcome::from_json(&telemetry).expect("decodes");
                let clean = fault_free(&req.spec);
                let direct = sort::run(&clean, &req.workload.generate(req.records, req.data_seed))
                    .expect("fault-free run");
                assert_eq!(
                    outcome.stats, direct.stats,
                    "job {id} modeled costs drifted"
                );
            }
            Fate::Crashes => {
                assert_eq!(state, "failed", "job {id}: {body}");
                assert_eq!(
                    v.get("failure_kind").and_then(Json::as_str),
                    Some("panic"),
                    "{body}"
                );
            }
            Fate::Races => {
                assert!(
                    state == "completed" || state == "expired",
                    "job {id}: {body}"
                );
            }
        }
    }

    let (code, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(code, 200, "{body}");
    server.shutdown();
    drop(server);

    // --- The audit log tells the same story the service did.
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let full = replay(&text).expect("replays");
    assert_eq!(full.jobs.len(), jobs.len(), "every job in the log");
    assert!(
        full.pending().next().is_none(),
        "every accepted job is terminal"
    );
    assert!(full.retries >= 1, "the I/O storm forced real retries");
    for (id, _, fate) in &jobs {
        let j = &full.jobs[id];
        use asym_serve::ReplayOutcome;
        match fate {
            Fate::Completes => assert!(
                matches!(j.outcome, ReplayOutcome::Completed { .. }),
                "job {id}: {:?}",
                j.outcome
            ),
            Fate::Crashes => assert!(
                matches!(
                    j.outcome,
                    ReplayOutcome::Failed { kind, .. } if kind == asym_serve::FailureKind::Panic
                ),
                "job {id}: {:?}",
                j.outcome
            ),
            Fate::Races => assert!(j.outcome.is_terminal()),
        }
    }

    // Keep the evidence when CI asks for it.
    if let Ok(dir) = std::env::var("CHAOS_AUDIT_DIR") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("audit artifact dir");
        std::fs::copy(root.join("audit.jsonl"), dir.join("audit.jsonl"))
            .expect("copy audit artifact");
    }
    let _ = std::fs::remove_dir_all(&root);
}

//! Crash recovery, pinned: kill a service mid-flight (queued and running
//! jobs dropped on the floor, exactly like a power cut), recover from the
//! audit log alone, and check that nothing audited is lost or duplicated,
//! re-run jobs produce byte-identical outcomes, and the id counter
//! resumes. Plus the prefix property: replaying *any* byte prefix of a
//! real session's `audit.jsonl` yields a consistent state, and longer
//! prefixes only ever add information.

use asym_core::sort::{self, Algorithm, SortOutcome, SortSpec};
use asym_model::workload::Workload;
use asym_serve::{replay, JobRequest, JobState, ReplayOutcome, ServiceConfig, SortService};
use em_sim::FaultSpec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(data_seed: u64, records: usize) -> JobRequest {
    JobRequest {
        spec: SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(2)
            .build()
            .expect("valid spec"),
        workload: Workload::UniformRandom,
        records,
        data_seed,
        input: None,
        include_output: true,
        deadline_ms: None,
        checkpoint: false,
    }
}

#[test]
fn kill_and_recover_restores_queue_counters_and_results() {
    let root = fresh_root("kill");
    let cfg = ServiceConfig::new(1, u64::MAX, root.clone());

    // Six real jobs on one worker, then the plug is pulled: at most a
    // couple complete, the rest die queued or mid-run.
    let service = SortService::start(cfg.clone()).expect("start");
    for seed in 0..6 {
        service.submit(job(seed, 60_000)).expect("admitted");
    }
    service.kill();
    drop(service);

    // What does the log say survived?
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let pre = replay(&text).expect("replays");
    assert_eq!(pre.jobs.len(), 6, "every accepted job is in the WAL");
    assert_eq!(pre.next_id, 6);
    let terminal_before = pre
        .jobs
        .values()
        .filter(|j| j.outcome.is_terminal())
        .count() as u64;
    let pending_before = 6 - terminal_before;

    // Recover: unfinished jobs re-queue, finished ones come back restored.
    let (service, report) = SortService::recover(cfg.clone()).expect("recover");
    assert_eq!(report.requeued, pending_before, "conservation: requeued");
    assert_eq!(report.restored, terminal_before, "conservation: restored");
    assert_eq!(report.next_id, 6);
    assert!(!report.torn_tail, "kill writes whole lines");

    // The id counter resumes past every id ever issued — no reuse.
    let new_id = service.submit(job(6, 20_000)).expect("admitted");
    assert_eq!(new_id, 6);

    // Every job — survivors, re-runs, and the new one — completes with
    // output and stats byte-identical to a direct run of the same spec.
    for id in 0..=6u64 {
        let status = service.wait(id).expect("known job");
        assert_eq!(
            status.state,
            JobState::Completed,
            "{id}: {:?}",
            status.error
        );
        let outcome =
            SortOutcome::from_json(status.telemetry.as_ref().expect("telemetry")).expect("decode");
        let request = job(id, if id == 6 { 20_000 } else { 60_000 });
        let direct = sort::run(
            &request.spec,
            &request
                .workload
                .generate(request.records, request.data_seed),
        )
        .expect("direct run");
        assert_eq!(outcome.output, direct.output, "job {id}");
        assert_eq!(outcome.stats, direct.stats, "job {id}");
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 7);
    service.drain();
    drop(service);

    // The final log holds the whole story: 7 jobs, ids 0..=6, all terminal
    // exactly once — nothing audited was lost or duplicated.
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let full = replay(&text).expect("replays");
    assert_eq!(
        full.jobs.keys().copied().collect::<Vec<_>>(),
        (0..=6u64).collect::<Vec<_>>()
    );
    assert!(
        full.pending().next().is_none(),
        "nothing pending after drain"
    );
    assert!(full
        .jobs
        .values()
        .all(|j| matches!(j.outcome, ReplayOutcome::Completed { .. })));

    // Recovery is idempotent: recovering the already-clean log re-queues
    // nothing and restores everything.
    let (service, report) = SortService::recover(cfg.clone()).expect("re-recover");
    assert_eq!(report.requeued, 0);
    assert_eq!(report.restored, 7);
    assert_eq!(report.next_id, 7);
    service.kill(); // leave the log exactly as it is
    drop(service);

    // Crash-during-recovery: tear the tail by hand; recover tolerates it,
    // reports it, and truncates so later appends cannot corrupt the log.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(root.join("audit.jsonl"))
        .expect("open");
    write!(f, "{{\"v\": 1, \"event\": \"acc").expect("tear");
    drop(f);
    let (service, report) = SortService::recover(cfg).expect("recover torn");
    assert!(report.torn_tail);
    assert_eq!(report.restored, 7);
    service.drain();
    drop(service);
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    let after = replay(&text).expect("truncation kept the log clean");
    assert!(!after.torn_tail);
    assert_eq!(after.jobs.len(), 7);

    let _ = std::fs::remove_dir_all(&root);
}

/// One real service session whose audit log exercises every event type:
/// completions, seeded-fault retries, a deterministic panic failure, a
/// queue expiry, and a budget rejection. Generated once, replayed from
/// many prefixes below.
fn session_log() -> &'static str {
    static LOG: OnceLock<String> = OnceLock::new();
    LOG.get_or_init(|| {
        // The panic job panics inside the worker's catch_unwind; silence
        // the hook for worker threads only so the storm doesn't spray
        // backtraces (test-harness panics stay visible).
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sort-worker"));
            if !worker {
                default_hook(info);
            }
        }));
        let root = fresh_root("session");
        let mut cfg = ServiceConfig::new(1, u64::MAX, root.clone());
        cfg.max_attempts = 12;
        cfg.backoff_base_ms = 1;
        cfg.backoff_cap_ms = 10;
        cfg.budget_bytes = job(0, 60_000).predict().peak_bytes() * 6;
        let service = SortService::start(cfg).expect("start");

        // Every job here skips output telemetry: the exhaustive prefix
        // test below replays O(len) prefixes of this log, so `completed`
        // events must stay lean or the quadratic sweep crawls.
        let job = |seed: u64, records: usize| {
            let mut j = job(seed, records);
            j.include_output = false;
            j
        };

        // Busy job pins the single worker. The queue is ETA-priority, not
        // FIFO, so wait until the worker actually picked it up — otherwise
        // the smaller jobs below would jump it.
        let busy = service.submit(job(0, 60_000)).expect("admitted");
        while service.status(busy).expect("known").state == JobState::Queued {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // ...so a 1 ms deadline lapses in the queue: a deterministic
        // `expired` event.
        let mut dated = job(1, 3_000);
        dated.deadline_ms = Some(1);
        service.submit(dated).expect("admitted");
        // Seeded read faults: `retried` events, then success by decay.
        let mut flaky = job(2, 3_000);
        let mut fault = FaultSpec::new(0xDECAF);
        fault.read_permille = 500;
        flaky.spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(2)
            .fault(Some(fault))
            .build()
            .expect("valid spec");
        service.submit(flaky).expect("admitted");
        // A certain panic: `failed` with kind "panic".
        let mut doomed = job(3, 3_000);
        let mut fault = FaultSpec::new(0xBAD);
        fault.panic_permille = 1_000;
        doomed.spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(2)
            .fault(Some(fault))
            .build()
            .expect("valid spec");
        service.submit(doomed).expect("admitted");
        // A staged job: `checkpointed` events with embedded manifests, so
        // the prefix sweeps below slice through manifest lines too. Kept
        // tiny (still 9 phases) — the exhaustive byte-prefix sweep is
        // quadratic in the log size, and manifests embed the run layout.
        let staged = job(9, 120).checkpointed(true);
        service.submit(staged).expect("admitted");
        // And one the budget turns away: a `rejected` event. Peak bytes
        // scale with M, not the record count, so ask for a monster M.
        let mut monster = job(4, 1_000);
        monster.spec = SortSpec::builder(Algorithm::Mergesort, 1 << 24, 8, 16)
            .k(2)
            .build()
            .expect("valid spec");
        let err = service.submit(monster).expect_err("over budget");
        assert!(matches!(err, asym_serve::SubmitError::Rejected { .. }));

        service.drain();
        drop(service);
        let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
        let _ = std::fs::remove_dir_all(&root);

        // The session must actually contain the variety the prefixes are
        // sliced from.
        let full = replay(&text).expect("replays");
        assert_eq!(full.jobs.len(), 5);
        assert!(full.retries >= 1, "the fault storm fired");
        assert_eq!(full.rejected, 1);
        assert!(matches!(full.jobs[&1].outcome, ReplayOutcome::Expired));
        assert!(matches!(
            full.jobs[&2].outcome,
            ReplayOutcome::Completed { .. }
        ));
        assert!(matches!(
            full.jobs[&3].outcome,
            ReplayOutcome::Failed { kind, .. } if kind == asym_serve::FailureKind::Panic
        ));
        assert!(matches!(
            full.jobs[&4].outcome,
            ReplayOutcome::Completed { .. }
        ));
        assert!(
            full.jobs[&4].checkpoint_phase > 0 && full.jobs[&4].manifest.is_some(),
            "the staged job left checkpointed events in the log"
        );
        text
    })
}

#[test]
fn longer_prefixes_only_add_information() {
    let text = session_log();
    let full = replay(text).expect("full replay");
    let mut prev_terminal: Vec<(u64, ReplayOutcome)> = Vec::new();
    let mut prev_next_id = 0u64;
    let mut prev_jobs = 0usize;
    let mut prev_phases: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    // Every byte prefix, exhaustively: replay never errors (the cut can
    // only tear the final line), and state grows monotonically — ids and
    // jobs never regress, terminal outcomes never change or
    // un-terminalize, checkpoint progress never rolls back.
    for cut in 0..=text.len() {
        let rep = replay(&text[..cut]).expect("prefix replays");
        assert!(rep.next_id >= prev_next_id, "id counter regressed at {cut}");
        assert!(rep.jobs.len() >= prev_jobs, "jobs vanished at {cut}");
        assert!(rep.next_id <= full.next_id);
        for (id, outcome) in &prev_terminal {
            assert_eq!(
                &rep.jobs[id].outcome, outcome,
                "terminal outcome changed at {cut}"
            );
        }
        for (&id, j) in &rep.jobs {
            let prev = prev_phases.get(&id).copied().unwrap_or(0);
            assert!(
                j.checkpoint_phase >= prev,
                "checkpoint progress of job {id} regressed at {cut}"
            );
            prev_phases.insert(id, j.checkpoint_phase);
        }
        prev_terminal = rep
            .jobs
            .iter()
            .filter(|(_, j)| j.outcome.is_terminal())
            .map(|(&id, j)| (id, j.outcome.clone()))
            .collect();
        prev_next_id = rep.next_id;
        prev_jobs = rep.jobs.len();
    }
    // And the final prefix is the full log.
    assert_eq!(replay(text).expect("full"), full);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of the session log recovers to a state consistent
    /// with the full log: same requests, attempts within the final count,
    /// terminal outcomes (when present) identical, and every non-terminal
    /// job exactly the set a recovery would re-queue.
    #[test]
    fn any_prefix_recovers_consistently(cut_permille in 0u32..1000) {
        let text = session_log();
        let full = replay(text).expect("full replay");
        let cut = (text.len() * cut_permille as usize) / 1000;
        let rep = replay(&text[..cut]).expect("prefix replays");

        prop_assert!(rep.next_id <= full.next_id);
        prop_assert!(rep.jobs.len() <= full.jobs.len());
        prop_assert!(rep.retries <= full.retries);
        for (id, j) in &rep.jobs {
            let f = &full.jobs[id];
            prop_assert_eq!(&j.request, &f.request, "request {} mutated", id);
            prop_assert!(j.attempts <= f.attempts);
            prop_assert!(
                j.checkpoint_phase <= f.checkpoint_phase,
                "checkpoint progress of {} ahead of the full log",
                id
            );
            if j.outcome.is_terminal() {
                prop_assert_eq!(&j.outcome, &f.outcome, "terminal outcome {} drifted", id);
            }
        }
        // The re-queue set is exactly the accepted-minus-terminal jobs.
        let pending: Vec<u64> = rep.pending().collect();
        let expect: Vec<u64> = rep
            .jobs
            .iter()
            .filter(|(_, j)| !j.outcome.is_terminal())
            .map(|(&id, _)| id)
            .collect();
        prop_assert_eq!(pending, expect);
    }
}

//! The HTTP front door over real loopback sockets: submit, poll, reject,
//! introspect, shut down — all with a hand-rolled client so the test
//! exercises actual bytes on the wire, not internal calls.

use asym_core::sort::SortOutcome;
use asym_model::json::Json;
use asym_serve::{serve, ServiceConfig, SortService};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-serve-http-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 exchange; returns (status code, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (code, body)
}

const SMALL_JOB: &str = r#"{
    "spec": {"algorithm": "aem-samplesort", "m": 64, "b": 8, "omega": 16, "k": 2},
    "workload": "zipf", "records": 3000, "data_seed": 11, "include_output": false }"#;

#[test]
fn full_session_over_loopback() {
    let root = fresh_root("session");
    let service = SortService::start(ServiceConfig {
        workers: 2,
        budget_bytes: 1 << 20,
        root_dir: root.clone(),
    })
    .expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let (code, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(code, 200, "{body}");

    // Accepted submission: 202 with an id and the queued status.
    let (code, body) = request(addr, "POST", "/jobs", SMALL_JOB);
    assert_eq!(code, 202, "{body}");
    let v = Json::parse(&body).expect("parses");
    let id = v.get("id").and_then(Json::as_u64).expect("id");

    // Poll until done; telemetry must be decodable outcome JSON.
    let outcome = loop {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(code, 200, "{body}");
        let v = Json::parse(&body).expect("parses");
        match v.get("state").and_then(Json::as_str).expect("state") {
            "completed" => {
                let telemetry = v.get("outcome").expect("telemetry present");
                break SortOutcome::from_json(&telemetry.render()).expect("telemetry decodes");
            }
            "failed" => panic!("job failed: {body}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    assert!(outcome.output.is_empty(), "lean telemetry");
    assert!(outcome.stats.block_reads > 0);

    // Over-budget submission: typed 429 with both sides of the comparison.
    let monster = SMALL_JOB.replace("\"m\": 64", "\"m\": 1000000");
    let (code, body) = request(addr, "POST", "/jobs", &monster);
    assert_eq!(code, 429, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("rejected"));
    assert!(v.get("predicted").and_then(Json::as_u64).unwrap() > 1 << 20);
    assert!(v.get("available").and_then(Json::as_u64).is_some());

    // Malformed and invalid payloads: 400 with structured errors.
    let (code, body) = request(addr, "POST", "/jobs", "{ nope");
    assert_eq!(code, 400, "{body}");
    assert_eq!(
        Json::parse(&body)
            .expect("parses")
            .get("error")
            .and_then(Json::as_str),
        Some("malformed")
    );
    let invalid = SMALL_JOB.replace("\"b\": 8", "\"b\": 1000");
    let (code, body) = request(addr, "POST", "/jobs", &invalid);
    assert_eq!(code, 400, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("spec"));
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("block_exceeds_memory")
    );

    let (code, _) = request(addr, "GET", "/jobs/4096", "");
    assert_eq!(code, 404);

    let (code, body) = request(addr, "GET", "/stats", "");
    assert_eq!(code, 200);
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("submitted").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("rejected").and_then(Json::as_u64), Some(1));

    // Graceful shutdown over the wire: drained stats in the response.
    let (code, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(code, 200, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("drained").and_then(Json::as_bool), Some(true));

    server.shutdown();
    let audit = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    assert!(
        audit.lines().count() >= 4,
        "accepted+completed+rejected+drained"
    );
    let _ = std::fs::remove_dir_all(&root);
}

//! The HTTP front door over real loopback sockets: submit, poll, reject,
//! introspect, shut down — all with a hand-rolled client so the test
//! exercises actual bytes on the wire, not internal calls.

use asym_core::sort::SortOutcome;
use asym_model::json::Json;
use asym_serve::{serve, ServiceConfig, SortService};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-serve-http-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 exchange; returns (status code, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (code, body)
}

const SMALL_JOB: &str = r#"{
    "spec": {"algorithm": "aem-samplesort", "m": 64, "b": 8, "omega": 16, "k": 2},
    "workload": "zipf", "records": 3000, "data_seed": 11, "include_output": false }"#;

#[test]
fn full_session_over_loopback() {
    let root = fresh_root("session");
    let service = SortService::start(ServiceConfig::new(2, 1 << 20, root.clone())).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let (code, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(code, 200, "{body}");

    // Accepted submission: 202 with an id and the queued status.
    let (code, body) = request(addr, "POST", "/jobs", SMALL_JOB);
    assert_eq!(code, 202, "{body}");
    let v = Json::parse(&body).expect("parses");
    let id = v.get("id").and_then(Json::as_u64).expect("id");

    // Poll until done; telemetry must be decodable outcome JSON.
    let outcome = loop {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(code, 200, "{body}");
        let v = Json::parse(&body).expect("parses");
        match v.get("state").and_then(Json::as_str).expect("state") {
            "completed" => {
                let telemetry = v.get("outcome").expect("telemetry present");
                break SortOutcome::from_json(&telemetry.render()).expect("telemetry decodes");
            }
            "failed" => panic!("job failed: {body}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    assert!(outcome.output.is_empty(), "lean telemetry");
    assert!(outcome.stats.block_reads > 0);

    // Over-budget submission: typed 429 with both sides of the comparison.
    let monster = SMALL_JOB.replace("\"m\": 64", "\"m\": 1000000");
    let (code, body) = request(addr, "POST", "/jobs", &monster);
    assert_eq!(code, 429, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("rejected"));
    assert!(v.get("predicted").and_then(Json::as_u64).unwrap() > 1 << 20);
    assert!(v.get("available").and_then(Json::as_u64).is_some());

    // Malformed and invalid payloads: 400 with structured errors.
    let (code, body) = request(addr, "POST", "/jobs", "{ nope");
    assert_eq!(code, 400, "{body}");
    assert_eq!(
        Json::parse(&body)
            .expect("parses")
            .get("error")
            .and_then(Json::as_str),
        Some("malformed")
    );
    let invalid = SMALL_JOB.replace("\"b\": 8", "\"b\": 1000");
    let (code, body) = request(addr, "POST", "/jobs", &invalid);
    assert_eq!(code, 400, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("spec"));
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("block_exceeds_memory")
    );

    let (code, _) = request(addr, "GET", "/jobs/4096", "");
    assert_eq!(code, 404);

    let (code, body) = request(addr, "GET", "/stats", "");
    assert_eq!(code, 200);
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("submitted").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("rejected").and_then(Json::as_u64), Some(1));

    // Graceful shutdown over the wire: drained stats in the response.
    let (code, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(code, 200, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("drained").and_then(Json::as_bool), Some(true));

    server.shutdown();
    let audit = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    assert!(
        audit.lines().count() >= 4,
        "accepted+completed+rejected+drained"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A mergesort big enough to hold the single worker for a while, so jobs
/// queued behind it observably wait.
const BUSY_JOB: &str = r#"{
    "spec": {"algorithm": "aem-mergesort", "m": 64, "b": 8, "omega": 16, "k": 2},
    "workload": "uniform", "records": 150000, "data_seed": 3, "include_output": false }"#;

#[test]
fn wait_long_polls_with_a_bounded_server_side_timeout() {
    let root = fresh_root("wait");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Unknown jobs are 404 on the wait route too.
    let (code, _) = request(addr, "GET", "/jobs/4096/wait", "");
    assert_eq!(code, 404);

    let (_, body) = request(addr, "POST", "/jobs", BUSY_JOB);
    let busy = Json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();
    let (_, body) = request(addr, "POST", "/jobs", SMALL_JOB);
    let queued = Json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();

    // The queued job sits behind the busy one on the single worker, so a
    // short wait must come back 408 carrying the *current* snapshot.
    let (code, body) = request(
        addr,
        "GET",
        &format!("/jobs/{queued}/wait?timeout_ms=50"),
        "",
    );
    assert_eq!(code, 408, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert!(
        matches!(
            v.get("state").and_then(Json::as_str),
            Some("queued") | Some("running")
        ),
        "{body}"
    );

    // A long enough wait rides the long-poll to 200 completed.
    for id in [busy, queued] {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let (code, body) =
                request(addr, "GET", &format!("/jobs/{id}/wait?timeout_ms=2000"), "");
            let v = Json::parse(&body).expect("parses");
            match v.get("state").and_then(Json::as_str).expect("state") {
                "completed" => {
                    assert_eq!(code, 200, "{body}");
                    break;
                }
                "failed" => panic!("job failed: {body}"),
                _ => {
                    assert_eq!(code, 408, "{body}");
                    assert!(std::time::Instant::now() < deadline);
                }
            }
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn queued_jobs_past_their_deadline_expire_into_504() {
    let root = fresh_root("expire");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let (code, _) = request(addr, "POST", "/jobs", BUSY_JOB);
    assert_eq!(code, 202);
    // One millisecond of deadline against a worker held busy for much
    // longer: the job must expire in the queue, never having run.
    let dated = SMALL_JOB.replace("\"data_seed\": 11", "\"data_seed\": 11, \"deadline_ms\": 1");
    let (code, body) = request(addr, "POST", "/jobs", &dated);
    assert_eq!(code, 202, "{body}");
    let id = Json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();

    std::thread::sleep(std::time::Duration::from_millis(20));
    let (code, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(code, 504, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(v.get("state").and_then(Json::as_str), Some("expired"));
    assert_eq!(
        v.get("attempts").and_then(Json::as_u64),
        Some(0),
        "never ran"
    );
    // The wait route agrees: expiry is terminal, reported as 504.
    let (code, _) = request(addr, "GET", &format!("/jobs/{id}/wait"), "");
    assert_eq!(code, 504);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unmeetable_deadlines_are_refused_up_front_with_422() {
    let root = fresh_root("eta");
    // 1 modeled I/O unit per millisecond: every real sort's ETA dwarfs a
    // 1 ms deadline, so admission refuses before anything is queued.
    let mut cfg = ServiceConfig::new(1, u64::MAX, root.clone());
    cfg.io_per_ms = 1;
    let service = SortService::start(cfg).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let dated = SMALL_JOB.replace("\"data_seed\": 11", "\"data_seed\": 11, \"deadline_ms\": 1");
    let (code, body) = request(addr, "POST", "/jobs", &dated);
    assert_eq!(code, 422, "{body}");
    let v = Json::parse(&body).expect("parses");
    assert_eq!(
        v.get("error").and_then(Json::as_str),
        Some("deadline_unmeetable")
    );
    assert!(v.get("eta_ms").and_then(Json::as_u64).unwrap() > 1);

    // The same job without a deadline sails through.
    let (code, _) = request(addr, "POST", "/jobs", SMALL_JOB);
    assert_eq!(code, 202);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_request_bodies_get_a_typed_413_without_allocation() {
    let root = fresh_root("toolarge");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    let mut server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Declare a body far over the cap but never send it: the server must
    // answer from the headers alone instead of trying to read (or
    // allocate) two gigabytes.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: 2147483647\r\nConnection: close\r\n\r\n"
    )
    .expect("send headers");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let code: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert_eq!(code, 413, "{response}");
    let body = response.split_once("\r\n\r\n").unwrap().1;
    let v = Json::parse(body).expect("parses");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("too_large"));
    assert_eq!(v.get("length").and_then(Json::as_u64), Some(2147483647));
    assert!(v.get("max").and_then(Json::as_u64).unwrap() >= 1 << 20);

    // The connection above did not wedge the server.
    let (code, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(code, 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

//! The ETA-priority scheduler and the I/O-cost admission axis, pinned:
//! a small job submitted *after* a bulk job runs first (shortest modeled
//! ETA wins), the aging credit flips that order back when a job has
//! waited long enough (no starvation), the admin hold/release pair makes
//! the schedule observable deterministically, and the second admission
//! budget refuses on predicted `reads + ω·writes` with its own typed
//! error.

use asym_core::sort::{Algorithm, SortSpec};
use asym_model::workload::Workload;
use asym_serve::{AuditEvent, JobRequest, JobState, ServiceConfig, SortService, SubmitError};
use std::path::PathBuf;
use std::time::Duration;

fn fresh_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-sched-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(records: usize) -> JobRequest {
    JobRequest {
        spec: SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
            .k(2)
            .build()
            .expect("valid spec"),
        workload: Workload::UniformRandom,
        records,
        data_seed: 7,
        input: None,
        include_output: false,
        deadline_ms: None,
        checkpoint: false,
    }
}

/// The order the single worker actually started jobs in, from the WAL.
fn started_order(root: &std::path::Path) -> Vec<u64> {
    let text = std::fs::read_to_string(root.join("audit.jsonl")).expect("audit");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| match AuditEvent::from_json(l) {
            Ok(AuditEvent::Started { id, attempt: 1 }) => Some(id),
            _ => None,
        })
        .collect()
}

#[test]
fn small_jobs_jump_earlier_bulk_jobs() {
    let root = fresh_root("eta");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    // Hold the queue so submission order and pickup order are decoupled
    // deterministically: nothing runs until all three are queued.
    service.hold();
    let bulk = service.submit(job(60_000)).expect("admitted");
    let mid = service.submit(job(8_000)).expect("admitted");
    let small = service.submit(job(1_000)).expect("admitted");
    service.release();
    for id in [bulk, mid, small] {
        let done = service.wait(id).expect("known job");
        assert_eq!(done.state, JobState::Completed, "{id}: {:?}", done.error);
    }
    service.drain();
    drop(service);
    assert_eq!(
        started_order(&root),
        vec![small, mid, bulk],
        "shortest modeled ETA first, regardless of submission order"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn aging_prevents_bulk_starvation() {
    let root = fresh_root("aging");
    let mut cfg = ServiceConfig::new(1, u64::MAX, root.clone());
    // An enormous aging rate: one millisecond of waiting outweighs any
    // ETA difference, so the queue degrades to FIFO — the bulk job's head
    // start beats the small job's smaller cost.
    cfg.aging_io_per_ms = u64::MAX / 1_000_000;
    let service = SortService::start(cfg).expect("start");
    service.hold();
    let bulk = service.submit(job(60_000)).expect("admitted");
    std::thread::sleep(Duration::from_millis(20));
    let small = service.submit(job(1_000)).expect("admitted");
    service.release();
    for id in [bulk, small] {
        assert_eq!(
            service.wait(id).expect("known job").state,
            JobState::Completed
        );
    }
    service.drain();
    drop(service);
    assert_eq!(
        started_order(&root),
        vec![bulk, small],
        "a waited-long-enough bulk job runs before a fresh small one"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn io_budget_is_a_second_typed_admission_axis() {
    let root = fresh_root("iobudget");
    let one = job(20_000).predict();
    let mut cfg = ServiceConfig::new(1, u64::MAX, root.clone());
    // Room for exactly one such job in flight.
    cfg.io_budget = one.io_cost() + one.io_cost() / 2;
    let service = SortService::start(cfg).expect("start");
    service.hold();
    let first = service.submit(job(20_000)).expect("fits the I/O budget");
    let err = service
        .submit(job(20_000))
        .expect_err("over the I/O budget");
    match err {
        SubmitError::RejectedIo {
            predicted,
            available,
        } => {
            assert_eq!(predicted, one.io_cost());
            assert_eq!(available, cfg_available(&one));
            // The wire payload names the axis, distinct from the memory
            // rejection's "rejected".
            assert!(err.to_json().contains("\"rejected_io\""));
        }
        other => panic!("wrong rejection type: {other:?}"),
    }
    // The budget is held, not leaked: once the first job finishes, the
    // same submission is admitted.
    service.release();
    assert_eq!(
        service.wait(first).expect("known").state,
        JobState::Completed
    );
    let second = service.submit(job(20_000)).expect("budget released");
    assert_eq!(
        service.wait(second).expect("known").state,
        JobState::Completed
    );
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    assert!(stats.peak_in_flight_io >= one.io_cost());
    service.drain();
    let _ = std::fs::remove_dir_all(&root);
}

fn cfg_available(one: &asym_core::sort::CostEstimate) -> u64 {
    (one.io_cost() + one.io_cost() / 2) - one.io_cost()
}

#[test]
fn drain_clears_an_admin_hold() {
    let root = fresh_root("hold-drain");
    let service = SortService::start(ServiceConfig::new(1, u64::MAX, root.clone())).expect("start");
    service.hold();
    let id = service.submit(job(2_000)).expect("admitted");
    // Drain must not deadlock behind the hold: it lifts it and finishes
    // the admitted job.
    service.drain();
    assert_eq!(
        service.status(id).expect("known").state,
        JobState::Completed
    );
    let _ = std::fs::remove_dir_all(&root);
}

//! Property battery for duplicate-safe merging: random streams with
//! arbitrary duplication (tiny key/payload spaces force heavy repetition)
//! must sort identically under the `(Record, seq)`-keyed [`FlatMergeQueue`]
//! discipline and a stable RAM reference, preserving every record.

use asym_core::em::FlatMergeQueue;
use asym_core::sort::{self, Algorithm, SortSpec};
use asym_model::Record;
use proptest::prelude::*;

/// Records drawn from a tiny space: with 4 keys × 3 payloads over up to 600
/// draws, duplicate records are the norm, not the exception.
fn duplicate_stream() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        (0u64..4, 0u64..3).prop_map(|(k, p)| Record::new(k, p)),
        0..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tagging each stream element with its position gives the queue a
    /// strict total order; draining mins must reproduce the stable sort
    /// (equal records in stream order) without losing a single record.
    #[test]
    fn queue_drain_matches_stable_sort(stream in duplicate_stream()) {
        let cap = stream.len().max(1);
        let mut q: FlatMergeQueue<(Record, u64), u32> = FlatMergeQueue::with_capacity(cap);
        for (i, &r) in stream.iter().enumerate() {
            q.push((r, i as u64), 0);
        }
        let mut drained = Vec::with_capacity(stream.len());
        while let Some(((r, _), _)) = q.pop_min() {
            drained.push(r);
        }
        let mut expect = stream.clone();
        expect.sort(); // std stable sort: the reference
        prop_assert_eq!(drained.len(), stream.len(), "records lost in the queue");
        prop_assert_eq!(drained, expect);
    }

    /// Draining from both ends must still account for every record and
    /// reassemble into the same stable order.
    #[test]
    fn two_ended_drain_preserves_every_record(
        stream in duplicate_stream(),
        take_max in prop::collection::vec(any::<bool>(), 0..600),
    ) {
        let cap = stream.len().max(1);
        let mut q: FlatMergeQueue<(Record, u64), u32> = FlatMergeQueue::with_capacity(cap);
        for (i, &r) in stream.iter().enumerate() {
            q.push((r, i as u64), 0);
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut flips = take_max.iter().cycle();
        while !q.is_empty() {
            if *flips.next().expect("cycle") && !q.is_empty() {
                hi.push(q.pop_max().expect("non-empty").0);
            } else {
                lo.push(q.pop_min().expect("non-empty").0);
            }
        }
        hi.reverse();
        lo.extend(hi);
        let keys: Vec<(Record, u64)> = lo;
        prop_assert_eq!(keys.len(), stream.len(), "records lost in the queue");
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]), "drain must be strictly ordered");
        let mut expect = stream.clone();
        expect.sort();
        let recs: Vec<Record> = keys.into_iter().map(|(r, _)| r).collect();
        prop_assert_eq!(recs, expect);
    }

    /// End-to-end: the full AEM mergesort (rounds of the bounded queue with
    /// the bar/`last_v` discipline) on arbitrarily duplicated streams equals
    /// the stable reference and preserves the length.
    #[test]
    fn aem_mergesort_matches_stable_sort(stream in duplicate_stream(), k in 1usize..4) {
        let spec = SortSpec::builder(Algorithm::Mergesort, 16, 4, 8)
            .k(k)
            .seed(0)
            .build()
            .expect("valid spec");
        let outcome = sort::run(&spec, &stream).expect("mergesort");
        let mut expect = stream.clone();
        expect.sort();
        prop_assert_eq!(outcome.output.len(), stream.len(), "records lost in the sort");
        prop_assert_eq!(outcome.output, expect);
    }
}

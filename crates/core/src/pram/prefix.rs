//! Parallel prefix sums with measured work-depth cost.
//!
//! The contraction-based scan: pair up adjacent elements, recurse on the
//! halved array, then expand. O(n) reads and writes, O(ω log n) depth —
//! the workhorse behind the packing step of Algorithm 1 and the bucket
//! placement of the cache-oblivious sort.

use wd_sim::Cost;

/// Exclusive prefix sums: returns (`out`, cost) where `out.len() == xs.len()
/// + 1`, `out\[i\]` is the sum of `xs[..i]`, and `out\[n\]` the grand total.
pub fn prefix_sums(xs: &[u64], omega: u64) -> (Vec<u64>, Cost) {
    let n = xs.len();
    if n == 0 {
        return (vec![0], Cost::ZERO);
    }
    if n == 1 {
        // One read, one write of the total.
        return (vec![0, xs[0]], Cost::strand(1, 1, omega));
    }
    // Contract: y[i] = xs[2i] + xs[2i+1] (parallel pair additions).
    let half = n / 2;
    let mut contracted: Vec<u64> = Vec::with_capacity(half + 1);
    for i in 0..half {
        contracted.push(xs[2 * i] + xs[2 * i + 1]);
    }
    if n % 2 == 1 {
        contracted.push(xs[n - 1]);
    }
    let contract_cost = Cost::par_all((0..contracted.len()).map(|_| Cost::strand(2, 1, omega)));

    let (inner, rec_cost) = prefix_sums(&contracted, omega);

    // Expand: out[2i] = inner[i]; out[2i+1] = inner[i] + xs[2i].
    let mut out: Vec<u64> = vec![0; n + 1];
    for i in 0..half {
        out[2 * i] = inner[i];
        out[2 * i + 1] = inner[i] + xs[2 * i];
    }
    if n % 2 == 1 {
        out[n - 1] = inner[half];
    }
    out[n] = *inner.last().expect("non-empty");
    let expand_cost = Cost::par_all((0..n + 1).map(|_| Cost::strand(2, 1, omega)));

    (out, contract_cost.then(rec_cost).then(expand_cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(xs: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(xs.len() + 1);
        let mut acc = 0u64;
        out.push(0);
        for &x in xs {
            acc += x;
            out.push(acc);
        }
        out
    }

    #[test]
    fn matches_reference_on_sizes() {
        for n in [0usize, 1, 2, 3, 7, 8, 100, 1023] {
            let xs: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 11).collect();
            let (got, _) = prefix_sums(&xs, 4);
            assert_eq!(got, reference(&xs), "n={n}");
        }
    }

    #[test]
    fn cost_is_linear_work_logarithmic_depth() {
        let xs: Vec<u64> = vec![1; 1 << 12];
        let omega = 8;
        let (_, cost) = prefix_sums(&xs, omega);
        let n = xs.len() as u64;
        assert!(cost.reads <= 8 * n, "reads {} should be O(n)", cost.reads);
        assert!(
            cost.writes <= 4 * n,
            "writes {} should be O(n)",
            cost.writes
        );
        // Depth ~ levels * (strand of ~3 ops with one omega-write each).
        let levels = 13u64;
        assert!(
            cost.depth <= 4 * levels * (2 + omega),
            "depth {} should be O(omega log n)",
            cost.depth
        );
    }

    #[test]
    fn depth_grows_logarithmically() {
        let omega = 4;
        let d = |n: usize| prefix_sums(&vec![1u64; n], omega).1.depth;
        let d1 = d(1 << 8);
        let d2 = d(1 << 16);
        // Doubling the exponent should roughly double the depth.
        assert!(d2 < 3 * d1, "depth {d1} -> {d2} should be logarithmic");
    }

    #[test]
    fn all_zeros_and_empty() {
        let (out, _) = prefix_sums(&[], 2);
        assert_eq!(out, vec![0]);
        let (out, _) = prefix_sums(&[0, 0, 0], 2);
        assert_eq!(out, vec![0, 0, 0, 0]);
    }
}

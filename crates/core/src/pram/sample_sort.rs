//! Algorithm 1 — the Asymmetric CRCW PRAM sample sort.
//!
//! O(n log n) reads, O(n) writes, O(ω log n) depth w.h.p. Steps (paper
//! numbering):
//!
//! 1. sample records with probability 1/⌈log n⌉ and sort the sample;
//! 2. every ⌈log n⌉-th sample element becomes a splitter, defining
//!    ~n/log² n buckets, each with an array of c·log² n slots;
//! 3. locate each record's bucket by binary search (O(n log n) reads,
//!    n writes of bucket ids);
//! 4. the *placement problem*: each record tries uniformly random slots of
//!    its bucket array until it finds an empty one (CRCW arbitrary-write:
//!    a collision is one failed try). Records are processed in groups of
//!    ⌈log n⌉ — sequential within a group, parallel across groups — so the
//!    depth is the maximum group's total tries, O(log n) w.h.p.;
//! 5. pack out empty slots with a prefix sum;
//! 6. (optional, for O(ω log n) depth) two rounds of Lemma 3.1 splitting
//!    each bucket into sub-buckets of size O(log^{8/9} n ·(log log n)^{5/3});
//! 7. sort each (sub-)bucket with the O(1)-write RAM sort.
//!
//! Every step's measured work-depth cost is recorded in
//! [`PramSortReport::steps`] for the E1 experiment table.

use super::merge_sort::pram_merge_sort;
use super::partition::lemma31_partition;
use super::prefix::prefix_sums;
use crate::ram::tree_sort::tree_sort_with_counter;
use asym_model::{MemCounter, Record};
use rand::rngs::StdRng;
use rand::Rng;
use wd_sim::Cost;

/// Per-step and total measured costs of one Algorithm 1 run.
#[derive(Clone, Debug, Default)]
pub struct PramSortReport {
    /// (step name, cost) in execution order.
    pub steps: Vec<(&'static str, Cost)>,
    /// Total cost (sequential composition of the steps).
    pub total: Cost,
    /// Number of buckets after step 2.
    pub buckets: usize,
    /// Largest bucket (records, not slots).
    pub max_bucket: usize,
    /// Largest sub-bucket handed to the final RAM sort.
    pub max_final_bucket: usize,
    /// Total placement tries in step 4 (expected O(n)).
    pub placement_tries: u64,
}

/// Slot-array head room: arrays have `SLOT_FACTOR · log² n` slots — the
/// paper's requirement is "at least twice as many slots as records" w.h.p.
/// (c in step 2). The slot count directly scales the write constant of the
/// packing step, so we use the minimum factor and let step 4's doubling
/// regrowth cover unlucky buckets.
const SLOT_FACTOR: usize = 2;

/// Sort on the asymmetric CRCW PRAM. `use_step6` enables the Lemma 3.1
/// sub-bucketing rounds that bring the depth to O(ω log n).
pub fn pram_sample_sort(
    input: &[Record],
    omega: u64,
    rng: &mut StdRng,
    use_step6: bool,
) -> (Vec<Record>, PramSortReport) {
    let n = input.len();
    let mut report = PramSortReport::default();
    if n <= 16 {
        let c = MemCounter::new();
        let (out, _) = tree_sort_with_counter(input, &c);
        let cost = Cost::strand(c.reads(), c.writes(), omega);
        report.steps.push(("base", cost));
        report.total = cost;
        report.buckets = 1;
        report.max_bucket = n;
        report.max_final_bucket = n;
        return (out, report);
    }
    let lg = (n as f64).log2().ceil().max(1.0) as usize;

    // Step 1: Bernoulli sample at rate 1/lg, then sort the sample.
    let mut sample: Vec<Record> = Vec::with_capacity(2 * n / lg);
    for &r in input {
        if rng.gen_range(0..lg) == 0 {
            sample.push(r);
        }
    }
    let sample_cost = Cost::par_all((0..n).map(|_| Cost::reads(1))).then(Cost::par_all(
        (0..sample.len()).map(|_| Cost::strand(0, 1, omega)),
    ));
    let (sorted_sample, sort_cost) = pram_merge_sort(&sample, omega);
    let step1 = sample_cost.then(sort_cost);
    report.steps.push(("1:sample+sort", step1));

    // Step 2: every lg-th sample element is a splitter.
    let mut splitters: Vec<Record> = sorted_sample
        .iter()
        .skip(lg - 1)
        .step_by(lg)
        .copied()
        .collect();
    splitters.dedup();
    let buckets = splitters.len() + 1;
    let slots_per_bucket = (SLOT_FACTOR * lg * lg).max(16);
    let step2 = Cost::par_all((0..buckets).map(|_| Cost::strand(1, 1, omega)));
    report.steps.push(("2:splitters", step2));
    report.buckets = buckets;

    // Step 3: binary-search each record's bucket.
    let bucket_of: Vec<u32> = input
        .iter()
        .map(|r| splitters.partition_point(|s| s < r) as u32)
        .collect();
    let search_reads = (splitters.len().max(2)).ilog2() as u64 + 1;
    let step3 = Cost::par_all((0..n).map(|_| Cost::strand(search_reads + 1, 1, omega)));
    report.steps.push(("3:bucket-search", step3));

    // Step 4: random placement into bucket slot arrays. Groups of lg records
    // run sequentially; groups run in parallel, so depth = max group tries.
    let mut slots: Vec<Vec<Option<Record>>> = vec![vec![None; slots_per_bucket]; buckets];
    let mut bucket_fill: Vec<usize> = vec![0; buckets];
    let mut group_costs: Vec<Cost> = Vec::with_capacity(n.div_ceil(lg));
    let mut total_tries = 0u64;
    for group in 0..n.div_ceil(lg) {
        let lo = group * lg;
        let hi = ((group + 1) * lg).min(n);
        let mut group_tries = 0u64;
        for i in lo..hi {
            let b = bucket_of[i] as usize;
            let arr = &mut slots[b];
            // Regrow (doubling) if a bucket overflows its slot array — out
            // of the w.h.p. regime, but the implementation must stay total.
            if bucket_fill[b] * 2 >= arr.len() {
                arr.resize(arr.len() * 2, None);
            }
            loop {
                group_tries += 1;
                let s = rng.gen_range(0..arr.len());
                if arr[s].is_none() {
                    arr[s] = Some(input[i]);
                    bucket_fill[b] += 1;
                    break;
                }
            }
        }
        total_tries += group_tries;
        // Each try: read the slot; the final try also writes the record.
        group_costs.push(Cost::strand(group_tries, (hi - lo) as u64, omega));
    }
    let step4 = Cost::par_all(group_costs);
    report.steps.push(("4:placement", step4));
    report.placement_tries = total_tries;
    report.max_bucket = bucket_fill.iter().copied().max().unwrap_or(0);

    // Step 5: pack out the empty slots with a prefix sum over occupancy.
    let occupancy: Vec<u64> = slots
        .iter()
        .flat_map(|arr| arr.iter().map(|s| u64::from(s.is_some())))
        .collect();
    let (positions, scan_cost) = prefix_sums(&occupancy, omega);
    let mut packed: Vec<Record> = vec![Record::default(); n];
    let mut flat_idx = 0usize;
    for arr in &slots {
        for s in arr {
            if let Some(r) = s {
                packed[positions[flat_idx] as usize] = *r;
            }
            flat_idx += 1;
        }
    }
    let step5 = scan_cost.then(Cost::par_all((0..n).map(|_| Cost::strand(1, 1, omega))));
    report.steps.push(("5:pack", step5));

    // Bucket boundaries within the packed array.
    let mut bucket_ranges: Vec<(usize, usize)> = Vec::with_capacity(buckets);
    {
        let mut start = 0usize;
        for &fill in bucket_fill.iter().take(buckets) {
            let end = start + fill;
            bucket_ranges.push((start, end));
            start = end;
        }
        debug_assert_eq!(start, n);
    }

    // Step 6 (optional): two rounds of Lemma 3.1 per bucket; step 7: RAM
    // sort each final piece. Buckets are independent (parallel).
    let mut out: Vec<Record> = Vec::with_capacity(n);
    let mut bucket_costs: Vec<Cost> = Vec::with_capacity(buckets);
    let mut max_final = 0usize;
    for &(lo, hi) in &bucket_ranges {
        let chunk = &packed[lo..hi];
        if chunk.is_empty() {
            continue;
        }
        let mut pieces: Vec<Vec<Record>> = vec![chunk.to_vec()];
        let mut bucket_cost = Cost::ZERO;
        if use_step6 {
            for _round in 0..2 {
                let mut next: Vec<Vec<Record>> = Vec::new();
                let mut round_costs: Vec<Cost> = Vec::with_capacity(pieces.len());
                for piece in &pieces {
                    let (subs, c, _) = lemma31_partition(piece, omega);
                    round_costs.push(c);
                    next.extend(subs);
                }
                bucket_cost = bucket_cost.then(Cost::par_all(round_costs));
                pieces = next;
            }
        }
        let mut sort_costs: Vec<Cost> = Vec::with_capacity(pieces.len());
        for piece in pieces {
            max_final = max_final.max(piece.len());
            let c = MemCounter::new();
            let (sorted, _) = tree_sort_with_counter(&piece, &c);
            sort_costs.push(Cost::strand(c.reads(), c.writes(), omega));
            out.extend(sorted);
        }
        bucket_cost = bucket_cost.then(Cost::par_all(sort_costs));
        bucket_costs.push(bucket_cost);
    }
    let step67 = Cost::par_all(bucket_costs);
    report.steps.push((
        if use_step6 {
            "6+7:subsort"
        } else {
            "7:bucket-sort"
        },
        step67,
    ));
    report.max_final_bucket = max_final;

    report.total = Cost::seq_all(report.steps.iter().map(|&(_, c)| c));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sorts_all_workloads() {
        for wl in Workload::ALL {
            for use6 in [false, true] {
                let input = wl.generate(3000, 5);
                let (out, _) = pram_sample_sort(&input, 4, &mut rng(1), use6);
                assert_sorted_permutation(&input, &out);
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        for n in [0usize, 1, 2, 16, 17] {
            let input = Workload::UniformRandom.generate(n, 3);
            let (out, _) = pram_sample_sort(&input, 4, &mut rng(2), true);
            assert_sorted_permutation(&input, &out);
        }
    }

    #[test]
    fn writes_are_linear_reads_nlogn() {
        let omega = 16u64;
        let n = 1 << 14;
        let input = Workload::UniformRandom.generate(n, 7);
        let (_, report) = pram_sample_sort(&input, omega, &mut rng(3), false);
        let nf = n as f64;
        let writes_per_n = report.total.writes as f64 / nf;
        let reads_per_nlogn = report.total.reads as f64 / (nf * nf.log2());
        // The constant is ~21: the packing prefix-sum runs over ~2.6n slots
        // (SLOT_FACTOR plus per-bucket rounding) at ~4 writes/slot, and the
        // per-bucket RAM tree sorts write ~8/record. What the theorem
        // promises — and what the flatness test below verifies — is that
        // this constant does not grow with n, unlike the n·log n baseline.
        assert!(
            writes_per_n < 25.0,
            "writes/n = {writes_per_n:.2} should be O(1)"
        );
        assert!(
            reads_per_nlogn < 8.0,
            "reads/(n lg n) = {reads_per_nlogn:.2} should be O(1)"
        );
    }

    #[test]
    fn writes_per_n_stays_flat_as_n_grows() {
        let omega = 8u64;
        let wpn = |n: usize| {
            let input = Workload::UniformRandom.generate(n, 11);
            let (_, r) = pram_sample_sort(&input, omega, &mut rng(5), false);
            r.total.writes as f64 / n as f64
        };
        let small = wpn(1 << 11);
        let large = wpn(1 << 15);
        assert!(
            large < small * 1.6,
            "writes/n must not grow with n: {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn step6_reduces_final_bucket_size() {
        let n = 1 << 14;
        let input = Workload::UniformRandom.generate(n, 13);
        let (_, without) = pram_sample_sort(&input, 4, &mut rng(7), false);
        let (_, with) = pram_sample_sort(&input, 4, &mut rng(7), true);
        assert!(
            with.max_final_bucket <= without.max_final_bucket,
            "step 6 must not enlarge final buckets: {} vs {}",
            with.max_final_bucket,
            without.max_final_bucket
        );
    }

    #[test]
    fn placement_tries_are_linear() {
        let n = 1 << 13;
        let input = Workload::UniformRandom.generate(n, 17);
        let (_, report) = pram_sample_sort(&input, 4, &mut rng(9), false);
        assert!(
            report.placement_tries < 3 * n as u64,
            "expected O(1) tries/record, got {} for n={n}",
            report.placement_tries
        );
    }

    #[test]
    fn depth_tracks_omega_log_n() {
        // Theorem 3.2 shape check: depth / (omega * lg n) bounded, and not
        // exploding as n quadruples.
        let ratio = |n: usize, omega: u64| {
            let input = Workload::UniformRandom.generate(n, 19);
            let (_, r) = pram_sample_sort(&input, omega, &mut rng(11), true);
            r.total.depth as f64 / (omega as f64 * (n as f64).log2())
        };
        let r1 = ratio(1 << 12, 8);
        let r2 = ratio(1 << 14, 8);
        // The substitute sample sorter costs an extra log factor in depth
        // (DESIGN.md); allow generous slack but catch quadratic blowups.
        assert!(
            r2 / r1 < 4.0,
            "depth/(omega lg n) growing too fast: {r1:.1} -> {r2:.1}"
        );
    }

    #[test]
    fn report_step_names_in_order() {
        let input = Workload::UniformRandom.generate(2048, 23);
        let (_, r) = pram_sample_sort(&input, 4, &mut rng(13), true);
        let names: Vec<&str> = r.steps.iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "1:sample+sort",
                "2:splitters",
                "3:bucket-search",
                "4:placement",
                "5:pack",
                "6+7:subsort"
            ]
        );
        assert!(r.total.reads > 0 && r.total.writes > 0 && r.total.depth > 0);
    }
}

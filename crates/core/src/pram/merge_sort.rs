//! A work-depth-accounted parallel mergesort (Cole substitute).
//!
//! Recursive halving with parallel merges: each merge splits the output into
//! chunks along the merge path (binary searches, done in parallel), then
//! merges each chunk sequentially. Depth O(ω log² n), work O(n log n) reads
//! and O(n log n) writes — used only on samples of size O(n / log n), where
//! this is within the O(n) read/write budget the paper allots (§3, DESIGN.md
//! substitution note).

use asym_model::Record;
use wd_sim::Cost;

/// Sequential-cost threshold for the base case.
const BASE: usize = 32;

/// Sort by parallel mergesort, returning the measured work-depth cost.
pub fn pram_merge_sort(input: &[Record], omega: u64) -> (Vec<Record>, Cost) {
    if input.len() <= BASE {
        return base_sort(input, omega);
    }
    let mid = input.len() / 2;
    let (left, lc) = pram_merge_sort(&input[..mid], omega);
    let (right, rc) = pram_merge_sort(&input[mid..], omega);
    let (merged, mc) = par_merge(&left, &right, omega);
    (merged, lc.par(rc).then(mc))
}

/// Base case: binary-insertion sort with counted comparisons and moves
/// (its sequential cost is its depth).
fn base_sort(input: &[Record], omega: u64) -> (Vec<Record>, Cost) {
    let mut out: Vec<Record> = Vec::with_capacity(input.len());
    let mut reads = 0u64;
    let mut writes = 0u64;
    for &r in input {
        reads += 1;
        let pos = out.partition_point(|x| *x < r);
        reads += (out.len().max(1)).ilog2() as u64 + 1;
        // Insertion shifts the tail: each shifted record is a read + write.
        let shifted = (out.len() - pos) as u64;
        reads += shifted;
        writes += shifted + 1;
        out.insert(pos, r);
    }
    (out, Cost::strand(reads, writes, omega))
}

/// Parallel merge: chunk the output by binary-search splits of the combined
/// sequence, then merge chunks independently.
pub fn par_merge(a: &[Record], b: &[Record], omega: u64) -> (Vec<Record>, Cost) {
    let total = a.len() + b.len();
    if total == 0 {
        return (Vec::new(), Cost::ZERO);
    }
    let chunk = (total.ilog2() as usize + 1).max(8);
    let chunks = total.div_ceil(chunk);
    let mut out: Vec<Record> = Vec::with_capacity(total);
    let mut split_costs: Vec<Cost> = Vec::with_capacity(chunks);
    let mut merge_costs: Vec<Cost> = Vec::with_capacity(chunks);
    let mut prev = (0usize, 0usize);
    for t in 1..=chunks {
        let target = (t * total / chunks).min(total);
        let (ai, bi) = merge_path_split(a, b, target);
        // Each split is two binary searches' worth of reads.
        split_costs.push(Cost::reads(2 * ((total.max(2)).ilog2() as u64 + 1)));
        // Sequential two-pointer merge of the chunk.
        let (alo, blo) = prev;
        let (mut i, mut j) = (alo, blo);
        let mut reads = 0u64;
        let mut writes = 0u64;
        while i < ai || j < bi {
            let take_a = j >= bi || (i < ai && a[i] <= b[j]);
            reads += 2;
            if take_a {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
            writes += 1;
        }
        merge_costs.push(Cost::strand(reads, writes, omega));
        prev = (ai, bi);
    }
    let cost = Cost::par_all(split_costs).then(Cost::par_all(merge_costs));
    (out, cost)
}

/// Find (i, j) with i + j = target such that merging a[..i] and b[..j]
/// yields the `target` smallest records of the union (the "merge path").
fn merge_path_split(a: &[Record], b: &[Record], target: usize) -> (usize, usize) {
    let lo = target.saturating_sub(b.len());
    let hi = target.min(a.len());
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = target - i;
        // Valid split: a[i-1] <= b[j] and b[j-1] <= a[i] (with sentinels).
        if i > 0 && j < b.len() && a[i - 1] > b[j] {
            hi = i; // too many from a
        } else if j > 0 && i < a.len() && b[j - 1] > a[i] {
            lo = i + 1; // too few from a
        } else {
            return (i, j);
        }
    }
    (lo, target - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;

    #[test]
    fn sorts_all_workloads() {
        for wl in Workload::ALL {
            for n in [0usize, 1, 31, 32, 33, 500, 4096] {
                let input = wl.generate(n, 3);
                let (out, _) = pram_merge_sort(&input, 4);
                assert_sorted_permutation(&input, &out);
            }
        }
    }

    #[test]
    fn merge_handles_skewed_lengths() {
        let a: Vec<Record> = (0..100).map(|i| Record::keyed(2 * i)).collect();
        let b: Vec<Record> = vec![Record::keyed(51)];
        let (out, _) = par_merge(&a, &b, 2);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.len(), 101);
        let (out, _) = par_merge(&[], &b, 2);
        assert_eq!(out, b);
    }

    #[test]
    fn work_is_nlogn_depth_is_polylog() {
        let omega = 8u64;
        let input = Workload::UniformRandom.generate(1 << 12, 1);
        let n = input.len() as u64;
        let lg = (n as f64).log2();
        let (_, cost) = pram_merge_sort(&input, omega);
        let reads_per = cost.reads as f64 / (n as f64 * lg);
        assert!(
            reads_per < 6.0,
            "reads/(n lg n) = {reads_per:.2} should be O(1)"
        );
        // Depth should be far below the sequential work.
        assert!(
            cost.depth < cost.work(omega) / 8,
            "depth {} vs work {}",
            cost.depth,
            cost.work(omega)
        );
    }

    #[test]
    fn depth_scales_polylogarithmically() {
        let omega = 4u64;
        let d = |n: usize| {
            let input = Workload::UniformRandom.generate(n, 2);
            pram_merge_sort(&input, omega).1.depth as f64
        };
        let d1 = d(1 << 10);
        let d2 = d(1 << 14);
        // log²(2^14)/log²(2^10) = (14/10)² ≈ 2; allow 3x.
        assert!(d2 / d1 < 3.0, "depth ratio {:.2} too steep", d2 / d1);
    }

    #[test]
    fn merge_path_split_is_correct() {
        let a: Vec<Record> = [1u64, 3, 5, 7].iter().map(|&k| Record::keyed(k)).collect();
        let b: Vec<Record> = [2u64, 4, 6, 8].iter().map(|&k| Record::keyed(k)).collect();
        for target in 0..=8 {
            let (i, j) = merge_path_split(&a, &b, target);
            assert_eq!(i + j, target);
            // All taken records must be <= all untaken ones.
            let taken_max = a[..i].iter().chain(b[..j].iter()).max();
            let untaken_min = a[i..].iter().chain(b[j..].iter()).min();
            if let (Some(t), Some(u)) = (taken_max, untaken_min) {
                assert!(t <= u, "target={target}");
            }
        }
    }
}

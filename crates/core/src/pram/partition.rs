//! Lemma 3.1 — partition m records into m^{1/3} ordered buckets.
//!
//! The sub-bucketing tool behind step 6 of Algorithm 1: sort groups of size
//! m^{1/3} with the O(1)-write RAM sort, sample every ⌈log m⌉-th record of
//! each sorted group, sort the sample, pick m^{1/3}−1 splitters, and radix-
//! partition by bucket number. Guarantees max bucket < m^{2/3} log m with
//! O(m log m) reads, O(m) writes, and O(ω·m^{1/3} log m) depth (group sort)
//! + radix depth.

use super::merge_sort::pram_merge_sort;
use super::radix::pram_radix_sort_by;
use crate::ram::tree_sort::tree_sort_with_counter;
use asym_model::{MemCounter, Record};
use wd_sim::Cost;

/// What Lemma 3.1 promises, measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartitionStats {
    /// Number of buckets produced.
    pub buckets: usize,
    /// Largest bucket observed.
    pub max_bucket: usize,
    /// The lemma's bound m^{2/3} log m (rounded up).
    pub bound: usize,
}

/// Partition into ⌈m^{1/3}⌉ buckets: every record in bucket i is smaller
/// than every record in bucket i+1. Returns (buckets, cost, stats).
pub fn lemma31_partition(input: &[Record], omega: u64) -> (Vec<Vec<Record>>, Cost, PartitionStats) {
    let m = input.len();
    if m <= 8 {
        let c = MemCounter::new();
        let (sorted, _) = tree_sort_with_counter(input, &c);
        let cost = Cost::strand(c.reads(), c.writes(), omega);
        let stats = PartitionStats {
            buckets: 1,
            max_bucket: m,
            bound: m,
        };
        return (vec![sorted], cost, stats);
    }
    let g = (m as f64).cbrt().ceil() as usize; // group size ~ m^{1/3}
    let lg = (m as f64).log2().ceil().max(1.0) as usize;

    // 1. Sort each group with the RAM sort (parallel across groups; each
    //    group's depth is its sequential cost).
    let mut groups: Vec<Vec<Record>> = Vec::with_capacity(m.div_ceil(g));
    let mut group_costs: Vec<Cost> = Vec::new();
    for chunk in input.chunks(g) {
        let c = MemCounter::new();
        let (sorted, _) = tree_sort_with_counter(chunk, &c);
        group_costs.push(Cost::strand(c.reads(), c.writes(), omega));
        groups.push(sorted);
    }
    let mut cost = Cost::par_all(group_costs);

    // 2. Sample every ⌈log m⌉-th record of each sorted group.
    let mut sample: Vec<Record> = Vec::new();
    let mut sample_reads = 0u64;
    for grp in &groups {
        let mut i = lg - 1;
        while i < grp.len() {
            sample.push(grp[i]);
            sample_reads += 1;
            i += lg;
        }
    }
    cost = cost.then(Cost::par_all(
        (0..sample.len()).map(|_| Cost::strand(1, 1, omega)),
    ));
    let _ = sample_reads;

    // 3. Sort the sample (Cole substitute) and pick g−1 splitters.
    let (sorted_sample, sample_cost) = pram_merge_sort(&sample, omega);
    cost = cost.then(sample_cost);
    let want = g.saturating_sub(1);
    let mut splitters: Vec<Record> = Vec::with_capacity(want);
    if !sorted_sample.is_empty() {
        for t in 1..=want {
            let idx = t * sorted_sample.len() / (want + 1);
            splitters.push(sorted_sample[idx.min(sorted_sample.len() - 1)]);
        }
        splitters.dedup();
    }

    // 4. Bucket number per record (parallel binary searches)...
    let keys: Vec<u32> = input
        .iter()
        .map(|r| splitters.partition_point(|s| s < r) as u32)
        .collect();
    let search_reads = (splitters.len().max(2)).ilog2() as u64 + 1;
    cost = cost.then(Cost::par_all(
        (0..m).map(|_| Cost::strand(search_reads + 1, 1, omega)),
    ));

    // 5. ... then radix-partition by bucket number (stable).
    let (placed, radix_cost) = pram_radix_sort_by(&keys, input, omega);
    cost = cost.then(radix_cost);

    // Slice the placed array into buckets.
    let num_buckets = splitters.len() + 1;
    let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); num_buckets];
    let mut sorted_keys = keys;
    sorted_keys.sort_unstable();
    let mut idx = 0usize;
    for (b, bucket) in buckets.iter_mut().enumerate() {
        let count = sorted_keys[idx..]
            .iter()
            .take_while(|&&k| k == b as u32)
            .count();
        bucket.extend_from_slice(&placed[idx..idx + count]);
        idx += count;
    }
    debug_assert_eq!(idx, m);

    let max_bucket = buckets.iter().map(Vec::len).max().unwrap_or(0);
    let bound = ((m as f64).powf(2.0 / 3.0) * (m as f64).log2()).ceil() as usize;
    let stats = PartitionStats {
        buckets: num_buckets,
        max_bucket,
        bound,
    };
    (buckets, cost, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::workload::Workload;

    #[test]
    fn buckets_are_ordered_and_conserve_records() {
        for wl in [
            Workload::UniformRandom,
            Workload::Reversed,
            Workload::Sorted,
        ] {
            let input = wl.generate(2000, 7);
            let (buckets, _, stats) = lemma31_partition(&input, 4);
            assert_eq!(stats.buckets, buckets.len());
            let flat: Vec<Record> = buckets.iter().flatten().copied().collect();
            assert_eq!(flat.len(), input.len());
            // Cross-bucket ordering.
            for w in buckets.windows(2) {
                if let (Some(a), Some(b)) = (w[0].iter().max(), w[1].iter().min()) {
                    assert!(a < b, "{}: bucket overlap", wl.name());
                }
            }
            let mut all = flat;
            all.sort();
            let mut exp = input.clone();
            exp.sort();
            assert_eq!(all, exp);
        }
    }

    #[test]
    fn max_bucket_respects_lemma_bound() {
        for seed in 0..3u64 {
            let input = Workload::UniformRandom.generate(8000, seed);
            let (_, _, stats) = lemma31_partition(&input, 4);
            assert!(
                stats.max_bucket <= stats.bound,
                "max bucket {} exceeds m^(2/3) log m = {}",
                stats.max_bucket,
                stats.bound
            );
        }
    }

    #[test]
    fn writes_linear_reads_superlinear() {
        let omega = 8;
        let m = 1 << 13;
        let input = Workload::UniformRandom.generate(m, 2);
        let (_, cost, _) = lemma31_partition(&input, omega);
        let n = m as f64;
        assert!(
            (cost.writes as f64) < 16.0 * n,
            "writes {} should be O(m)",
            cost.writes
        );
        assert!(
            (cost.reads as f64) < 16.0 * n * n.log2(),
            "reads {} should be O(m log m)",
            cost.reads
        );
    }

    #[test]
    fn tiny_inputs_collapse_to_single_bucket() {
        let input = Workload::Reversed.generate(5, 1);
        let (buckets, _, stats) = lemma31_partition(&input, 2);
        assert_eq!(buckets.len(), 1);
        assert_eq!(stats.max_bucket, 5);
        assert!(buckets[0].windows(2).all(|w| w[0] <= w[1]));
    }
}

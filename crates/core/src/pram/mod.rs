//! §3 — sorting on the Asymmetric CRCW PRAM.
//!
//! Algorithm 1 of the paper: a sample sort doing O(n log n) reads but only
//! O(n) writes, with O(ω log n) depth w.h.p. Every subroutine here computes
//! its [`wd_sim::Cost`] alongside its result, composing sequential steps
//! with `then` (depths add) and parallel steps with `par` (depths max), so
//! the reported work and depth come from the actual dependence structure of
//! the computation.
//!
//! Cole's parallel mergesort — which the paper invokes as a black box for
//! sorting o(n)-sized samples — is substituted by [`merge_sort`], a
//! binary-search-split parallel mergesort with O(log² n) depth; the paper's
//! read/write budget for those steps is unaffected (see DESIGN.md).

pub mod merge_sort;
pub mod partition;
pub mod prefix;
pub mod radix;
pub mod sample_sort;

pub use merge_sort::pram_merge_sort;
pub use partition::{lemma31_partition, PartitionStats};
pub use prefix::prefix_sums;
pub use radix::pram_radix_sort_by;
pub use sample_sort::{pram_sample_sort, PramSortReport};

//! A work-depth-accounted parallel radix sort on small integer keys.
//!
//! Used by Lemma 3.1 and step 6 of Algorithm 1 to place records into their
//! buckets by bucket number: stable counting-sort passes over 8-bit digits,
//! parallel across groups of elements, with a prefix sum across the
//! (group × digit) count matrix between phases. Linear reads/writes; depth
//! O(ω · (group size + #digit values)) per pass.

use super::prefix::prefix_sums;
use asym_model::Record;
use wd_sim::Cost;

const DIGIT_BITS: u32 = 8;
const RADIX: usize = 1 << DIGIT_BITS;
const GROUP: usize = 512;

/// Stably sort `items` by the integer `keys` (parallel counting sort per
/// digit). Returns the permuted items with the measured cost.
pub fn pram_radix_sort_by(keys: &[u32], items: &[Record], omega: u64) -> (Vec<Record>, Cost) {
    assert_eq!(keys.len(), items.len());
    let n = keys.len();
    if n <= 1 {
        return (items.to_vec(), Cost::ZERO);
    }
    let max_key = *keys.iter().max().expect("non-empty");
    let passes = ((32 - max_key.leading_zeros()).div_ceil(DIGIT_BITS)).max(1);

    let mut cur_keys: Vec<u32> = keys.to_vec();
    let mut cur_items: Vec<Record> = items.to_vec();
    let mut total = Cost::ZERO;

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        let groups = n.div_ceil(GROUP);
        // Phase 1: per-group digit histograms (parallel across groups).
        let mut counts = vec![0u64; groups * RADIX];
        let mut hist_costs = Vec::with_capacity(groups);
        for g in 0..groups {
            let lo = g * GROUP;
            let hi = ((g + 1) * GROUP).min(n);
            for &key in &cur_keys[lo..hi] {
                let d = ((key >> shift) as usize) & (RADIX - 1);
                counts[g * RADIX + d] += 1;
            }
            // Reads: the group's keys; writes: histogram increments.
            hist_costs.push(Cost::strand((hi - lo) as u64, (hi - lo) as u64, omega));
        }
        total = total.then(Cost::par_all(hist_costs));

        // Phase 2: prefix sums in digit-major order give stable offsets.
        let mut digit_major = vec![0u64; groups * RADIX];
        for d in 0..RADIX {
            for g in 0..groups {
                digit_major[d * groups + g] = counts[g * RADIX + d];
            }
        }
        let (offsets, scan_cost) = prefix_sums(&digit_major, omega);
        total = total.then(scan_cost);

        // Phase 3: parallel scatter by group, consuming the offsets.
        let mut next_keys = vec![0u32; n];
        let mut next_items = vec![Record::default(); n];
        let mut cursor = vec![0u64; groups * RADIX];
        for d in 0..RADIX {
            for g in 0..groups {
                cursor[g * RADIX + d] = offsets[d * groups + g];
            }
        }
        let mut scatter_costs = Vec::with_capacity(groups);
        for g in 0..groups {
            let lo = g * GROUP;
            let hi = ((g + 1) * GROUP).min(n);
            for i in lo..hi {
                let d = ((cur_keys[i] >> shift) as usize) & (RADIX - 1);
                let pos = cursor[g * RADIX + d] as usize;
                cursor[g * RADIX + d] += 1;
                next_keys[pos] = cur_keys[i];
                next_items[pos] = cur_items[i];
            }
            // Each element: read key+item, write key+item+cursor bump.
            scatter_costs.push(Cost::strand(
                2 * (hi - lo) as u64,
                2 * (hi - lo) as u64,
                omega,
            ));
        }
        total = total.then(Cost::par_all(scatter_costs));
        cur_keys = next_keys;
        cur_items = next_items;
    }
    (cur_items, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_stably_by_key() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 5000;
        let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let items: Vec<Record> = (0..n)
            .map(|i| Record::new(keys[i] as u64, i as u64))
            .collect();
        let (out, _) = pram_radix_sort_by(&keys, &items, 4);
        // Sorted by key, and stable (payload ascending within equal keys).
        assert!(out
            .windows(2)
            .all(|w| w[0].key < w[1].key || (w[0].key == w[1].key && w[0].payload < w[1].payload)));
        assert_eq!(out.len(), n);
    }

    #[test]
    fn multi_digit_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 3000;
        let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        let items: Vec<Record> = keys.iter().map(|&k| Record::keyed(k as u64)).collect();
        let (out, _) = pram_radix_sort_by(&keys, &items, 4);
        assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn cost_is_linear_in_n() {
        let omega = 8;
        let cost_of = |n: usize| {
            let keys: Vec<u32> = (0..n as u32).map(|i| i % 101).collect();
            let items: Vec<Record> = keys.iter().map(|&k| Record::keyed(k as u64)).collect();
            pram_radix_sort_by(&keys, &items, omega).1
        };
        let c1 = cost_of(1 << 11);
        let c2 = cost_of(1 << 13);
        let ratio = c2.reads as f64 / c1.reads as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "4x data should mean ~4x reads, got {ratio:.2}"
        );
        // Depth must be sublinear in n.
        assert!(c2.depth < c2.reads / 2, "depth {} too deep", c2.depth);
    }

    #[test]
    fn trivial_inputs() {
        let (out, c) = pram_radix_sort_by(&[], &[], 2);
        assert!(out.is_empty());
        assert_eq!(c, Cost::ZERO);
        let (out, _) = pram_radix_sort_by(&[7], &[Record::keyed(7)], 2);
        assert_eq!(out, vec![Record::keyed(7)]);
    }

    #[test]
    fn zero_keys_all_equal() {
        let items: Vec<Record> = (0..100).map(|i| Record::new(0, i)).collect();
        let keys = vec![0u32; 100];
        let (out, _) = pram_radix_sort_by(&keys, &items, 2);
        assert_eq!(out, items, "stability on all-equal keys");
    }
}

//! # asym-core — write-efficient sorting with asymmetric read/write costs
//!
//! A from-scratch implementation of every algorithm in *Sorting with
//! Asymmetric Read and Write Costs* (Blelloch, Fineman, Gibbons, Gu, Shun;
//! SPAA 2015), organized by the machine model each is analyzed on:
//!
//! * [`ram`] — §3 Asymmetric RAM: sorting via balanced-search-tree insertion
//!   in O(n log n) reads and **O(n) writes**, plus a write-efficient priority
//!   queue (O(1) amortized writes per operation).
//! * [`pram`] — §3 Asymmetric CRCW PRAM: Algorithm 1 (the O(n)-write sample
//!   sort with O(ω log n) depth), Lemma 3.1 partitioning, and the parallel
//!   subroutines they need (prefix sums, merge sort, radix sort), all with
//!   measured work-depth costs.
//! * [`em`] — §4 Asymmetric External Memory: the three AEM sorts — l=kM/B-way
//!   mergesort (Algorithm 2), sample sort, and buffer-tree heapsort with the
//!   α/β working-set priority queue — plus the Lemma 4.2 selection-sort base
//!   case. The classic EM algorithms are the k=1 instances.
//! * [`co`] — §5 cache-oblivious algorithms on the Asymmetric Ideal-Cache:
//!   the low-depth sort (Figure 1), FFT, and matrix multiplication, with
//!   their symmetric counterparts as baselines.
//! * [`par`] — a real multi-threaded sample sort (crossbeam scoped threads)
//!   for wall-clock benchmarking.
//! * [`sort`] — the unified job API: a validated [`sort::SortSpec`]
//!   description, the [`sort::Sorter`] trait with one adapter per AEM sort,
//!   and the [`sort::sorters`] registry. The per-algorithm free functions
//!   are deprecated in its favor.
//!
//! Every algorithm runs against an instrumented substrate (`asym-model`
//! counters, `em-sim` block machine, or `cache-sim` cache) so experiments
//! *measure* reads, writes and I/O rather than transcribe the paper's
//! formulas.

pub mod co;
pub mod em;
pub mod par;
pub mod pram;
pub mod ram;
pub mod sort;

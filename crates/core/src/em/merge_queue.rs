//! The bounded flat merge queue backing Algorithm 2's in-memory priority
//! queue.
//!
//! Each merge round needs four operations on the set of ≤ M candidate
//! records: *peek-max* (to reject phase-1 records that cannot matter this
//! round), *pop-max* (to eject the largest entry when a smaller one arrives
//! into a full queue), *push*, and *pop-min* (the phase-2 drain). The seed
//! implementation used a `BTreeMap<Record, Mark>`, which allocates a node
//! per insert and chases pointers on every operation — and dominated the
//! simulator's wall-clock. This module replaces it with an **interval heap**
//! (a min-max heap) laid out flat in one `Vec`: pairs of adjacent slots form
//! nodes whose low ends are a min-heap and high ends a max-heap, giving O(1)
//! peeks at both extremes and O(log n) pushes and pops of either end with no
//! per-entry allocation.
//!
//! The queue stores `(K, T)` entries ordered by the key `K` alone, and the
//! key must be a **strict total order**: equal keys would make drain and
//! ejection decisions ambiguous. Callers with potentially-duplicate records
//! make the key unique by pairing the record with a provenance sequence —
//! the mergesort uses `(Record, Seq)` where `Seq` is the record's
//! `(run, offset)` origin (see `em::mergesort`), so truly identical records
//! get distinct keys and drain in stable run order instead of being dropped.
//! On unique-record inputs the sequence never decides a comparison, so every
//! modeled block transfer is identical to keying on the record alone.

/// A bounded double-ended priority queue over `(K, T)` entries, laid out as
/// a flat interval heap. Keys must be unique (a strict total order over the
/// live entries); payloads travel with their keys.
///
/// Invariants on the backing array: slots `2i` and `2i+1` form node `i` with
/// `entries[2i] <= entries[2i+1]`; the even (low) slots form a min-heap and
/// the odd (high) slots a max-heap; every node's interval is contained in
/// its parent's. The final node may hold a single entry.
#[derive(Debug)]
pub struct FlatMergeQueue<K, T> {
    entries: Vec<(K, T)>,
    cap: usize,
}

impl<K: Ord + Copy, T: Copy> FlatMergeQueue<K, T> {
    /// An empty queue that will hold at most `cap` entries. The backing
    /// storage is allocated once, up front.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be positive");
        Self {
            entries: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fixed capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The smallest key, in O(1).
    pub fn peek_min(&self) -> Option<K> {
        self.entries.first().map(|e| e.0)
    }

    /// The largest key, in O(1).
    pub fn peek_max(&self) -> Option<K> {
        match self.entries.len() {
            0 => None,
            1 => Some(self.entries[0].0),
            _ => Some(self.entries[1].0),
        }
    }

    /// Insert an entry. Panics if the queue is full (Algorithm 2 always
    /// ejects before inserting into a full queue).
    pub fn push(&mut self, key: K, payload: T) {
        assert!(self.entries.len() < self.cap, "merge queue overfull");
        self.entries.push((key, payload));
        let i = self.entries.len() - 1;
        if i == 0 {
            return;
        }
        if i % 2 == 1 {
            // Completes node i/2: order the pair, then repair whichever side
            // the new entry may have pushed out of its parent's interval.
            if self.entries[i - 1].0 > self.entries[i].0 {
                self.entries.swap(i - 1, i);
            }
            self.sift_up_min(i - 1);
            self.sift_up_max(i);
        } else {
            // New singleton node: it acts as both ends of its own interval.
            self.sift_up_min(i);
            self.sift_up_max(i);
        }
    }

    /// Remove and return the smallest entry.
    pub fn pop_min(&mut self) -> Option<(K, T)> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        if n <= 2 {
            // A single node: slot 0 is the minimum; slot 1 (if any) shifts
            // down into it.
            return Some(self.entries.swap_remove(0));
        }
        let min = self.entries[0];
        let mut x = self.entries.pop().expect("non-empty");
        let n = self.entries.len();
        // Trickle the displaced last entry down the min (even) layer: at
        // each node the smaller child low end moves up into the hole; if the
        // in-hand entry exceeds that child's high end, they swap and the old
        // high end continues down in hand.
        let mut hole = 0usize;
        loop {
            let node = hole / 2;
            let left_lo = 2 * (2 * node + 1);
            let right_lo = 2 * (2 * node + 2);
            if left_lo >= n {
                break;
            }
            let mut c_lo = left_lo;
            if right_lo < n && self.entries[right_lo].0 < self.entries[left_lo].0 {
                c_lo = right_lo;
            }
            if x.0 <= self.entries[c_lo].0 {
                break;
            }
            self.entries[hole] = self.entries[c_lo];
            hole = c_lo;
            if hole + 1 < n && x.0 > self.entries[hole + 1].0 {
                std::mem::swap(&mut x, &mut self.entries[hole + 1]);
            }
        }
        self.entries[hole] = x;
        Some(min)
    }

    /// Remove and return the largest entry.
    pub fn pop_max(&mut self) -> Option<(K, T)> {
        let n = self.entries.len();
        if n <= 2 {
            // The maximum is the last slot (slot 1 of node 0, or the lone
            // entry).
            return self.entries.pop();
        }
        let max = self.entries[1];
        let mut x = self.entries.pop().expect("non-empty");
        let n = self.entries.len();
        // Trickle the displaced last entry down the max (odd) layer; a child
        // node's maximum is its high slot, or its lone entry for a singleton.
        // Symmetric to `pop_min`: the larger child maximum moves up into the
        // hole, and if the in-hand entry is below that child's low end they
        // swap and the old low end continues down in hand.
        let mut hole = 1usize;
        loop {
            let node = hole / 2;
            let (l, r) = (2 * node + 1, 2 * node + 2);
            let l_max = Self::node_max_slot(l, n);
            let r_max = Self::node_max_slot(r, n);
            let c_max = match (l_max, r_max) {
                (None, None) => break,
                (Some(i), None) => i,
                (None, Some(i)) => i,
                (Some(i), Some(j)) => {
                    if self.entries[i].0 >= self.entries[j].0 {
                        i
                    } else {
                        j
                    }
                }
            };
            if x.0 >= self.entries[c_max].0 {
                break;
            }
            self.entries[hole] = self.entries[c_max];
            hole = c_max;
            if hole % 2 == 1 && x.0 < self.entries[hole - 1].0 {
                std::mem::swap(&mut x, &mut self.entries[hole - 1]);
            }
        }
        self.entries[hole] = x;
        Some(max)
    }

    /// The slot index of node `node`'s maximum, if the node exists: its high
    /// slot, or its lone low slot for a trailing singleton.
    fn node_max_slot(node: usize, n: usize) -> Option<usize> {
        let lo = 2 * node;
        if lo >= n {
            None
        } else if lo + 1 < n {
            Some(lo + 1)
        } else {
            Some(lo)
        }
    }

    /// Bubble the entry at (even or singleton) slot `idx` up the min layer.
    fn sift_up_min(&mut self, mut idx: usize) {
        while idx >= 2 {
            let node = idx / 2;
            let parent_lo = 2 * ((node - 1) / 2);
            if self.entries[idx].0 < self.entries[parent_lo].0 {
                self.entries.swap(idx, parent_lo);
                idx = parent_lo;
            } else {
                break;
            }
        }
    }

    /// Bubble the entry at (odd or singleton) slot `idx` up the max layer.
    fn sift_up_max(&mut self, mut idx: usize) {
        while idx >= 2 {
            let node = idx / 2;
            let parent_hi = 2 * ((node - 1) / 2) + 1;
            if self.entries[idx].0 > self.entries[parent_hi].0 {
                self.entries.swap(idx, parent_hi);
                idx = parent_hi;
            } else {
                break;
            }
        }
    }

    /// Check the interval-heap invariants (test oracle).
    #[cfg(test)]
    fn validate(&self) {
        let n = self.entries.len();
        for node in 0.. {
            let lo = 2 * node;
            if lo >= n {
                break;
            }
            let hi = if lo + 1 < n { lo + 1 } else { lo };
            assert!(
                self.entries[lo].0 <= self.entries[hi].0,
                "node {node} interval inverted"
            );
            if node > 0 {
                let p = (node - 1) / 2;
                let p_lo = 2 * p;
                let p_hi = 2 * p + 1;
                assert!(
                    self.entries[p_lo].0 <= self.entries[lo].0,
                    "min-heap violated at node {node}"
                );
                assert!(
                    self.entries[hi].0 <= self.entries[p_hi].0,
                    "max-heap violated at node {node}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::Record;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn min_and_max_of_small_queues() {
        let mut q: FlatMergeQueue<Record, u32> = FlatMergeQueue::with_capacity(8);
        assert_eq!(q.peek_min(), None);
        assert_eq!(q.peek_max(), None);
        assert_eq!(q.pop_min(), None);
        assert_eq!(q.pop_max(), None);
        q.push(rec(5), 0);
        assert_eq!(q.peek_min(), Some(rec(5)));
        assert_eq!(q.peek_max(), Some(rec(5)));
        q.push(rec(3), 1);
        assert_eq!(q.peek_min(), Some(rec(3)));
        assert_eq!(q.peek_max(), Some(rec(5)));
        assert_eq!(q.pop_max(), Some((rec(5), 0)));
        assert_eq!(q.pop_min(), Some((rec(3), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn ascending_drain_matches_sorted_input() {
        let mut q: FlatMergeQueue<Record, usize> = FlatMergeQueue::with_capacity(64);
        let keys = [9u64, 2, 40, 17, 1, 33, 25, 8, 16, 4];
        for (i, &k) in keys.iter().enumerate() {
            q.push(rec(k), i);
            q.validate();
        }
        let mut drained = Vec::new();
        while let Some((r, _)) = q.pop_min() {
            q.validate();
            drained.push(r.key);
        }
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(drained, expect);
    }

    #[test]
    fn descending_drain_matches_reverse_sorted_input() {
        let mut q: FlatMergeQueue<Record, usize> = FlatMergeQueue::with_capacity(64);
        let keys = [9u64, 2, 40, 17, 1, 33, 25, 8, 16, 4];
        for (i, &k) in keys.iter().enumerate() {
            q.push(rec(k), i);
        }
        let mut drained = Vec::new();
        while let Some((r, _)) = q.pop_max() {
            q.validate();
            drained.push(r.key);
        }
        let mut expect = keys.to_vec();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(drained, expect);
    }

    #[test]
    fn payloads_travel_with_their_records() {
        let mut q: FlatMergeQueue<Record, &'static str> = FlatMergeQueue::with_capacity(4);
        q.push(rec(2), "two");
        q.push(rec(1), "one");
        q.push(rec(3), "three");
        assert_eq!(q.pop_min(), Some((rec(1), "one")));
        assert_eq!(q.pop_max(), Some((rec(3), "three")));
        assert_eq!(q.pop_min(), Some((rec(2), "two")));
    }

    #[test]
    #[should_panic(expected = "overfull")]
    fn push_beyond_capacity_panics() {
        let mut q: FlatMergeQueue<Record, u32> = FlatMergeQueue::with_capacity(2);
        q.push(rec(1), 0);
        q.push(rec(2), 0);
        q.push(rec(3), 0);
    }

    /// Differential test against the `BTreeMap` the queue replaced: random
    /// interleavings of push / pop-min / pop-max / peeks over unique records
    /// must agree operation-for-operation.
    #[test]
    fn matches_btreemap_reference_under_random_interleavings() {
        let mut rng = StdRng::seed_from_u64(0xF1A7);
        for case in 0..200 {
            let cap = rng.gen_range(1usize..48);
            let mut q: FlatMergeQueue<Record, u64> = FlatMergeQueue::with_capacity(cap);
            let mut reference: BTreeMap<Record, u64> = BTreeMap::new();
            let mut next_payload = 0u64;
            for step in 0..400 {
                let op = rng.gen_range(0u8..6);
                match op {
                    0 | 1 if reference.len() < cap => {
                        // Unique records: random key, payload tie-break.
                        let r = Record::new(rng.gen_range(0..1000), next_payload);
                        next_payload += 1;
                        if reference.contains_key(&r) {
                            continue;
                        }
                        q.push(r, r.payload);
                        reference.insert(r, r.payload);
                    }
                    2 => {
                        let expect = reference.pop_first();
                        assert_eq!(q.pop_min(), expect, "case {case} step {step} pop_min");
                    }
                    3 => {
                        let expect = reference.pop_last();
                        assert_eq!(q.pop_max(), expect, "case {case} step {step} pop_max");
                    }
                    4 => {
                        assert_eq!(q.peek_min(), reference.first_key_value().map(|(r, _)| *r));
                    }
                    _ => {
                        assert_eq!(q.peek_max(), reference.last_key_value().map(|(r, _)| *r));
                    }
                }
                assert_eq!(q.len(), reference.len());
                q.validate();
            }
        }
    }

    /// The duplicate-record discipline: keys are `(Record, seq)` pairs where
    /// the sequence is assigned at push time, exactly as the mergesort tags
    /// provenance. Heavily duplicated records (keys drawn from a tiny range)
    /// must drain identically to the `BTreeMap` reference and never lose an
    /// entry — the invariant the old record-only ordering violated.
    #[test]
    fn duplicate_records_with_seq_keys_match_btreemap_reference() {
        let mut rng = StdRng::seed_from_u64(0xD0_9E);
        for case in 0..200 {
            let cap = rng.gen_range(1usize..48);
            let mut q: FlatMergeQueue<(Record, u64), u64> = FlatMergeQueue::with_capacity(cap);
            let mut reference: BTreeMap<(Record, u64), u64> = BTreeMap::new();
            let mut next_seq = 0u64;
            let mut pushed = 0u64;
            let mut drained = 0u64;
            for step in 0..400 {
                let op = rng.gen_range(0u8..6);
                match op {
                    0 | 1 if reference.len() < cap => {
                        // Keys from a range of 4: nearly every record is a
                        // duplicate of a live one.
                        let r = Record::new(rng.gen_range(0..4), 0);
                        let key = (r, next_seq);
                        next_seq += 1;
                        pushed += 1;
                        q.push(key, key.1);
                        reference.insert(key, key.1);
                    }
                    2 => {
                        let expect = reference.pop_first();
                        let got = q.pop_min();
                        assert_eq!(got, expect, "case {case} step {step} pop_min");
                        drained += u64::from(got.is_some());
                    }
                    3 => {
                        let expect = reference.pop_last();
                        let got = q.pop_max();
                        assert_eq!(got, expect, "case {case} step {step} pop_max");
                        drained += u64::from(got.is_some());
                    }
                    4 => {
                        assert_eq!(q.peek_min(), reference.first_key_value().map(|(k, _)| *k));
                    }
                    _ => {
                        assert_eq!(q.peek_max(), reference.last_key_value().map(|(k, _)| *k));
                    }
                }
                assert_eq!(q.len(), reference.len());
                q.validate();
            }
            // Length preservation: every pushed entry is still queued or was
            // drained — duplicates are never silently dropped.
            assert_eq!(pushed, drained + q.len() as u64, "case {case} lost entries");
        }
    }
}

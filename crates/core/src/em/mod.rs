//! §4 — sorting on the Asymmetric External Memory machine.
//!
//! All three AEM sorts share one idea: trade a factor k = O(ω) extra reads
//! for a branching factor of l = kM/B (instead of M/B), which divides the
//! number of levels — and therefore the number of ω-cost writes — by
//! Θ(1 + log k / log(M/B)). With k = 1 each algorithm is exactly its classic
//! EM counterpart, which is how the experiments produce their baselines.
//!
//! * [`selection`] — Lemma 4.2: sort n ≤ kM records in ≤ k⌈n/B⌉ reads and
//!   ⌈n/B⌉ writes by k passes of in-memory selection.
//! * [`mergesort`] — Algorithm 2: l-way merge in rounds with an in-memory
//!   priority queue.
//! * [`samplesort`] — §4.2: l-way distribution in k rounds of M/B splitters.
//! * [`buffer_tree`] — §4.3.1–2: the (l/4, l) buffer tree.
//! * [`pq`] — §4.3.3: the priority queue with α/β working sets.
//! * [`heapsort`] — sorting by n inserts + n delete-mins on [`pq`].

pub mod buffer_tree;
pub mod heapsort;
pub mod merge_queue;
pub mod mergesort;
pub mod pq;
pub mod samplesort;
pub mod selection;

pub use heapsort::aem_heapsort;
pub use merge_queue::FlatMergeQueue;
pub use mergesort::{aem_mergesort, mergesort_slack};
pub use pq::AemPriorityQueue;
pub use samplesort::{aem_samplesort, samplesort_slack};
pub use selection::selection_sort;

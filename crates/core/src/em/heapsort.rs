//! §4.3 — AEM heapsort: n inserts + n delete-mins on the buffer-tree
//! priority queue, for a total of O((kn/B)(1 + log_{kM/B} n)) reads and
//! O((n/B)(1 + log_{kM/B} n)) writes, matching the other two sorts.

use super::pq::AemPriorityQueue;
use asym_model::Result;
use em_sim::{EmMachine, EmVec, EmWriter};

/// Sort `input` by streaming it through the §4.3.3 priority queue.
/// Consumes and frees the input.
#[deprecated(
    since = "0.2.0",
    note = "use the unified job API: `asym_core::sort::SortSpec` + the \
            `aem-heapsort` entry of `asym_core::sort::sorters()`"
)]
pub fn aem_heapsort(machine: &EmMachine, input: EmVec, k: usize) -> Result<EmVec> {
    heapsort_run(machine, input, k)
}

/// The heapsort engine behind both the deprecated free function and the
/// `sort::Sorter` adapter (one code path, so the two are cost-identical by
/// construction).
pub(crate) fn heapsort_run(machine: &EmMachine, input: EmVec, k: usize) -> Result<EmVec> {
    let mut pq = AemPriorityQueue::new(machine.clone(), k)?;
    {
        let mut reader = input.reader(machine)?;
        while let Some(r) = reader.next() {
            pq.insert(r)?;
        }
    }
    input.free(machine);
    let mut writer = EmWriter::new(machine)?;
    while let Some(r) = pq.delete_min()? {
        writer.push(r);
    }
    Ok(writer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::pq::pq_slack;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::stats::ceil_log_base;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn machine(m: usize, b: usize, k: usize) -> EmMachine {
        EmMachine::new(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)))
    }

    #[test]
    fn sorts_all_workloads() {
        let em = machine(16, 2, 1);
        for wl in Workload::ALL {
            let input = wl.generate(700, 21);
            let v = EmVec::stage(&em, &input);
            let sorted = aem_heapsort(&em, v, 1).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
        }
    }

    #[test]
    fn k2_sorts_and_writes_match_theorem_shape() {
        let (m, b, k, n) = (16usize, 2usize, 2usize, 5000usize);
        let em = machine(m, b, k);
        let input = Workload::UniformRandom.generate(n, 31);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_heapsort(&em, v, k).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
        let s = em.stats();
        let blocks = n.div_ceil(b) as u64;
        let levels = ceil_log_base((k * m) as f64 / b as f64, n as f64);
        // The buffer tree has larger constants than mergesort (Theorem 4.10);
        // allow a 12x envelope on the O((n/B)(1+levels)) write bound.
        let bound = 12 * blocks * (1 + levels);
        assert!(
            s.block_writes <= bound,
            "writes {} > envelope {bound}",
            s.block_writes
        );
    }

    #[test]
    fn empty_input() {
        let em = machine(16, 2, 1);
        let v = EmVec::stage(&em, &[]);
        let sorted = aem_heapsort(&em, v, 1).unwrap();
        assert!(sorted.is_empty());
    }

    #[test]
    fn tiny_input() {
        let em = machine(16, 2, 1);
        let input = Workload::Reversed.generate(5, 2);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_heapsort(&em, v, 1).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
    }
}

//! §4.3.1–2 — the buffer tree with branching factor l = kM/B.
//!
//! An (a, b)-tree with a = l/4, b = l whose every node carries an unsorted
//! *buffer* of partially-inserted records. Inserts append to the root's
//! buffer (the last partial block stays in memory, per Theorem 4.7); a full
//! buffer (≥ lB = kM records) is *emptied*: its first ≤ lB records are
//! sorted with the Lemma 4.2 selection sort, merged with the sorted suffix
//! left by the most recent parent distribution, and distributed to the
//! children — cascading while any child is full. Full leaves then absorb
//! their buffers and split, with (a, b) splits cascading upward.
//!
//! For the priority queue (§4.3.3) the tree supports two extra operations:
//! emptying every buffer on the root-to-leftmost-leaf path and *deleting the
//! leftmost leaf*, returning its records. Deleting a leaf can underflow its
//! ancestors; the standard (a, b) repair (borrow from or fuse with the right
//! sibling — whose buffer is emptied first so routing stays consistent)
//! restores the invariants. General deletions are out of scope, exactly as
//! in the paper.
//!
//! Node routing tables (≤ l−1 separator records plus child pointers) are
//! held in host memory and their transfers charged explicitly at ⌈c/B⌉
//! blocks per load/store, matching the model's accounting.
//!
//! **Duplicate records.** Records need not be unique: routing is
//! equal-goes-left (a record equal to a separator routes to the child left
//! of it), separators may repeat when a duplicate-heavy run is chopped
//! mid-twin, and the buffer selection sort keys candidates by
//! `(Record, scan index)` so identical records survive multi-pass
//! extraction. Every path is count-preserving.

use asym_model::{ModelError, Record, Result};
use em_sim::{BlockId, EmMachine};
use std::collections::BinaryHeap;

/// A contiguous sequence of records stored in dense blocks (the last block
/// may be partial). `sorted` records whether the run is known to be sorted.
#[derive(Debug, Default)]
pub struct Run {
    blocks: Vec<BlockId>,
    len: usize,
    sorted: bool,
}

impl Run {
    fn empty() -> Run {
        Run::default()
    }

    /// Number of records in the run.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn free(self, machine: &EmMachine) {
        for b in self.blocks {
            machine.release_block(b).expect("live run block");
        }
    }

    /// Charged sequential read of all records (one reused load buffer).
    fn read_all(&self, machine: &EmMachine) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = Vec::with_capacity(machine.b());
        for &b in &self.blocks {
            machine.read_block_into(b, &mut buf)?;
            out.extend_from_slice(&buf);
        }
        out.truncate(self.len);
        Ok(out)
    }
}

/// A node's buffer: a list of appended runs.
#[derive(Debug, Default)]
struct Buffer {
    runs: Vec<Run>,
    total: usize,
}

impl Buffer {
    fn push_run(&mut self, run: Run) {
        if run.len == 0 {
            return;
        }
        self.total += run.len;
        self.runs.push(run);
    }

    fn take(&mut self) -> Vec<Run> {
        self.total = 0;
        std::mem::take(&mut self.runs)
    }
}

type NodeId = usize;

#[derive(Debug)]
enum NodeKind {
    Internal {
        children: Vec<NodeId>,
        /// `seps[i]` separates `children[i]` (keys ≤ sep) from
        /// `children[i+1]`; length = children.len() − 1.
        seps: Vec<Record>,
    },
    Leaf {
        /// Sorted resident records.
        data: Run,
    },
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    buffer: Buffer,
}

/// The AEM buffer tree.
pub struct BufferTree {
    machine: EmMachine,
    /// Branching factor l = kM/B.
    l: usize,
    /// Buffer-full and leaf-max threshold lB = kM records.
    cap: usize,
    nodes: Vec<Option<Node>>,
    free_ids: Vec<NodeId>,
    root: NodeId,
    len: usize,
    /// In-memory tail of the root buffer (≤ B records; leased).
    root_tail: Vec<Record>,
}

impl BufferTree {
    /// An empty tree on `machine` with write-saving factor `k`. Requires
    /// kM/B ≥ 8 so that a = l/4 ≥ 2.
    pub fn new(machine: EmMachine, k: usize) -> Result<Self> {
        let l = k * machine.m() / machine.b();
        if l < 8 {
            return Err(ModelError::Invariant(format!(
                "buffer tree needs branching factor kM/B >= 8, got {l}"
            )));
        }
        let cap = l * machine.b(); // = kM
        let root_node = Node {
            kind: NodeKind::Leaf { data: Run::empty() },
            buffer: Buffer::default(),
        };
        let root_tail = Vec::with_capacity(machine.b());
        Ok(Self {
            machine,
            l,
            cap,
            nodes: vec![Some(root_node)],
            free_ids: Vec::new(),
            root: 0,
            len: 0,
            root_tail,
        })
    }

    /// Total records stored (buffered or resident).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer-full / leaf-capacity threshold lB = kM.
    pub fn capacity_threshold(&self) -> usize {
        self.cap
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    fn alloc_node(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free_ids.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn free_node(&mut self, id: NodeId) {
        self.nodes[id] = None;
        self.free_ids.push(id);
    }

    /// Charge the model cost of loading or storing a node's routing table.
    fn charge_routing(&self, children: usize, write: bool) {
        let blocks = children.div_ceil(self.machine.b()) as u64;
        if write {
            self.machine.charge_writes(blocks);
        } else {
            self.machine.charge_reads(blocks);
        }
    }

    // ---- insertion ------------------------------------------------------------

    /// Insert a record: append to the root buffer; empty cascades when full.
    pub fn insert(&mut self, r: Record) -> Result<()> {
        self.len += 1;
        self.root_tail.push(r);
        if self.root_tail.len() == self.machine.b() {
            self.flush_root_tail()?;
            if self.node(self.root).buffer.total >= self.cap {
                self.empty_full_cascade(self.root)?;
            }
        }
        Ok(())
    }

    /// Write the in-memory root-buffer tail out as a block.
    fn flush_root_tail(&mut self) -> Result<()> {
        if self.root_tail.is_empty() {
            return Ok(());
        }
        let len = self.root_tail.len();
        let sorted = self.root_tail.windows(2).all(|w| w[0] <= w[1]);
        let block = self.machine.append_block_from(&self.root_tail);
        self.root_tail.clear();
        let run = Run {
            blocks: vec![block],
            len,
            sorted,
        };
        let root = self.root;
        self.node_mut(root).buffer.push_run(run);
        Ok(())
    }

    /// Empty `start`'s buffer and cascade through all full descendants
    /// (phase 1), then absorb and split all full leaves (phase 2).
    fn empty_full_cascade(&mut self, start: NodeId) -> Result<()> {
        let mut full_internal = vec![start];
        let mut full_leaves: Vec<NodeId> = Vec::new();
        // A leaf passed directly (start may be the root leaf).
        if matches!(self.node(start).kind, NodeKind::Leaf { .. }) {
            full_internal.clear();
            full_leaves.push(start);
        }
        while let Some(x) = full_internal.pop() {
            self.empty_internal(x, &mut full_internal, &mut full_leaves)?;
        }
        // Phase 2: leaves. Absorbing a leaf can split ancestors but never
        // creates new full buffers (splits move resident data, not buffers).
        while let Some(leaf) = full_leaves.pop() {
            self.absorb_leaf_buffer(leaf)?;
        }
        Ok(())
    }

    /// Sort and distribute one internal node's buffer to its children.
    fn empty_internal(
        &mut self,
        x: NodeId,
        full_internal: &mut Vec<NodeId>,
        full_leaves: &mut Vec<NodeId>,
    ) -> Result<()> {
        debug_assert!(matches!(self.node(x).kind, NodeKind::Internal { .. }));
        let runs = self.node_mut(x).buffer.take();
        if runs.is_empty() {
            return Ok(());
        }
        let merged = self.sort_runs(runs)?;
        // Load the routing table.
        let (children, seps) = match &self.node(x).kind {
            NodeKind::Internal { children, seps } => (children.clone(), seps.clone()),
            NodeKind::Leaf { .. } => unreachable!(),
        };
        self.charge_routing(children.len(), false);
        // Distribute, merging the (≤ 2) sorted runs on the fly: records
        // ≤ seps[i] go to children[i].
        let mut per_child: Vec<Run> = Vec::with_capacity(children.len());
        let mut child_idx = 0usize;
        let mut cur = RunWriter::new(&self.machine);
        let mut readers: Vec<RunsReader> = merged
            .iter()
            .map(|r| RunsReader::new(&self.machine, std::slice::from_ref(r)))
            .collect();
        let mut heads: Vec<Option<Record>> = Vec::with_capacity(readers.len());
        for rd in &mut readers {
            heads.push(rd.next()?);
        }
        loop {
            let mut best: Option<(usize, Record)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(r) = h {
                    if best.is_none_or(|(_, b)| *r < b) {
                        best = Some((i, *r));
                    }
                }
            }
            let (src, r) = match best {
                None => break,
                Some(x) => x,
            };
            heads[src] = readers[src].next()?;
            while child_idx < seps.len() && r > seps[child_idx] {
                per_child.push(cur.finish_on(&self.machine, true));
                cur = RunWriter::new(&self.machine);
                child_idx += 1;
            }
            cur.push(&self.machine, r);
        }
        per_child.push(cur.finish_on(&self.machine, true));
        while per_child.len() < children.len() {
            per_child.push(Run::empty());
        }
        drop(readers);
        for run in merged {
            run.free(&self.machine);
        }
        // Append each child's new run and enqueue newly full children.
        for (i, run) in per_child.into_iter().enumerate() {
            let child = children[i];
            self.node_mut(child).buffer.push_run(run);
            if self.node(child).buffer.total >= self.cap {
                match self.node(child).kind {
                    NodeKind::Internal { .. } => {
                        if !full_internal.contains(&child) {
                            full_internal.push(child);
                        }
                    }
                    NodeKind::Leaf { .. } => {
                        if !full_leaves.contains(&child) {
                            full_leaves.push(child);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Turn a buffer's runs into one or two sorted runs: the trailing sorted
    /// run (left by the most recent distribution) is kept as-is; everything
    /// before it is selection-sorted (Lemma 4.2).
    fn sort_runs(&mut self, mut runs: Vec<Run>) -> Result<Vec<Run>> {
        let suffix = match runs.last() {
            Some(r) if r.sorted && runs.len() > 1 => runs.pop(),
            Some(r) if r.sorted && runs.len() == 1 => {
                // A single sorted run needs no sorting at all.
                return Ok(vec![runs.pop().unwrap()]);
            }
            _ => None,
        };
        let prefix_sorted = self.selection_sort_runs(&runs)?;
        for r in runs {
            r.free(&self.machine);
        }
        let mut out = vec![prefix_sorted];
        if let Some(s) = suffix {
            out.push(s);
        }
        Ok(out)
    }

    /// Lemma 4.2 selection sort over a set of runs (⌈n/M⌉ scan passes, one
    /// write pass). Returns a single sorted run.
    fn selection_sort_runs(&self, runs: &[Run]) -> Result<Run> {
        let m = self.machine.m();
        let n: usize = runs.iter().map(Run::len).sum();
        let _set_lease = self.machine.lease(m)?;
        let mut writer = RunWriter::new(&self.machine);
        // Candidates are keyed `(Record, scan index)`: the scan order over
        // the runs is identical every pass, so the index is a stable
        // tie-break that keeps duplicate records distinguishable (raw-record
        // comparisons would skip every twin of a written record and spin).
        let mut last_written: Option<(Record, usize)> = None;
        let mut remaining = n;
        while remaining > 0 {
            let mut heap: BinaryHeap<(Record, usize)> = BinaryHeap::with_capacity(m + 1);
            let mut reader = RunsReader::new(&self.machine, runs);
            let mut idx = 0usize;
            while let Some(r) = reader.next()? {
                let cand = (r, idx);
                idx += 1;
                if let Some(lw) = last_written {
                    if cand <= lw {
                        continue;
                    }
                }
                if heap.len() < m {
                    heap.push(cand);
                } else if cand < *heap.peek().expect("non-empty") {
                    heap.pop();
                    heap.push(cand);
                }
            }
            let batch = heap.into_sorted_vec();
            debug_assert!(!batch.is_empty());
            last_written = batch.last().copied();
            remaining -= batch.len();
            for (r, _) in batch {
                writer.push(&self.machine, r);
            }
        }
        Ok(writer.finish_on(&self.machine, true))
    }

    /// Phase 2 for one leaf: sort its buffer, merge into the resident data,
    /// split if over capacity, and cascade (a,b) splits upward.
    fn absorb_leaf_buffer(&mut self, leaf: NodeId) -> Result<()> {
        let runs = self.node_mut(leaf).buffer.take();
        if runs.is_empty() {
            return Ok(());
        }
        let sorted = self.sort_runs(runs)?;
        // Merge the (≤2) sorted buffer runs with the resident data.
        let data = match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf { data } => std::mem::take(data),
            NodeKind::Internal { .. } => unreachable!("phase 2 operates on leaves"),
        };
        let mut streams = sorted;
        streams.push(data);
        let merged = self.merge_runs(&streams)?;
        for s in streams {
            s.free(&self.machine);
        }
        if merged.len <= self.cap {
            match &mut self.node_mut(leaf).kind {
                NodeKind::Leaf { data } => *data = merged,
                NodeKind::Internal { .. } => unreachable!(),
            }
            return Ok(());
        }
        self.split_leaf(leaf, merged)
    }

    /// K-way merge of sorted runs into one run (streams one block per run;
    /// run counts here are ≤ 3, well within memory).
    fn merge_runs(&self, runs: &[Run]) -> Result<Run> {
        let _lease = self.machine.lease(runs.len() * self.machine.b())?;
        let mut readers: Vec<RunsReader> = runs
            .iter()
            .map(|r| RunsReader::new(&self.machine, std::slice::from_ref(r)))
            .collect();
        let mut heads: Vec<Option<Record>> = Vec::with_capacity(readers.len());
        for r in &mut readers {
            heads.push(r.next()?);
        }
        let mut writer = RunWriter::new(&self.machine);
        loop {
            let mut best: Option<(usize, Record)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(r) = h {
                    if best.is_none_or(|(_, b)| *r < b) {
                        best = Some((i, *r));
                    }
                }
            }
            match best {
                None => break,
                Some((i, r)) => {
                    writer.push(&self.machine, r);
                    heads[i] = readers[i].next()?;
                }
            }
        }
        Ok(writer.finish_on(&self.machine, true))
    }

    /// Split an over-full leaf into pieces of ≈ lB/2 records and insert the
    /// new leaves into the parent chain, splitting internal nodes as needed.
    fn split_leaf(&mut self, leaf: NodeId, merged: Run) -> Result<()> {
        let pieces = self.chop_run(merged)?;
        debug_assert!(pieces.len() >= 2);
        // Collect (separator, node) for the replacement leaves. The
        // separator after piece i is its largest record.
        let mut new_leaves: Vec<(Record, NodeId)> = Vec::with_capacity(pieces.len());
        for (max_rec, run) in pieces {
            let id = self.alloc_node(Node {
                kind: NodeKind::Leaf { data: run },
                buffer: Buffer::default(),
            });
            new_leaves.push((max_rec, id));
        }
        // Reuse the original leaf id for the first piece so the parent's
        // child pointer stays valid.
        let (_, first_new) = new_leaves[0];
        let first_node = self.nodes[first_new].take().expect("fresh node");
        self.free_ids.push(first_new);
        *self.node_mut(leaf) = first_node;
        new_leaves[0].1 = leaf;

        self.replace_in_parent(leaf, new_leaves)
    }

    /// Chop a sorted run into pieces of between lB/4 and lB records,
    /// returning (max record, run) per piece. Costs one read+write pass.
    fn chop_run(&self, merged: Run) -> Result<Vec<(Record, Run)>> {
        let total = merged.len;
        let half = (self.cap / 2).max(1);
        let num = total.div_ceil(half).max(2);
        let base = total / num;
        let extra = total % num;
        let mut out = Vec::with_capacity(num);
        let mut reader = RunsReader::new(&self.machine, std::slice::from_ref(&merged));
        for i in 0..num {
            let size = base + usize::from(i < extra);
            let mut w = RunWriter::new(&self.machine);
            let mut last = None;
            for _ in 0..size {
                let r = reader.next()?.expect("size accounting");
                last = Some(r);
                w.push(&self.machine, r);
            }
            out.push((
                last.expect("non-empty piece"),
                w.finish_on(&self.machine, true),
            ));
        }
        drop(reader);
        merged.free(&self.machine);
        Ok(out)
    }

    /// Replace child `old` of its parent with `replacements` (in key order),
    /// splitting ancestors whose child counts exceed l.
    fn replace_in_parent(
        &mut self,
        old: NodeId,
        replacements: Vec<(Record, NodeId)>,
    ) -> Result<()> {
        let parent = self.find_parent(self.root, old);
        match parent {
            None => {
                // `old` is the root: build a new internal root.
                let children: Vec<NodeId> = replacements.iter().map(|&(_, id)| id).collect();
                let seps: Vec<Record> = replacements[..replacements.len() - 1]
                    .iter()
                    .map(|&(sep, _)| sep)
                    .collect();
                self.charge_routing(children.len(), true);
                let new_root = self.alloc_node(Node {
                    kind: NodeKind::Internal { children, seps },
                    buffer: Buffer::default(),
                });
                self.root = new_root;
                self.maybe_split_internal(new_root)
            }
            Some(p) => {
                let (children, seps) = match &mut self.node_mut(p).kind {
                    NodeKind::Internal { children, seps } => (children, seps),
                    NodeKind::Leaf { .. } => unreachable!("parent must be internal"),
                };
                let pos = children.iter().position(|&c| c == old).expect("child");
                children.splice(pos..=pos, replacements.iter().map(|&(_, id)| id));
                // New separators go between the replacement pieces.
                let new_seps: Vec<Record> = replacements[..replacements.len() - 1]
                    .iter()
                    .map(|&(sep, _)| sep)
                    .collect();
                seps.splice(pos..pos, new_seps);
                let count = children.len();
                self.charge_routing(count, true);
                self.maybe_split_internal(p)?;
                Ok(())
            }
        }
    }

    /// Split `x` while it has more than l children, cascading upward.
    fn maybe_split_internal(&mut self, x: NodeId) -> Result<()> {
        let count = match &self.node(x).kind {
            NodeKind::Internal { children, .. } => children.len(),
            NodeKind::Leaf { .. } => return Ok(()),
        };
        if count <= self.l {
            return Ok(());
        }
        debug_assert!(
            self.node(x).buffer.total == 0,
            "splitting nodes have empty buffers in phase 2"
        );
        let (mut children, mut seps) = match &mut self.node_mut(x).kind {
            NodeKind::Internal { children, seps } => {
                (std::mem::take(children), std::mem::take(seps))
            }
            NodeKind::Leaf { .. } => unreachable!(),
        };
        let half = children.len() / 2;
        let right_children = children.split_off(half);
        let mid_sep = seps[half - 1];
        let right_seps = seps.split_off(half);
        seps.pop(); // drop mid separator; it moves to the parent
        self.charge_routing(children.len(), true);
        self.charge_routing(right_children.len(), true);
        match &mut self.node_mut(x).kind {
            NodeKind::Internal {
                children: c,
                seps: s,
            } => {
                *c = children;
                *s = seps;
            }
            NodeKind::Leaf { .. } => unreachable!(),
        }
        let right = self.alloc_node(Node {
            kind: NodeKind::Internal {
                children: right_children,
                seps: right_seps,
            },
            buffer: Buffer::default(),
        });
        self.replace_with_pair(x, mid_sep, right)
    }

    /// After splitting `x`, register `right` as its new sibling under the
    /// parent (or grow a new root).
    fn replace_with_pair(&mut self, x: NodeId, sep: Record, right: NodeId) -> Result<()> {
        match self.find_parent(self.root, x) {
            None => {
                let new_root = self.alloc_node(Node {
                    kind: NodeKind::Internal {
                        children: vec![x, right],
                        seps: vec![sep],
                    },
                    buffer: Buffer::default(),
                });
                self.charge_routing(2, true);
                self.root = new_root;
                Ok(())
            }
            Some(p) => {
                match &mut self.node_mut(p).kind {
                    NodeKind::Internal { children, seps } => {
                        let pos = children.iter().position(|&c| c == x).expect("child");
                        children.insert(pos + 1, right);
                        seps.insert(pos, sep);
                    }
                    NodeKind::Leaf { .. } => unreachable!(),
                }
                let count = match &self.node(p).kind {
                    NodeKind::Internal { children, .. } => children.len(),
                    NodeKind::Leaf { .. } => unreachable!(),
                };
                self.charge_routing(count, true);
                self.maybe_split_internal(p)
            }
        }
    }

    /// Parent lookup by descent. The model keeps parent pointers as free
    /// bookkeeping; the host-side search is uncharged.
    fn find_parent(&self, cur: NodeId, target: NodeId) -> Option<NodeId> {
        if cur == target {
            return None;
        }
        match &self.node(cur).kind {
            NodeKind::Leaf { .. } => None,
            NodeKind::Internal { children, .. } => {
                for &c in children {
                    if c == target {
                        return Some(cur);
                    }
                    if let Some(p) = self.find_parent(c, target) {
                        return Some(p);
                    }
                }
                None
            }
        }
    }

    // ---- priority-queue support -------------------------------------------------

    /// Empty every buffer on the root-to-leftmost-leaf path (processing any
    /// cascaded full nodes too), then remove the leftmost leaf and return its
    /// sorted records. Returns None when the tree stores no records.
    pub fn pop_leftmost_leaf(&mut self) -> Result<Option<Vec<Record>>> {
        if self.len == 0 {
            // Reset any stray structure (root may be a bare leaf already).
            return Ok(None);
        }
        self.flush_root_tail()?;
        // Empty buffers down the left spine. Splits may restructure the
        // spine, so we re-descend from the root each step.
        loop {
            let mut x = self.root;
            // Empty internal buffers top-down along the spine.
            loop {
                if self.node(x).buffer.total > 0 {
                    self.empty_full_cascade(x)?;
                    break; // restructuring possible: re-descend
                }
                match &self.node(x).kind {
                    NodeKind::Leaf { .. } => break,
                    NodeKind::Internal { children, .. } => x = children[0],
                }
            }
            // Done when the whole spine (including the leaf) has no buffers.
            let mut y = self.root;
            let clean = loop {
                if self.node(y).buffer.total > 0 {
                    break false;
                }
                match &self.node(y).kind {
                    NodeKind::Leaf { .. } => break true,
                    NodeKind::Internal { children, .. } => y = children[0],
                }
            };
            if clean {
                break;
            }
        }
        // The leftmost leaf now holds the globally smallest resident records.
        let mut leaf = self.root;
        while let NodeKind::Internal { children, .. } = &self.node(leaf).kind {
            leaf = children[0];
        }
        let data = match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf { data } => std::mem::take(data),
            NodeKind::Internal { .. } => unreachable!(),
        };
        let records = data.read_all(&self.machine)?;
        data.free(&self.machine);
        self.len -= records.len();
        self.remove_leftmost_leaf(leaf)?;
        debug_assert!(!records.is_empty() || self.len == 0);
        Ok(Some(records))
    }

    /// Detach the (now empty) leftmost leaf and repair underflow.
    fn remove_leftmost_leaf(&mut self, leaf: NodeId) -> Result<()> {
        if leaf == self.root {
            // Single-leaf tree: keep the (empty) leaf as root.
            return Ok(());
        }
        let parent = self.find_parent(self.root, leaf).expect("non-root leaf");
        match &mut self.node_mut(parent).kind {
            NodeKind::Internal { children, seps } => {
                debug_assert_eq!(children[0], leaf);
                children.remove(0);
                if !seps.is_empty() {
                    seps.remove(0);
                }
            }
            NodeKind::Leaf { .. } => unreachable!(),
        }
        self.free_node(leaf);
        self.charge_routing(self.child_count(parent), true);
        self.repair_underflow(parent)
    }

    fn child_count(&self, x: NodeId) -> usize {
        match &self.node(x).kind {
            NodeKind::Internal { children, .. } => children.len(),
            NodeKind::Leaf { .. } => 0,
        }
    }

    /// Restore the (a,b) minimum-degree invariant for `x` (on the left
    /// spine) by borrowing from or fusing with its right sibling.
    fn repair_underflow(&mut self, x: NodeId) -> Result<()> {
        let a = self.l / 4;
        if self.child_count(x) >= a {
            return Ok(());
        }
        if x == self.root {
            // Root is exempt from the minimum; collapse single-child roots.
            if self.child_count(x) == 1 {
                let child = match &self.node(x).kind {
                    NodeKind::Internal { children, .. } => children[0],
                    NodeKind::Leaf { .. } => return Ok(()),
                };
                // The root buffer must migrate to the new root.
                let buf = self.node_mut(x).buffer.take();
                for run in buf {
                    self.node_mut(child).buffer.push_run(run);
                }
                self.free_node(x);
                self.root = child;
            }
            return Ok(());
        }
        let parent = self.find_parent(self.root, x).expect("non-root");
        let (sibling, sep) = match &self.node(parent).kind {
            NodeKind::Internal { children, seps } => {
                let pos = children.iter().position(|&c| c == x).expect("child");
                debug_assert_eq!(pos, 0, "underflow only on the left spine");
                (children[1], seps[0])
            }
            NodeKind::Leaf { .. } => unreachable!(),
        };
        // Empty the sibling's buffer first so no buffered record's routing
        // changes under it.
        if self.node(sibling).buffer.total > 0 {
            self.empty_full_cascade(sibling)?;
        }
        if self.child_count(sibling) > a {
            // Borrow the sibling's first child.
            let (moved, new_sep) = match &mut self.node_mut(sibling).kind {
                NodeKind::Internal { children, seps } => (children.remove(0), seps.remove(0)),
                NodeKind::Leaf { .. } => unreachable!(),
            };
            match &mut self.node_mut(x).kind {
                NodeKind::Internal { children, seps } => {
                    children.push(moved);
                    seps.push(sep);
                }
                NodeKind::Leaf { .. } => unreachable!(),
            }
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal { seps, .. } => seps[0] = new_sep,
                NodeKind::Leaf { .. } => unreachable!(),
            }
            self.charge_routing(self.child_count(x), true);
            self.charge_routing(self.child_count(sibling), true);
            Ok(())
        } else {
            // Fuse x with the sibling (≤ a-1 + a ≤ l/2 children).
            let (sib_children, sib_seps) = match &mut self.node_mut(sibling).kind {
                NodeKind::Internal { children, seps } => {
                    (std::mem::take(children), std::mem::take(seps))
                }
                NodeKind::Leaf { .. } => unreachable!(),
            };
            match &mut self.node_mut(x).kind {
                NodeKind::Internal { children, seps } => {
                    seps.push(sep);
                    seps.extend(sib_seps);
                    children.extend(sib_children);
                }
                NodeKind::Leaf { .. } => unreachable!(),
            }
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal { children, seps } => {
                    children.remove(1);
                    seps.remove(0);
                }
                NodeKind::Leaf { .. } => unreachable!(),
            }
            self.free_node(sibling);
            self.charge_routing(self.child_count(x), true);
            self.charge_routing(self.child_count(parent).max(1), true);
            self.repair_underflow(parent)
        }
    }

    // ---- test oracles -----------------------------------------------------------

    /// Uncharged: collect every record in the tree (buffers + leaves),
    /// unsorted. Test oracle only.
    pub fn collect_all_uncharged(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.root_tail);
        self.collect_rec(self.root, &mut out);
        out
    }

    fn collect_rec(&self, x: NodeId, out: &mut Vec<Record>) {
        let node = self.node(x);
        for run in &node.buffer.runs {
            for &b in &run.blocks {
                let blk = self.machine.peek_block(b).expect("live block");
                out.extend_from_slice(&blk);
            }
        }
        // Runs store exact lengths; partial blocks are exact by construction.
        match &node.kind {
            NodeKind::Leaf { data } => {
                for &b in &data.blocks {
                    out.extend_from_slice(&self.machine.peek_block(b).expect("live block"));
                }
            }
            NodeKind::Internal { children, .. } => {
                for &c in children {
                    self.collect_rec(c, out);
                }
            }
        }
    }

    /// Uncharged structural invariant check (test oracle): (a,b) degrees off
    /// the left spine, separator ordering, leaf data sortedness and sizes.
    pub fn validate(&self) {
        self.validate_rec(self.root, None, None, true, true);
    }

    fn validate_rec(
        &self,
        x: NodeId,
        lo: Option<Record>,
        hi: Option<Record>,
        is_root: bool,
        on_left_spine: bool,
    ) {
        let node = self.node(x);
        match &node.kind {
            NodeKind::Leaf { data } => {
                if !is_root {
                    assert!(
                        data.len <= self.cap,
                        "leaf overflow: {} > {}",
                        data.len,
                        self.cap
                    );
                }
                let mut recs: Vec<Record> = Vec::with_capacity(data.len);
                for &b in &data.blocks {
                    recs.extend_from_slice(&self.machine.peek_block(b).expect("live"));
                }
                assert!(recs.windows(2).all(|w| w[0] <= w[1]), "leaf unsorted");
                for r in &recs {
                    if let Some(lo) = lo {
                        // `>=`, not `>`: duplicate-heavy leaves can split
                        // mid-twin, leaving copies of the separator record on
                        // both sides (routing still sends *new* equal records
                        // to the leftmost such child, which is in range).
                        assert!(*r >= lo, "leaf record below separator range");
                    }
                    if let Some(hi) = hi {
                        assert!(*r <= hi, "leaf record above separator range");
                    }
                }
            }
            NodeKind::Internal { children, seps } => {
                assert_eq!(seps.len() + 1, children.len(), "separator count");
                assert!(children.len() <= self.l, "node too wide");
                if !is_root && !on_left_spine {
                    assert!(
                        children.len() >= self.l / 4,
                        "internal underflow off the spine: {} < {}",
                        children.len(),
                        self.l / 4
                    );
                }
                // Weak inequality: chopping a duplicate-heavy run can give
                // adjacent pieces the same max record, hence equal separators
                // (the child between two equal separators simply owns no new
                // routed records).
                assert!(seps.windows(2).all(|w| w[0] <= w[1]), "separators unsorted");
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(seps[i - 1]) };
                    let chi = if i == children.len() - 1 {
                        hi
                    } else {
                        Some(seps[i])
                    };
                    self.validate_rec(c, clo, chi, false, on_left_spine && i == 0);
                }
            }
        }
    }
}

// ---- streaming helpers ----------------------------------------------------------

/// Sequential charged reader over a list of runs.
struct RunsReader<'a> {
    machine: EmMachine,
    runs: &'a [Run],
    run_idx: usize,
    block_idx: usize,
    buf: Vec<Record>,
    buf_pos: usize,
    remaining_in_run: usize,
}

impl<'a> RunsReader<'a> {
    fn new(machine: &EmMachine, runs: &'a [Run]) -> Self {
        Self {
            machine: machine.clone(),
            runs,
            run_idx: 0,
            block_idx: 0,
            buf: Vec::with_capacity(machine.b()),
            buf_pos: 0,
            remaining_in_run: runs.first().map_or(0, Run::len),
        }
    }

    fn next(&mut self) -> Result<Option<Record>> {
        loop {
            if self.remaining_in_run == 0 {
                self.run_idx += 1;
                if self.run_idx >= self.runs.len() {
                    return Ok(None);
                }
                self.block_idx = 0;
                self.buf.clear();
                self.buf_pos = 0;
                self.remaining_in_run = self.runs[self.run_idx].len;
                continue;
            }
            if self.buf_pos == self.buf.len() {
                let run = &self.runs[self.run_idx];
                self.machine
                    .read_block_into(run.blocks[self.block_idx], &mut self.buf)?;
                self.block_idx += 1;
                self.buf_pos = 0;
            }
            let r = self.buf[self.buf_pos];
            self.buf_pos += 1;
            self.remaining_in_run -= 1;
            return Ok(Some(r));
        }
    }
}

/// Buffered run writer (one block write per filled block).
struct RunWriter {
    blocks: Vec<BlockId>,
    buf: Vec<Record>,
    len: usize,
    b: usize,
}

impl RunWriter {
    fn new(machine: &EmMachine) -> Self {
        Self {
            blocks: Vec::new(),
            buf: Vec::with_capacity(machine.b()),
            len: 0,
            b: machine.b(),
        }
    }

    fn push(&mut self, machine: &EmMachine, r: Record) {
        self.buf.push(r);
        self.len += 1;
        if self.buf.len() == self.b {
            self.blocks.push(machine.append_block_from(&self.buf));
            self.buf.clear();
        }
    }

    fn finish_on(mut self, machine: &EmMachine, sorted: bool) -> Run {
        if !self.buf.is_empty() {
            self.blocks.push(machine.append_block_from(&self.buf));
        }
        Run {
            blocks: std::mem::take(&mut self.blocks),
            len: self.len,
            sorted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn machine(m: usize, b: usize, k: usize) -> EmMachine {
        // Generous slack: selection-sort set (M), streams, routing tables.
        let slack = m + 8 * b + k * m / b;
        EmMachine::new(EmConfig::new(m, b, 8).with_slack(slack))
    }

    #[test]
    fn inserts_are_conserved() {
        let em = machine(16, 2, 1);
        let mut t = BufferTree::new(em.clone(), 1).unwrap();
        let input = Workload::UniformRandom.generate(500, 3);
        for &r in &input {
            t.insert(r).unwrap();
        }
        assert_eq!(t.len(), 500);
        let mut all = t.collect_all_uncharged();
        all.sort();
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(all, expect);
        t.validate();
    }

    #[test]
    fn pop_leftmost_returns_sorted_prefixes() {
        let em = machine(16, 2, 1);
        let mut t = BufferTree::new(em.clone(), 1).unwrap();
        let input = Workload::UniformRandom.generate(800, 7);
        for &r in &input {
            t.insert(r).unwrap();
        }
        let mut expect = input.clone();
        expect.sort();
        let mut drained: Vec<Record> = Vec::new();
        while let Some(batch) = t.pop_leftmost_leaf().unwrap() {
            assert!(batch.windows(2).all(|w| w[0] <= w[1]), "batch sorted");
            drained.extend(batch);
            t.validate();
        }
        assert_eq!(drained, expect, "leaves must come off in global order");
        assert!(t.is_empty());
    }

    #[test]
    fn interleaved_inserts_and_pops() {
        let em = machine(16, 2, 1);
        let mut t = BufferTree::new(em.clone(), 1).unwrap();
        let input = Workload::UniformRandom.generate(1200, 9);
        let (first, second) = input.split_at(700);
        for &r in first {
            t.insert(r).unwrap();
        }
        let batch1 = t.pop_leftmost_leaf().unwrap().unwrap();
        let max1 = *batch1.last().unwrap();
        for &r in second {
            // Only insert records above the already-extracted range (the
            // tree is used below a working set that guarantees this).
            if r > max1 {
                t.insert(r).unwrap();
            }
        }
        let mut drained = batch1.clone();
        while let Some(batch) = t.pop_leftmost_leaf().unwrap() {
            drained.extend(batch);
        }
        let mut expect: Vec<Record> = first
            .iter()
            .copied()
            .chain(second.iter().copied().filter(|r| *r > max1))
            .collect();
        expect.sort();
        assert_eq!(drained, expect);
    }

    #[test]
    fn duplicate_heavy_streams_are_conserved() {
        // All-identical and 90%-duplicate streams: leaf splits produce equal
        // separators and the selection sort sees nothing but twins — the old
        // record-keyed disciplines lost records or spun forever here.
        let identical = vec![Record::new(5, 5); 900];
        let few_distinct: Vec<Record> = (0..900).map(|i| Record::new(i % 9, 0)).collect();
        for input in [identical, few_distinct] {
            let em = machine(16, 2, 1);
            let mut t = BufferTree::new(em.clone(), 1).unwrap();
            for &r in &input {
                t.insert(r).unwrap();
            }
            assert_eq!(t.len(), input.len());
            t.validate();
            let mut drained: Vec<Record> = Vec::new();
            while let Some(batch) = t.pop_leftmost_leaf().unwrap() {
                assert!(batch.windows(2).all(|w| w[0] <= w[1]), "batch sorted");
                drained.extend(batch);
                t.validate();
            }
            let mut expect = input.clone();
            expect.sort();
            assert_eq!(drained, expect, "records lost or reordered");
            assert!(t.is_empty());
        }
    }

    #[test]
    fn larger_k_reduces_write_blocks() {
        let input = Workload::UniformRandom.generate(6000, 5);
        let writes = |k: usize| {
            let em = machine(16, 2, k);
            let mut t = BufferTree::new(em.clone(), k).unwrap();
            for &r in &input {
                t.insert(r).unwrap();
            }
            while t.pop_leftmost_leaf().unwrap().is_some() {}
            em.stats().block_writes
        };
        let w1 = writes(1);
        let w4 = writes(4);
        assert!(
            w4 < w1,
            "k=4 buffer tree should write less than k=1: {w4} vs {w1}"
        );
    }

    #[test]
    fn rejects_tiny_branching() {
        let em = EmMachine::new(EmConfig::new(8, 4, 2).with_slack(64));
        assert!(BufferTree::new(em, 1).is_err()); // l = 2 < 8
    }

    #[test]
    fn empty_tree_pops_none() {
        let em = machine(16, 2, 1);
        let mut t = BufferTree::new(em, 1).unwrap();
        assert!(t.pop_leftmost_leaf().unwrap().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn sorted_input_stays_valid() {
        let em = machine(16, 2, 1);
        let mut t = BufferTree::new(em.clone(), 1).unwrap();
        for &r in &Workload::Sorted.generate(600, 2) {
            t.insert(r).unwrap();
        }
        t.validate();
        let mut prev: Option<Record> = None;
        while let Some(batch) = t.pop_leftmost_leaf().unwrap() {
            if let (Some(p), Some(f)) = (prev, batch.first()) {
                assert!(p < *f, "batches must be globally ordered");
            }
            prev = batch.last().copied();
        }
    }
}

//! Algorithm 2 — the AEM l = kM/B-way mergesort.
//!
//! Each merge proceeds in rounds. A round's first phase scans the current
//! block of every input run, inserting into an in-memory priority queue of
//! capacity M every record that is not yet output (`> lastV`) and small
//! enough to matter (`< Q.max`). The second phase drains the queue to the
//! output; whenever the drained record was the last of its block, the run's
//! pointer advances and the next block is processed immediately. Every round
//! outputs ≥ M records, so phase-1 re-reads cost k·n/B reads in total while
//! every block is written exactly once per level — the read/write trade at
//! the heart of the paper.
//!
//! Two deviations from the paper's pseudocode, documented in DESIGN.md and
//! EXPERIMENTS.md:
//!
//! 1. `lastV` is updated on every append to the store buffer rather than
//!    only when the buffer flushes (Algorithm 2 line 11). With flush-only
//!    updates, a record parked in a partially-filled store buffer across a
//!    round boundary is still `> lastV` and would be inserted — and output —
//!    a second time when its block is re-scanned by the next round's first
//!    phase.
//! 2. Each round maintains a *bar*: the minimum record ever rejected by or
//!    ejected from the full queue during the round, and nothing ≥ bar may
//!    enter the queue for the rest of the round. The paper's rule
//!    ("Q.max = +∞ whenever Q is not full") lets a record loaded during
//!    phase 2 — when the queue is momentarily below capacity after a
//!    deleteMin — leapfrog a record that phase 1 rejected; once the
//!    leapfrogger is written, `lastV` moves past the rejected record and it
//!    is skipped in every later round (records are lost). The bar restores
//!    the invariant that a round writes exactly the smallest remaining
//!    records, and leaves the round's ≥ M output guarantee (and hence
//!    Lemma 4.1's counting) intact.
//!
//! **Duplicate records.** The paper assumes records form a strict total
//! order (its convention is that a position index can always be appended to
//! break ties), and earlier versions of this merge inherited that as a hard
//! requirement: `lastV`, the bar, and the queue all compared raw records,
//! so a truly identical record was `<= lastV` the moment its twin was
//! written and got silently skipped — records were lost. The merge now keys
//! every candidate by `(Record, Seq)` where `Seq` is the record's
//! provenance — (source-run index, offset within the run) — which is unique
//! by construction. Runs are sorted, so the composite key is strictly
//! increasing within a run; across runs the run index breaks ties. Equal
//! records therefore drain in stable run order and none is ever dropped.
//! On unique-record inputs the provenance never decides a comparison, so
//! every insertion, ejection, and drain decision — and hence every modeled
//! block transfer — is bit-identical to the old record-only ordering
//! (`tests/cost_golden.rs` and the committed `BENCH_*.json` baselines pin
//! this).
//!
//! One implementation deviation (performance, not semantics): the paper's
//! priority queue Q is realized as a [`FlatMergeQueue`] — a bounded flat
//! interval heap — rather than the `BTreeMap` the seed used. Both expose
//! peek-max / pop-max / push / pop-min over the same strict-total-order
//! keys, so every decision is identical; the flat heap just does it without
//! allocating a node per record.

use super::merge_queue::FlatMergeQueue;
use super::selection::selection_sort;
use asym_model::{ModelError, Record, Result};
use em_sim::{EmMachine, EmVec, EmWriter};

/// Extra primary memory Algorithm 2 needs beyond M, in records: the load and
/// store buffers (2B) plus the run pointers and last-in-block marks, which
/// the paper budgets as 2αkM/B ≤ kM/B records for 16-byte records.
pub fn mergesort_slack(m: usize, b: usize, k: usize) -> usize {
    2 * b + (k * m) / b
}

/// Options for [`aem_mergesort_opts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MergeOpts {
    /// Keep the run pointers I₁..I_l in secondary memory instead of primary
    /// memory (the remark after Lemma 4.1): every pointer advance then
    /// writes the updated pointer block back, roughly doubling the writes,
    /// in exchange for not leasing the 2αkM/B pointer space.
    pub pointers_on_disk: bool,
}

/// Sort `input` with the AEM mergesort at write-saving factor `k`
/// (1 ≤ k; k=1 is the classic EM mergesort). Consumes and frees the input's
/// blocks; returns a freshly written sorted array.
#[deprecated(
    since = "0.2.0",
    note = "use the unified job API: `asym_core::sort::SortSpec` + the \
            `aem-mergesort` entry of `asym_core::sort::sorters()`"
)]
pub fn aem_mergesort(machine: &EmMachine, input: EmVec, k: usize) -> Result<EmVec> {
    aem_mergesort_opts(machine, input, k, MergeOpts::default())
}

/// [`aem_mergesort`] with explicit [`MergeOpts`] (ablation entry point).
pub fn aem_mergesort_opts(
    machine: &EmMachine,
    input: EmVec,
    k: usize,
    opts: MergeOpts,
) -> Result<EmVec> {
    assert!(k >= 1, "k must be at least 1");
    let m = machine.m();
    let b = machine.b();
    let l = k * m / b;
    if l < 2 {
        return Err(ModelError::Invariant(format!(
            "branching factor kM/B = {l} must be at least 2"
        )));
    }
    let n = input.len();
    if n <= k * m {
        let sorted = selection_sort(machine, &input, k)?;
        input.free(machine);
        return Ok(sorted);
    }
    // Partition into at most l block-aligned subarrays and sort recursively.
    let pieces = input.split_blocks(l, b);
    let mut runs: Vec<EmVec> = Vec::with_capacity(pieces.len());
    for piece in pieces {
        runs.push(aem_mergesort_opts(machine, piece, k, opts)?);
    }
    let out = merge_runs(machine, &runs, k, opts)?;
    for run in runs {
        run.free(machine);
    }
    Ok(out)
}

/// Merge already-sorted runs staged on `machine` with the Lemma 4.1 l-way
/// merge — the staged/checkpointed executor's merge-round engine
/// (`sort::checkpoint`). The input runs are left live; the caller frees
/// them. Requires `runs.len() <= kM/B`.
pub(crate) fn merge_sorted_runs(machine: &EmMachine, runs: &[EmVec], k: usize) -> Result<EmVec> {
    merge_runs(machine, runs, k, MergeOpts::default())
}

/// Queue entry bookkeeping: which run a record came from, and whether it was
/// the last record of its block (the paper's "mark").
#[derive(Clone, Copy, Debug)]
struct Mark {
    run: u32,
    last_in_block: bool,
}

/// Provenance of a merge candidate: the index of its source run within the
/// current merge and its offset within that run. Pairing a record with its
/// provenance gives the merge a strict total order even when records are
/// duplicated (see the module docs): within a run offsets increase, across
/// runs the run index breaks ties, so equal records drain in stable run
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Seq {
    run: u32,
    offset: u64,
}

/// The merge's comparison key: the record itself, tie-broken by provenance.
type MergeKey = (Record, Seq);

/// Merge l sorted runs (Lemma 4.1): at most (k+1)⌈n/B⌉ reads, ⌈n/B⌉ writes
/// (plus one pointer-block write per consumed block when
/// `opts.pointers_on_disk`).
fn merge_runs(machine: &EmMachine, runs: &[EmVec], k: usize, opts: MergeOpts) -> Result<EmVec> {
    let m = machine.m();
    let b = machine.b();
    let l = runs.len();
    debug_assert!(l <= k * m / b, "too many runs for one merge");
    let total: usize = runs.iter().map(EmVec::len).sum();

    // Primary-memory leases: the queue (M records), the shared load buffer
    // (one block), and pointer/mark state (≤ kM/B records' worth) — unless
    // the pointers live on disk; the writer leases its own block.
    let _queue_lease = machine.lease(m)?;
    let _load_lease = machine.lease(b)?;
    let _pointer_lease = if opts.pointers_on_disk {
        None
    } else {
        Some(machine.lease(l.min((k * m) / b))?)
    };
    let mut writer = EmWriter::new(machine)?;

    // In-memory priority queue: a bounded flat interval heap of capacity M
    // (see the module docs). In-memory operations are free in the model;
    // only block transfers are charged.
    let mut queue: FlatMergeQueue<MergeKey, Mark> = FlatMergeQueue::with_capacity(m);
    // Per-run cursor: index of the current (not fully consumed) block.
    let mut next_block: Vec<usize> = vec![0; l];
    // The shared load buffer, reused for every block read of the merge.
    let mut load_buf: Vec<Record> = Vec::with_capacity(b);
    let mut last_v: Option<MergeKey> = None;
    let mut written = 0usize;

    // Load the current block of run `i` (into the shared, reused load
    // buffer) and insert its eligible records into the queue.
    #[allow(clippy::too_many_arguments)]
    fn do_process_block(
        machine: &EmMachine,
        runs: &[EmVec],
        queue: &mut FlatMergeQueue<MergeKey, Mark>,
        next_block: &mut [usize],
        load_buf: &mut Vec<Record>,
        last_v: &Option<MergeKey>,
        bar: &mut Option<MergeKey>,
        i: usize,
    ) -> Result<()> {
        let run = &runs[i];
        let bi = next_block[i];
        if bi >= run.num_blocks() {
            return Ok(());
        }
        let block_cap = machine.b();
        machine.read_block_into(run.block_ids()[bi], load_buf)?;
        let last_idx = load_buf.len() - 1;
        for (j, &e) in load_buf.iter().enumerate() {
            // Every full block holds exactly B records, so the record's
            // run-relative offset is recoverable from its block position.
            let key: MergeKey = (
                e,
                Seq {
                    run: i as u32,
                    offset: (bi * block_cap + j) as u64,
                },
            );
            if let Some(lv) = last_v {
                if key <= *lv {
                    continue; // already written in an earlier round
                }
            }
            // Round bar: nothing at or above a key the round has already
            // turned away may enter (see module docs, deviation 2).
            if let Some(bk) = bar {
                if key >= *bk {
                    continue;
                }
            }
            if queue.len() >= queue.capacity() {
                let qmax = queue.peek_max().expect("non-empty");
                if key >= qmax {
                    *bar = Some(bar.map_or(key, |bk| bk.min(key)));
                    continue;
                }
                let (ejected, _) = queue.pop_max().expect("non-empty");
                *bar = Some(bar.map_or(ejected, |bk| bk.min(ejected)));
            }
            queue.push(
                key,
                Mark {
                    run: i as u32,
                    last_in_block: j == last_idx,
                },
            );
        }
        Ok(())
    }

    while written < total {
        // Phase 1: scan the current block of every run. The bar resets each
        // round: records above it become eligible again.
        let mut bar: Option<MergeKey> = None;
        for i in 0..l {
            do_process_block(
                machine,
                runs,
                &mut queue,
                &mut next_block,
                &mut load_buf,
                &last_v,
                &mut bar,
                i,
            )?;
        }
        debug_assert!(
            written + queue.len() >= total || !queue.is_empty(),
            "phase 1 must make progress"
        );
        // Phase 2: drain the queue, chasing block boundaries.
        while let Some((key, mark)) = queue.pop_min() {
            writer.push(key.0);
            written += 1;
            last_v = Some(key);
            if mark.last_in_block {
                let i = mark.run as usize;
                next_block[i] += 1;
                if opts.pointers_on_disk {
                    // Persist the updated pointer I_i (one block write; the
                    // re-read cost is folded into the next process-block).
                    machine.charge_writes(1);
                }
                do_process_block(
                    machine,
                    runs,
                    &mut queue,
                    &mut next_block,
                    &mut load_buf,
                    &last_v,
                    &mut bar,
                    i,
                )?;
            }
        }
    }
    Ok(writer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::stats::ceil_log_base;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn machine(m: usize, b: usize, omega: u64, k: usize) -> EmMachine {
        EmMachine::new(EmConfig::new(m, b, omega).with_slack(mergesort_slack(m, b, k)))
    }

    #[test]
    fn sorts_all_workloads_beyond_base_case() {
        let (m, b, k) = (32usize, 4usize, 2usize);
        let em = machine(m, b, 8, k);
        for wl in Workload::ALL {
            let input = wl.generate(500, 11); // 500 > kM = 64
            let v = EmVec::stage(&em, &input);
            let sorted = aem_mergesort(&em, v, k).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
        }
    }

    #[test]
    fn classic_k1_instance_sorts() {
        let em = machine(16, 4, 1, 1);
        let input = Workload::UniformRandom.generate(300, 2);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_mergesort(&em, v, 1).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
    }

    #[test]
    fn duplicate_heavy_inputs_sort_without_losing_records() {
        let (m, b, k) = (32usize, 4usize, 2usize);
        let em = machine(m, b, 8, k);
        // All-identical inputs used to lose every twin of the first written
        // record to the `e <= lastV` skip; the (Record, seq) keys keep them.
        let identical = vec![Record::new(7, 7); 500];
        // 90%-duplicate keys over a tiny alphabet.
        let few_distinct: Vec<Record> = (0..500).map(|i| Record::new(i % 5, i % 2)).collect();
        for input in [identical, few_distinct] {
            let v = EmVec::stage(&em, &input);
            let sorted = aem_mergesort(&em, v, k).unwrap();
            let out = sorted.read_all_uncharged(&em);
            assert_eq!(out.len(), input.len(), "records lost");
            assert_sorted_permutation(&input, &out);
            sorted.free(&em);
        }
    }

    #[test]
    fn respects_theorem_4_3_bounds() {
        for (m, b, k, n) in [
            (32usize, 4usize, 2usize, 1000usize),
            (32, 4, 4, 1000),
            (64, 8, 3, 4000),
            (16, 4, 1, 500),
        ] {
            let em = machine(m, b, 8, k);
            let input = Workload::UniformRandom.generate(n, 5);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = aem_mergesort(&em, v, k).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
            let read_bound = (k as u64 + 1) * blocks * levels;
            let write_bound = blocks * levels;
            assert!(
                s.block_reads <= read_bound,
                "(m={m},b={b},k={k},n={n}): reads {} > bound {read_bound}",
                s.block_reads
            );
            assert!(
                s.block_writes <= write_bound,
                "(m={m},b={b},k={k},n={n}): writes {} > bound {write_bound}",
                s.block_writes
            );
        }
    }

    #[test]
    fn larger_k_reduces_writes() {
        let (m, b, n) = (32usize, 4usize, 20_000usize);
        let input = Workload::UniformRandom.generate(n, 3);
        let writes = |k: usize| {
            let em = machine(m, b, 8, k);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = aem_mergesort(&em, v, k).unwrap();
            let w = em.stats().block_writes;
            sorted.free(&em);
            w
        };
        let w1 = writes(1);
        let w4 = writes(4);
        assert!(
            w4 < w1,
            "k=4 should write fewer blocks than classic k=1: {w4} vs {w1}"
        );
    }

    #[test]
    fn input_blocks_are_freed() {
        let em = machine(32, 4, 4, 2);
        let input = Workload::UniformRandom.generate(400, 9);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_mergesort(&em, v, 2).unwrap();
        // Only the output should remain live.
        assert_eq!(em.live_blocks(), sorted.num_blocks());
    }

    #[test]
    fn rejects_degenerate_branching() {
        let em = EmMachine::new(EmConfig::new(4, 4, 2).with_slack(64));
        let input = Workload::UniformRandom.generate(100, 1);
        let v = EmVec::stage(&em, &input);
        assert!(aem_mergesort(&em, v, 1).is_err()); // kM/B = 1
    }

    #[test]
    fn tiny_inputs_hit_base_case_directly() {
        let em = machine(32, 4, 2, 2);
        let input = Workload::Reversed.generate(10, 0);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = aem_mergesort(&em, v, 2).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
        // One selection pass: ceil(10/4) reads and writes.
        assert_eq!(em.stats().block_reads, 3);
        assert_eq!(em.stats().block_writes, 3);
    }
}

//! §4.2 — the AEM l = kM/B-way sample (distribution) sort.
//!
//! Each level of recursion selects l−1 splitters from an oversampled random
//! sample, then partitions the input into l buckets while reading the input
//! k times: the splitters are processed in rounds of M/B, each round keeping
//! one block per bucket plus the round's splitters in primary memory and
//! writing out only the ~1/k fraction of records that belong to the round's
//! buckets. Writes per level stay at O(n/B); reads grow to O(kn/B).
//!
//! Near the bottom of the recursion (n ≤ k²M²/B) the branching factor drops
//! to l = n/(kM), keeping the splitter-sorting cost a lower-order term
//! (the paper's "simple solution" guaranteeing l ≤ √(n/B)).
//!
//! Sorted buckets stream into one shared output writer so the recursion
//! produces a single dense array with no partial-block seams between
//! buckets.

use super::mergesort::{aem_mergesort_opts, mergesort_slack, MergeOpts};
use super::selection::selection_sort_into;
use asym_model::{ModelError, Record, Result};
use em_sim::{BlockId, EmMachine, EmVec, EmWriter};
use rand::rngs::StdRng;
use rand::Rng;

/// Extra primary memory the sample sort needs beyond M. The partition phase
/// uses M (bucket blocks) + M/B (splitters) + 2B (input reader + output
/// writer); sorting the sample reuses the mergesort — whose slack dominates —
/// while the shared output writer still holds its block.
pub fn samplesort_slack(m: usize, b: usize, k: usize) -> usize {
    b + mergesort_slack(m, b, k).max(b + m.div_ceil(b))
}

/// Sort `input` with the AEM sample sort at write-saving factor `k`
/// (k=1 is the classic EM distribution sort). Consumes and frees the input.
#[deprecated(
    since = "0.2.0",
    note = "use the unified job API: `asym_core::sort::SortSpec` + the \
            `aem-samplesort` entry of `asym_core::sort::sorters()`"
)]
pub fn aem_samplesort(
    machine: &EmMachine,
    input: EmVec,
    k: usize,
    rng: &mut StdRng,
) -> Result<EmVec> {
    samplesort_run(machine, input, k, rng)
}

/// The sample-sort engine behind both the deprecated free function and the
/// `sort::Sorter` adapter (one code path, so the two are cost-identical by
/// construction).
pub(crate) fn samplesort_run(
    machine: &EmMachine,
    input: EmVec,
    k: usize,
    rng: &mut StdRng,
) -> Result<EmVec> {
    assert!(k >= 1, "k must be at least 1");
    let l_full = k * machine.m() / machine.b();
    if l_full < 2 {
        return Err(ModelError::Invariant(format!(
            "branching factor kM/B = {l_full} must be at least 2"
        )));
    }
    let n0 = input.len().max(2);
    let mut out = EmWriter::new(machine)?;
    sort_rec(machine, input, k, n0, rng, &mut out)?;
    Ok(out.finish())
}

fn sort_rec(
    machine: &EmMachine,
    input: EmVec,
    k: usize,
    n0: usize,
    rng: &mut StdRng,
    out: &mut EmWriter,
) -> Result<()> {
    let m = machine.m();
    let b = machine.b();
    let n = input.len();
    if n <= k * m {
        selection_sort_into(machine, &input, k, out)?;
        input.free(machine);
        return Ok(());
    }
    // Branching factor: kM/B in general, n/(kM) near the bottom.
    let l_full = k * m / b;
    let l = if n <= k * k * m * m / b {
        (n / (k * m)).max(2).min(l_full)
    } else {
        l_full
    };

    let splitters = choose_splitters(machine, &input, l, n0, rng)?;
    let buckets = partition(machine, &input, &splitters)?;
    splitters.free(machine);
    input.free(machine);
    for bucket in buckets {
        if bucket.len() == n {
            // The partition made no progress: every record landed in one
            // bucket. On duplicate-heavy inputs (e.g. all records identical)
            // this repeats forever — every sample yields the same splitter
            // and the same single bucket — so hand the bucket to the
            // mergesort, whose `(Record, seq)` merge discipline handles
            // duplicates, and stream its output into the shared writer.
            // With unique records an adequately sized sample always leaves
            // the overflow bucket nonempty, so this path stays cold there
            // and the frozen unique-input cost goldens are unaffected.
            let sorted = aem_mergesort_opts(machine, bucket, k, MergeOpts::default())?;
            let mut reader = sorted.reader(machine)?;
            while let Some(r) = reader.next() {
                out.push(r);
            }
            drop(reader);
            sorted.free(machine);
            continue;
        }
        sort_rec(machine, bucket, k, n0, rng, out)?;
    }
    Ok(())
}

/// Pick l−1 splitters by oversampling Θ(l log n₀) records, sorting them with
/// the AEM mergesort, and sub-selecting evenly. Returns a disk-resident
/// splitter array of at most l−1 strictly increasing records.
fn choose_splitters(
    machine: &EmMachine,
    input: &EmVec,
    l: usize,
    n0: usize,
    rng: &mut StdRng,
) -> Result<EmVec> {
    let n = input.len();
    let target = (4.0 * l as f64 * (n0 as f64).ln()).ceil() as usize;
    let target = target.clamp(4 * l, n);
    let p = target as f64 / n as f64;

    // Bernoulli sampling pass over the input.
    let mut writer = EmWriter::new(machine)?;
    {
        let mut reader = input.reader(machine)?;
        while let Some(r) = reader.next() {
            if rng.gen_bool(p.min(1.0)) {
                writer.push(r);
            }
        }
    }
    let mut sample = writer.finish();

    if sample.len() < 2 * l {
        // Unlucky draw (possible only at tiny sizes): fall back to a
        // deterministic evenly-spaced sample, which still guarantees
        // progress (≥ 2 nonempty buckets).
        sample.free(machine);
        let stride = (n / (2 * l)).max(1);
        let mut det_writer = EmWriter::new(machine)?;
        let mut reader = input.reader(machine)?;
        let mut i = 0usize;
        while let Some(r) = reader.next() {
            if i.is_multiple_of(stride) {
                det_writer.push(r);
            }
            i += 1;
        }
        drop(reader);
        sample = det_writer.finish();
    }

    let sorted = aem_mergesort_opts(machine, sample, 1, MergeOpts::default())?;
    let s_len = sorted.len();
    // Sub-select l-1 evenly spaced splitters, streaming them to disk.
    let mut positions: Vec<usize> = (1..l).map(|i| i * s_len / l).collect();
    positions.dedup();
    let mut writer = EmWriter::new(machine)?;
    {
        let mut reader = sorted.reader(machine)?;
        let mut idx = 0usize;
        let mut next = positions.iter().copied().peekable();
        while let Some(r) = reader.next() {
            if next.peek() == Some(&idx) {
                writer.push(r);
                next.next();
            }
            idx += 1;
        }
    }
    sorted.free(machine);
    Ok(writer.finish())
}

/// State of one output bucket while partitioning.
struct BucketOut {
    blocks: Vec<BlockId>,
    buf: Vec<Record>,
    len: usize,
}

/// Partition `input` into `splitters.len() + 1` buckets, processing the
/// splitters in rounds of at most M/B each. Each round scans the whole
/// input but writes only the records belonging to its own buckets.
fn partition(machine: &EmMachine, input: &EmVec, splitters: &EmVec) -> Result<Vec<EmVec>> {
    let m = machine.m();
    let b = machine.b();
    let group = (m / b).max(1); // buckets materialized per round
    let s_total = splitters.len();
    let num_buckets = s_total + 1;
    let mut buckets: Vec<EmVec> = Vec::with_capacity(num_buckets);

    // Bucket j holds keys in (S[j-1], S[j]], with S[-1] = -inf and
    // S[num_buckets-1] = +inf. Each round materializes `group` buckets.
    let mut b_start = 0usize;
    loop {
        let b_end = (b_start + group).min(num_buckets);
        let is_last_round = b_end == num_buckets;
        // This round's splitters are S[b_start .. b_end-1] (the last bucket
        // of the round is bounded above by S[b_end-1], or +inf at the end).
        let s_lo = b_start;
        let s_hi = (b_end - 1).min(s_total);
        let _splitter_lease = machine.lease((s_hi - s_lo).max(1))?;
        let round_splitters = read_range(machine, splitters, s_lo, s_hi)?;
        // Round bounds: keys in (lower, upper] belong to this round.
        let lower: Option<Record> = if b_start == 0 {
            None
        } else {
            Some(read_one(machine, splitters, b_start - 1)?)
        };
        let upper: Option<Record> = if is_last_round {
            None // +infinity: final round owns the overflow bucket
        } else {
            Some(read_one(machine, splitters, b_end - 1)?)
        };
        let cnt = b_end - b_start;
        let _bucket_lease = machine.lease(cnt * b)?;
        let mut outs: Vec<BucketOut> = (0..cnt)
            .map(|_| BucketOut {
                blocks: Vec::new(),
                buf: Vec::with_capacity(b),
                len: 0,
            })
            .collect();

        let mut reader = input.reader(machine)?;
        while let Some(r) = reader.next() {
            if let Some(lo) = lower {
                if r <= lo {
                    continue;
                }
            }
            if let Some(hi) = upper {
                if r > hi {
                    continue;
                }
            }
            // Bucket = index of the first splitter >= r; the overflow bucket
            // catches everything above the round's last splitter.
            let j = round_splitters.partition_point(|s| *s < r);
            let out = &mut outs[j];
            out.buf.push(r);
            out.len += 1;
            if out.buf.len() == b {
                out.blocks.push(machine.append_block_from(&out.buf));
                out.buf.clear();
            }
        }
        drop(reader);
        for mut out in outs {
            if !out.buf.is_empty() {
                out.blocks.push(machine.append_block_from(&out.buf));
            }
            buckets.push(EmVec::from_blocks(out.blocks, out.len));
        }
        if is_last_round {
            break;
        }
        b_start = b_end;
    }
    debug_assert_eq!(
        buckets.iter().map(EmVec::len).sum::<usize>(),
        input.len(),
        "partition must conserve records"
    );
    Ok(buckets)
}

/// Read records [lo, hi) of a disk array into memory (charged; caller holds
/// the lease). One load buffer is reused across the scanned blocks.
fn read_range(machine: &EmMachine, v: &EmVec, lo: usize, hi: usize) -> Result<Vec<Record>> {
    if lo >= hi {
        return Ok(Vec::new());
    }
    let b = machine.b();
    let mut out = Vec::with_capacity(hi - lo);
    let mut block = Vec::with_capacity(b);
    let first_block = lo / b;
    let last_block = (hi - 1) / b;
    for bi in first_block..=last_block {
        machine.read_block_into(v.block_ids()[bi], &mut block)?;
        for (j, &r) in block.iter().enumerate() {
            let idx = bi * b + j;
            if idx >= lo && idx < hi {
                out.push(r);
            }
        }
    }
    Ok(out)
}

fn read_one(machine: &EmMachine, v: &EmVec, idx: usize) -> Result<Record> {
    let b = machine.b();
    let mut block = Vec::with_capacity(b);
    machine.read_block_into(v.block_ids()[idx / b], &mut block)?;
    Ok(block[idx % b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::stats::ceil_log_base;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;
    use rand::SeedableRng;

    fn machine(m: usize, b: usize, omega: u64, k: usize) -> EmMachine {
        EmMachine::new(EmConfig::new(m, b, omega).with_slack(samplesort_slack(m, b, k)))
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sorts_all_workloads() {
        let (m, b, k) = (32usize, 4usize, 2usize);
        let em = machine(m, b, 8, k);
        for wl in Workload::ALL {
            let input = wl.generate(600, 13);
            let v = EmVec::stage(&em, &input);
            let sorted = aem_samplesort(&em, v, k, &mut rng(1)).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
        }
    }

    #[test]
    fn classic_k1_instance_sorts() {
        let em = machine(16, 4, 1, 1);
        let input = Workload::UniformRandom.generate(400, 2);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_samplesort(&em, v, 1, &mut rng(3)).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
    }

    #[test]
    fn write_count_tracks_theorem_4_5_shape() {
        // Writes should be O((n/B) * levels) with a modest constant; we allow
        // 4x for splitter sorting and partial blocks.
        for (m, b, k, n) in [(32usize, 4usize, 2usize, 4000usize), (64, 8, 4, 8000)] {
            let em = machine(m, b, 8, k);
            let input = Workload::UniformRandom.generate(n, 5);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = aem_samplesort(&em, v, k, &mut rng(7)).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
            assert!(
                s.block_writes <= 4 * blocks * levels,
                "(m={m},b={b},k={k},n={n}): writes {} vs O-bound {}",
                s.block_writes,
                4 * blocks * levels
            );
        }
    }

    #[test]
    fn larger_k_reduces_writes() {
        let (m, b, n) = (32usize, 4usize, 20_000usize);
        let input = Workload::UniformRandom.generate(n, 17);
        let writes = |k: usize| {
            let em = machine(m, b, 8, k);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = aem_samplesort(&em, v, k, &mut rng(11)).unwrap();
            let w = em.stats().block_writes;
            sorted.free(&em);
            w
        };
        let w1 = writes(1);
        let w4 = writes(4);
        assert!(
            w4 < w1,
            "k=4 should write fewer blocks than classic k=1: {w4} vs {w1}"
        );
    }

    #[test]
    fn duplicate_heavy_inputs_sort_without_losing_records() {
        let (m, b, k) = (32usize, 4usize, 2usize);
        let em = machine(m, b, 8, k);
        // All-identical inputs used to recurse forever: every sample yields
        // one splitter equal to the sole record and one full-size bucket.
        let identical = vec![Record::new(3, 3); 600];
        // 90%-duplicate keys over a tiny alphabet.
        let few_distinct: Vec<Record> = (0..600).map(|i| Record::new(i % 7, i % 2)).collect();
        for input in [identical, few_distinct] {
            let v = EmVec::stage(&em, &input);
            let sorted = aem_samplesort(&em, v, k, &mut rng(21)).unwrap();
            let out = sorted.read_all_uncharged(&em);
            assert_eq!(out.len(), input.len(), "records lost");
            assert_sorted_permutation(&input, &out);
            sorted.free(&em);
        }
    }

    #[test]
    fn disk_is_clean_after_sort() {
        let em = machine(32, 4, 4, 2);
        let input = Workload::UniformRandom.generate(700, 23);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_samplesort(&em, v, 2, &mut rng(5)).unwrap();
        assert_eq!(em.live_blocks(), sorted.num_blocks());
    }

    #[test]
    fn base_case_only_input() {
        let em = machine(32, 4, 2, 2);
        let input = Workload::Reversed.generate(50, 1);
        let v = EmVec::stage(&em, &input);
        let sorted = aem_samplesort(&em, v, 2, &mut rng(9)).unwrap();
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
    }

    #[test]
    fn empty_input() {
        let em = machine(16, 4, 2, 1);
        let v = EmVec::stage(&em, &[]);
        let sorted = aem_samplesort(&em, v, 1, &mut rng(0)).unwrap();
        assert!(sorted.is_empty());
    }
}

//! §4.3.3 — the AEM priority queue with α and β working sets.
//!
//! The structure keeps the smallest records close at hand:
//!
//! * the **α working set** — at most M/4 of the globally smallest records,
//!   resident in primary memory (delete-min pops it for free);
//! * the **β working set** — at most 2kM of the next smallest, stored in
//!   appended disk blocks. β is never rewritten on extraction: deletions are
//!   *implicit*, maintained as a list of pairs (i, x) meaning "every record
//!   with append-index ≤ i and key ≤ x is deleted" (indices ascend, keys
//!   descend along the list, so validity is one comparison against the first
//!   pair with i ≥ idx). β is rebuilt (compacted) after k extractions, and
//!   its largest kM records are pushed down into the buffer tree when it
//!   overflows 2kM;
//! * the **buffer tree** ([`super::buffer_tree::BufferTree`]) — everything
//!   else. Refilling an empty β empties the root-to-leftmost-leaf path and
//!   takes the leftmost leaf (kM/4 … kM records).
//!
//! Order invariant maintained throughout: max(α) ≤ min(valid β) ≤ max(valid
//! β) ≤ min(tree), so delete-min = pop(α).
//!
//! **Duplicate records.** Records need not be unique. α is keyed
//! `(Record, seq)` with a fresh per-insertion sequence so a `BTreeSet` can
//! hold identical records without collapsing them, and β's implicit
//! deletions compare `(Record, append-index)` lexicographically — the
//! composite keys are unique, so an extraction's invalidation pair deletes
//! *exactly* the extracted copies and never an unextracted twin. On
//! unique-record inputs neither tie-break ever decides a comparison.

use super::buffer_tree::BufferTree;
use asym_model::{Record, Result};
use em_sim::{BlockId, EmMachine, MemLease};
use std::collections::{BTreeSet, BinaryHeap};

/// Extra primary memory the priority queue needs beyond M: the α set (M/4),
/// the β tail block, the root-buffer tail block, and the buffer tree's
/// emptying scratch (selection-sort set M + stream buffers + routing).
pub fn pq_slack(m: usize, b: usize, k: usize) -> usize {
    m + m / 4 + 8 * b + (k * m) / b
}

/// The priority queue of Theorem 4.10.
pub struct AemPriorityQueue {
    machine: EmMachine,
    k: usize,
    /// The α set, keyed `(Record, seq)`: the per-insertion sequence keeps
    /// duplicate records distinct inside the set (it carries no meaning
    /// beyond uniqueness and never leaves the structure).
    alpha: BTreeSet<(Record, u64)>,
    alpha_seq: u64,
    alpha_cap: usize,
    beta: BetaSet,
    tree: BufferTree,
    len: usize,
    _alpha_lease: MemLease,
}

/// The β working set: appended blocks with implicit deletions.
struct BetaSet {
    blocks: Vec<BlockId>,
    /// In-memory tail (last partial block, kept resident).
    tail: Vec<Record>,
    /// Records ever appended since the last rebuild (the index space of the
    /// invalidation pairs).
    appended: usize,
    /// Valid (not implicitly deleted) record count.
    valid: usize,
    /// Maximum valid record (None when `valid == 0`).
    max: Option<Record>,
    /// Invalidation pairs (i, x): ascending i, descending x, where x is a
    /// composite `(Record, append-index)` key — "every record with
    /// append-index ≤ i and composite key ≤ x is deleted". Composite keys
    /// are unique, so a pair deletes exactly the extracted copies even when
    /// records are duplicated.
    pairs: Vec<(usize, (Record, usize))>,
    /// Extractions since the last rebuild.
    extractions: usize,
    _tail_lease: MemLease,
}

impl BetaSet {
    fn new(machine: &EmMachine) -> Result<Self> {
        Ok(Self {
            blocks: Vec::new(),
            tail: Vec::with_capacity(machine.b()),
            appended: 0,
            valid: 0,
            max: None,
            pairs: Vec::new(),
            extractions: 0,
            _tail_lease: machine.lease(machine.b())?,
        })
    }

    /// Is the record at append-index `idx` still valid?
    fn is_valid(&self, idx: usize, rec: Record) -> bool {
        // First pair with i >= idx has the largest x among applicable pairs.
        match self.pairs.iter().find(|&&(i, _)| i >= idx) {
            Some(&(_, x)) => (rec, idx) > x,
            None => true,
        }
    }

    /// Append a record (cost: 1/B amortized writes via the tail block).
    fn append(&mut self, machine: &EmMachine, r: Record) {
        self.tail.push(r);
        self.appended += 1;
        self.valid += 1;
        self.max = Some(self.max.map_or(r, |m| m.max(r)));
        if self.tail.len() == machine.b() {
            self.blocks.push(machine.append_block_from(&self.tail));
            self.tail.clear();
        }
    }

    /// Scan all records (charged block reads), applying validity filtering;
    /// calls `f(idx, record)` for each valid record. One load buffer is
    /// reused across the scanned blocks.
    fn scan_valid(&self, machine: &EmMachine, mut f: impl FnMut(usize, Record)) -> Result<()> {
        let b = machine.b();
        let mut block = Vec::with_capacity(b);
        for (bi, &blk) in self.blocks.iter().enumerate() {
            machine.read_block_into(blk, &mut block)?;
            for (j, &r) in block.iter().enumerate() {
                let idx = bi * b + j;
                if self.is_valid(idx, r) {
                    f(idx, r);
                }
            }
        }
        let base = self.blocks.len() * b;
        for (j, &r) in self.tail.iter().enumerate() {
            if self.is_valid(base + j, r) {
                f(base + j, r);
            }
        }
        Ok(())
    }

    /// Extract the `count` smallest valid records (sorted). Appends an
    /// invalidation pair instead of rewriting blocks (Lemma 4.8: O(kM/B)
    /// reads, O(1) writes).
    fn extract_smallest(
        &mut self,
        machine: &EmMachine,
        count: usize,
        lease_cells: usize,
    ) -> Result<Vec<Record>> {
        let _scratch = machine.lease(lease_cells)?;
        // Candidates are composite `(Record, append-index)` keys, so equal
        // records stay distinct and the invalidation pair below covers
        // exactly the extracted copies.
        let mut heap: BinaryHeap<(Record, usize)> = BinaryHeap::with_capacity(count + 1);
        self.scan_valid(machine, |idx, r| {
            let cand = (r, idx);
            if heap.len() < count {
                heap.push(cand);
            } else if cand < *heap.peek().expect("non-empty") {
                heap.pop();
                heap.push(cand);
            }
        })?;
        let batch = heap.into_sorted_vec();
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let x = *batch.last().expect("non-empty");
        let i = self.appended.saturating_sub(1);
        while let Some(&(_, px)) = self.pairs.last() {
            if px <= x {
                self.pairs.pop();
            } else {
                break;
            }
        }
        self.pairs.push((i, x));
        self.valid -= batch.len();
        if self.valid == 0 {
            self.max = None;
        }
        self.extractions += 1;
        Ok(batch.into_iter().map(|(r, _)| r).collect())
    }

    /// Rebuild: rewrite only the valid records densely, clear the pair list
    /// (Lemma 4.9: O(kM/B) reads and writes).
    fn rebuild(&mut self, machine: &EmMachine) -> Result<()> {
        let mut kept: Vec<Record> = Vec::with_capacity(self.valid);
        self.scan_valid(machine, |_, r| kept.push(r))?;
        self.reset_with(machine, kept)
    }

    /// Replace the contents with `records` (written densely).
    fn reset_with(&mut self, machine: &EmMachine, records: Vec<Record>) -> Result<()> {
        for blk in self.blocks.drain(..) {
            machine.release_block(blk)?;
        }
        self.tail.clear();
        self.pairs.clear();
        self.extractions = 0;
        self.appended = 0;
        self.valid = 0;
        self.max = None;
        for r in records {
            self.append(machine, r);
        }
        Ok(())
    }

    /// All valid records (charged scan), unsorted.
    fn collect_valid(&self, machine: &EmMachine) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.valid);
        self.scan_valid(machine, |_, r| out.push(r))?;
        Ok(out)
    }
}

impl AemPriorityQueue {
    /// An empty priority queue on `machine` with write-saving factor `k`.
    /// The machine needs `pq_slack` extra capacity.
    pub fn new(machine: EmMachine, k: usize) -> Result<Self> {
        let alpha_cap = (machine.m() / 4).max(1);
        let alpha_lease = machine.lease(alpha_cap)?;
        let beta = BetaSet::new(&machine)?;
        let tree = BufferTree::new(machine.clone(), k)?;
        Ok(Self {
            machine,
            k,
            alpha: BTreeSet::new(),
            alpha_seq: 0,
            alpha_cap,
            beta,
            tree,
            len: 0,
            _alpha_lease: alpha_lease,
        })
    }

    /// Insert into α under a fresh sequence (duplicate records stay
    /// distinct; the sequence never leaves the set).
    fn alpha_insert(&mut self, r: Record) {
        let seq = self.alpha_seq;
        self.alpha_seq += 1;
        self.alpha.insert((r, seq));
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// β capacity 2kM.
    fn beta_cap(&self) -> usize {
        2 * self.k * self.machine.m()
    }

    /// Insert a record (amortized O((k/B)(1+log_{kM/B} n)) reads and
    /// O((1/B)(1+log_{kM/B} n)) writes, Theorem 4.10).
    pub fn insert(&mut self, r: Record) -> Result<()> {
        self.len += 1;
        let alpha_max = self.alpha.last().map(|&(rec, _)| rec);
        let everything_small = self.beta.valid == 0 && self.tree.is_empty();
        if alpha_max.map_or(everything_small, |am| r < am)
            || (everything_small && !self.alpha_is_full())
        {
            // r belongs in (or below) the α range.
            self.alpha_insert(r);
            if self.alpha.len() > self.alpha_cap {
                let (evicted, _) = self.alpha.pop_last().expect("non-empty");
                self.beta_insert(evicted)?;
            }
            return Ok(());
        }
        match self.beta.max {
            Some(bm) if r < bm => self.beta_insert(r)?,
            _ => self.tree.insert(r)?,
        }
        Ok(())
    }

    fn alpha_is_full(&self) -> bool {
        self.alpha.len() >= self.alpha_cap
    }

    fn beta_insert(&mut self, r: Record) -> Result<()> {
        self.beta.append(&self.machine, r);
        if self.beta.valid >= self.beta_cap() {
            self.beta_overflow()?;
        }
        Ok(())
    }

    /// β overflow: rebuild, then push the largest kM records into the tree.
    fn beta_overflow(&mut self) -> Result<()> {
        self.beta.rebuild(&self.machine)?;
        // Selection-style split: keep the kM smallest, move the rest.
        let km = self.k * self.machine.m();
        let mut all = self.beta.collect_valid(&self.machine)?;
        // In-memory sort is not free at this size; model the Lemma 4.2
        // selection sort cost explicitly: ⌈n/M⌉ extra scan passes.
        let passes = all.len().div_ceil(self.machine.m()) as u64;
        let scan_blocks = (all.len().div_ceil(self.machine.b())) as u64;
        self.machine
            .charge_reads(passes.saturating_sub(1) * scan_blocks);
        all.sort_unstable();
        let upper = all.split_off(km.min(all.len()));
        self.beta.reset_with(&self.machine, all)?;
        for r in upper {
            self.tree.insert(r)?;
        }
        Ok(())
    }

    /// Remove and return the smallest record.
    pub fn delete_min(&mut self) -> Result<Option<Record>> {
        if let Some((min, _)) = self.alpha.pop_first() {
            self.len -= 1;
            return Ok(Some(min));
        }
        // Refill α from β (refilling β from the tree first if needed).
        if self.beta.valid == 0 {
            if let Some(batch) = self.tree.pop_leftmost_leaf()? {
                self.beta.reset_with(&self.machine, batch)?;
            }
        }
        if self.beta.valid > 0 {
            let count = self.alpha_cap.min(self.beta.valid);
            let lease = self.machine.m() / 4;
            let batch = self.beta.extract_smallest(&self.machine, count, lease)?;
            for r in batch {
                self.alpha_insert(r);
            }
            if self.beta.extractions >= self.k {
                self.beta.rebuild(&self.machine)?;
            }
        }
        match self.alpha.pop_first() {
            Some((min, _)) => {
                self.len -= 1;
                Ok(Some(min))
            }
            None => {
                debug_assert_eq!(self.len, 0, "len accounting");
                Ok(None)
            }
        }
    }

    /// Peek the smallest record without removing it (may trigger the same
    /// refills as delete-min).
    pub fn peek_min(&mut self) -> Result<Option<Record>> {
        if self.alpha.is_empty() && self.len > 0 {
            // Force a refill by borrowing delete-min's machinery.
            if let Some(min) = self.delete_min()? {
                self.alpha_insert(min);
                self.len += 1;
            }
        }
        Ok(self.alpha.first().map(|&(rec, _)| rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn machine(m: usize, b: usize, k: usize) -> EmMachine {
        EmMachine::new(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)))
    }

    #[test]
    fn insert_all_delete_all_is_sorted() {
        let em = machine(16, 2, 1);
        let mut pq = AemPriorityQueue::new(em, 1).unwrap();
        let input = Workload::UniformRandom.generate(1000, 3);
        for &r in &input {
            pq.insert(r).unwrap();
        }
        assert_eq!(pq.len(), 1000);
        let mut out = Vec::new();
        while let Some(r) = pq.delete_min().unwrap() {
            out.push(r);
        }
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(out, expect);
        assert!(pq.is_empty());
    }

    #[test]
    fn interleaved_ops_match_reference() {
        use rand::{Rng, SeedableRng};
        let em = machine(16, 2, 1);
        let mut pq = AemPriorityQueue::new(em, 1).unwrap();
        let mut reference = std::collections::BTreeSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut next_key = 0u64;
        for _ in 0..4000 {
            if rng.gen_bool(0.65) || reference.is_empty() {
                // Unique keys, inserted in random order via shuffled payloads.
                let r = Record::new(rng.gen_range(0..1_000_000), next_key);
                next_key += 1;
                pq.insert(r).unwrap();
                reference.insert(r);
            } else {
                let got = pq.delete_min().unwrap();
                let expect = reference.pop_first();
                assert_eq!(got, expect);
            }
        }
        // Drain and compare the rest.
        while let Some(expect) = reference.pop_first() {
            assert_eq!(pq.delete_min().unwrap(), Some(expect));
        }
        assert_eq!(pq.delete_min().unwrap(), None);
    }

    #[test]
    fn all_identical_stream_is_preserved() {
        // Every α/β/tree hand-off is exercised with nothing but twins: the
        // old record-keyed α set collapsed them and β's record-keyed
        // invalidation pairs deleted unextracted copies.
        let em = machine(16, 2, 1);
        let mut pq = AemPriorityQueue::new(em, 1).unwrap();
        let r = Record::new(42, 42);
        for _ in 0..1200 {
            pq.insert(r).unwrap();
        }
        assert_eq!(pq.len(), 1200);
        let mut drained = 0usize;
        while let Some(got) = pq.delete_min().unwrap() {
            assert_eq!(got, r);
            drained += 1;
        }
        assert_eq!(drained, 1200, "records lost");
    }

    #[test]
    fn interleaved_duplicate_ops_match_multiset_reference() {
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeMap;
        let em = machine(16, 2, 2);
        let mut pq = AemPriorityQueue::new(em, 2).unwrap();
        // Multiset reference: record -> live count (the BTreeSet reference
        // of the unique-record test would collapse duplicates).
        let mut reference: BTreeMap<Record, usize> = BTreeMap::new();
        let mut ref_len = 0usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xDDD);
        for _ in 0..4000 {
            if rng.gen_bool(0.65) || ref_len == 0 {
                // ~90% duplicates: keys from a tiny alphabet, payload 0.
                let r = Record::new(rng.gen_range(0..12), 0);
                pq.insert(r).unwrap();
                *reference.entry(r).or_insert(0) += 1;
                ref_len += 1;
            } else {
                let got = pq.delete_min().unwrap();
                let expect = reference.first_key_value().map(|(&r, _)| r);
                assert_eq!(got, expect);
                if let Some(r) = expect {
                    let count = reference.get_mut(&r).unwrap();
                    *count -= 1;
                    if *count == 0 {
                        reference.remove(&r);
                    }
                    ref_len -= 1;
                }
            }
            assert_eq!(pq.len(), ref_len);
        }
        // Drain and compare the rest.
        while let Some((&r, _)) = reference.first_key_value() {
            assert_eq!(pq.delete_min().unwrap(), Some(r));
            let count = reference.get_mut(&r).unwrap();
            *count -= 1;
            if *count == 0 {
                reference.remove(&r);
            }
        }
        assert_eq!(pq.delete_min().unwrap(), None);
    }

    #[test]
    fn larger_k_reduces_writes() {
        let input = Workload::UniformRandom.generate(6000, 9);
        let writes = |k: usize| {
            let em = machine(16, 2, k);
            let mut pq = AemPriorityQueue::new(em.clone(), k).unwrap();
            for &r in &input {
                pq.insert(r).unwrap();
            }
            while pq.delete_min().unwrap().is_some() {}
            em.stats().block_writes
        };
        let w1 = writes(1);
        let w4 = writes(4);
        assert!(w4 < w1, "k=4 should write less: {w4} vs {w1}");
    }

    #[test]
    fn empty_queue_returns_none() {
        let em = machine(16, 2, 1);
        let mut pq = AemPriorityQueue::new(em, 1).unwrap();
        assert_eq!(pq.delete_min().unwrap(), None);
        assert_eq!(pq.peek_min().unwrap(), None);
    }

    #[test]
    fn peek_preserves_contents() {
        let em = machine(16, 2, 1);
        let mut pq = AemPriorityQueue::new(em, 1).unwrap();
        let input = Workload::UniformRandom.generate(300, 1);
        for &r in &input {
            pq.insert(r).unwrap();
        }
        let min = *input.iter().min().unwrap();
        assert_eq!(pq.peek_min().unwrap(), Some(min));
        assert_eq!(pq.len(), 300);
        assert_eq!(pq.delete_min().unwrap(), Some(min));
        assert_eq!(pq.len(), 299);
    }

    #[test]
    fn sorted_and_reversed_streams() {
        for wl in [Workload::Sorted, Workload::Reversed] {
            let em = machine(16, 2, 2);
            let mut pq = AemPriorityQueue::new(em, 2).unwrap();
            let input = wl.generate(800, 4);
            for &r in &input {
                pq.insert(r).unwrap();
            }
            let mut out = Vec::new();
            while let Some(r) = pq.delete_min().unwrap() {
                out.push(r);
            }
            let mut expect = input.clone();
            expect.sort();
            assert_eq!(out, expect, "{}", wl.name());
        }
    }
}

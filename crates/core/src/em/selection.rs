//! Lemma 4.2 — the k-pass selection-sort base case.
//!
//! Sorts n ≤ kM records in at most ⌈n/M⌉ ≤ k scans of the input: each pass
//! keeps the M smallest records larger than everything already written, then
//! emits them in order. Reads ≤ ⌈n/M⌉·⌈n/B⌉ ≤ k⌈n/B⌉, writes exactly
//! ⌈n/B⌉ — no matter how large k (and hence the input) is.
//!
//! Primary-memory footprint: the M-record candidate set plus the one-block
//! load and store buffers (the machine must be configured with at least
//! `M + 2B` capacity; the paper's statement allows `M + B` by folding the
//! store buffer into the O(log M) output bookkeeping — we charge it
//! explicitly and give the machine the extra block).

use asym_model::{ModelError, Record, Result};
use em_sim::{EmMachine, EmVec, EmWriter};
use std::collections::BinaryHeap;

/// Sort `input` (n ≤ kM) with the Lemma 4.2 selection sort; `k` only bounds
/// the permitted input size — the pass count is derived from n and M.
///
/// The input array is left intact (the caller frees it); the returned array
/// is freshly written.
pub fn selection_sort(machine: &EmMachine, input: &EmVec, k: usize) -> Result<EmVec> {
    let mut writer = EmWriter::new(machine)?;
    selection_sort_into(machine, input, k, &mut writer)?;
    Ok(writer.finish())
}

/// [`selection_sort`] variant streaming the sorted records into an existing
/// writer (used by the sample sort so bucket outputs concatenate without
/// partial-block seams).
pub fn selection_sort_into(
    machine: &EmMachine,
    input: &EmVec,
    k: usize,
    writer: &mut EmWriter,
) -> Result<()> {
    let m = machine.m();
    let n = input.len();
    if n > k * m {
        return Err(ModelError::Invariant(format!(
            "selection sort requires n <= kM ({n} > {k} * {m})"
        )));
    }
    // The candidate set occupies M records of primary memory for the whole
    // sort; the reader and writer each lease a block themselves.
    let _set_lease = machine.lease(m)?;
    // Candidates are keyed `(Record, scan index)`: the scan order is the
    // same every pass, so the index is a stable tie-break that keeps
    // duplicate records distinguishable — comparing raw records would skip
    // every twin of a written record (`r <= last_written`) and lose it.
    // On unique inputs the index never decides a comparison.
    let mut last_written: Option<(Record, usize)> = None;
    let mut remaining = n;

    while remaining > 0 {
        // One pass: collect the M smallest candidates above `last_written`.
        // BinaryHeap is a max-heap: peek() is the current M-th smallest.
        let mut heap: BinaryHeap<(Record, usize)> = BinaryHeap::with_capacity(m + 1);
        let mut reader = input.reader(machine)?;
        let mut idx = 0usize;
        while let Some(r) = reader.next() {
            let cand = (r, idx);
            idx += 1;
            if let Some(lw) = last_written {
                if cand <= lw {
                    continue;
                }
            }
            if heap.len() < m {
                heap.push(cand);
            } else if cand < *heap.peek().expect("heap non-empty") {
                heap.pop();
                heap.push(cand);
            }
        }
        drop(reader);
        // Emit the pass's records in ascending order (in-memory sort is free).
        let mut batch = heap.into_sorted_vec();
        debug_assert!(!batch.is_empty(), "remaining records must be found");
        last_written = batch.last().copied();
        remaining -= batch.len();
        for (r, _) in batch.drain(..) {
            writer.push(r);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn machine(m: usize, b: usize, omega: u64) -> EmMachine {
        // M-record candidate set + load buffer + store buffer.
        EmMachine::new(EmConfig::new(m, b, omega).with_slack(2 * b))
    }

    #[test]
    fn sorts_all_workloads() {
        let em = machine(32, 4, 8);
        for wl in Workload::ALL {
            let input = wl.generate(100, 3); // k=4 passes needed
            let v = EmVec::stage(&em, &input);
            let sorted = selection_sort(&em, &v, 4).unwrap();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            sorted.free(&em);
            v.free(&em);
        }
    }

    #[test]
    fn respects_lemma_4_2_bounds_exactly() {
        // n <= kM sorted with <= ceil(n/M)*ceil(n/B) reads and ceil(n/B) writes.
        let cases = [
            (64usize, 8usize, 3usize, 150usize),
            (32, 4, 4, 128),
            (16, 4, 2, 17),
        ];
        for (m, b, k, n) in cases {
            let em = machine(m, b, 4);
            let input = Workload::UniformRandom.generate(n, 7);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = selection_sort(&em, &v, k).unwrap();
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let passes = n.div_ceil(m) as u64;
            assert!(passes <= k as u64);
            assert!(
                s.block_reads <= passes * blocks,
                "(m={m},b={b},n={n}) reads {} > {}",
                s.block_reads,
                passes * blocks
            );
            assert_eq!(s.block_writes, blocks, "(m={m},b={b},n={n}) writes");
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
        }
    }

    #[test]
    fn single_pass_when_n_fits_in_memory() {
        let em = machine(64, 8, 4);
        let input = Workload::Reversed.generate(60, 1);
        let v = EmVec::stage(&em, &input);
        em.reset_stats();
        let sorted = selection_sort(&em, &v, 1).unwrap();
        let s = em.stats();
        assert_eq!(s.block_reads, 60u64.div_ceil(8));
        assert_eq!(s.block_writes, 60u64.div_ceil(8));
        assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
    }

    #[test]
    fn duplicate_heavy_inputs_keep_every_record() {
        let em = machine(16, 4, 8);
        // All-identical: the old record-keyed discipline skipped every twin
        // of the first written record and never found the rest (multi-pass
        // inputs spun in the `remaining > 0` loop).
        let identical = vec![Record::new(9, 9); 60];
        // 90%-duplicate: a handful of distinct records, heavily repeated.
        let few_distinct: Vec<Record> = (0..60).map(|i| Record::new(i % 6, i % 3)).collect();
        for input in [identical, few_distinct] {
            let v = EmVec::stage(&em, &input);
            let sorted = selection_sort(&em, &v, 4).unwrap();
            let out = sorted.read_all_uncharged(&em);
            assert_eq!(out.len(), input.len(), "records lost");
            assert_sorted_permutation(&input, &out);
            sorted.free(&em);
            v.free(&em);
        }
    }

    #[test]
    fn rejects_oversized_input() {
        let em = machine(8, 4, 2);
        let input = Workload::UniformRandom.generate(100, 0);
        let v = EmVec::stage(&em, &input);
        assert!(selection_sort(&em, &v, 2).is_err()); // 100 > 2*8
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let em = machine(8, 4, 2);
        let v = EmVec::stage(&em, &[]);
        let sorted = selection_sort(&em, &v, 1).unwrap();
        assert!(sorted.is_empty());
        assert_eq!(em.stats().block_writes, 0);
    }

    #[test]
    fn memory_capacity_is_respected() {
        // A machine with insufficient slack must fault, not silently overrun.
        let em = EmMachine::new(EmConfig::new(16, 4, 2)); // no slack for buffers
        let input = Workload::UniformRandom.generate(30, 5);
        let v = EmVec::stage(&em, &input);
        assert!(selection_sort(&em, &v, 2).is_err());
    }
}

//! §3 — a write-efficient comparison-based priority queue.
//!
//! Backed by the instrumented red-black tree: `insert` and `delete-min` each
//! cost O(log n) reads but only O(1) amortized writes, the property §3 claims
//! for "priority queues (insert and delete-min) … in O(1) writes per
//! operation". The binary-heap baseline below moves Θ(log n) records per
//! operation, i.e. Θ(log n) writes — experiment E0 contrasts the two.

use super::rbtree::RbTree;
use asym_model::{MemCounter, Record};

/// Write-efficient priority queue on the Asymmetric RAM.
pub struct RamPriorityQueue {
    tree: RbTree,
}

impl RamPriorityQueue {
    /// An empty queue charging `counter`.
    pub fn new(counter: MemCounter) -> Self {
        Self {
            tree: RbTree::new(counter),
        }
    }

    /// Number of queued records.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Insert a record (keys must be unique, as the paper assumes).
    pub fn insert(&mut self, r: Record) {
        let ok = self.tree.insert(r);
        assert!(ok, "duplicate key inserted into priority queue");
    }

    /// The minimum record without removing it.
    pub fn peek_min(&self) -> Option<Record> {
        self.tree.min()
    }

    /// Remove and return the minimum record.
    pub fn delete_min(&mut self) -> Option<Record> {
        self.tree.delete_min()
    }
}

/// Baseline: a classic binary heap with every record move charged.
pub struct BinaryHeapBaseline {
    data: Vec<Record>,
    counter: MemCounter,
}

impl BinaryHeapBaseline {
    /// An empty heap charging `counter`.
    pub fn new(counter: MemCounter) -> Self {
        Self {
            data: Vec::new(),
            counter,
        }
    }

    /// Number of queued records.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert with sift-up (≤ log n swaps, each 2 reads + 2 writes).
    pub fn insert(&mut self, r: Record) {
        self.counter.write();
        self.data.push(r);
        let mut i = self.data.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            self.counter.add_reads(2);
            if self.data[p] <= self.data[i] {
                break;
            }
            self.counter.add_reads(2);
            self.counter.add_writes(2);
            self.data.swap(i, p);
            i = p;
        }
    }

    /// Remove the minimum with sift-down.
    pub fn delete_min(&mut self) -> Option<Record> {
        if self.data.is_empty() {
            return None;
        }
        self.counter.read();
        let min = self.data[0];
        self.counter.add_reads(1);
        self.counter.add_writes(1);
        let last = self.data.pop().unwrap();
        if !self.data.is_empty() {
            self.counter.write();
            self.data[0] = last;
            let n = self.data.len();
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut smallest = i;
                if l < n {
                    self.counter.add_reads(2);
                    if self.data[l] < self.data[smallest] {
                        smallest = l;
                    }
                }
                if r < n {
                    self.counter.add_reads(2);
                    if self.data[r] < self.data[smallest] {
                        smallest = r;
                    }
                }
                if smallest == i {
                    break;
                }
                self.counter.add_reads(2);
                self.counter.add_writes(2);
                self.data.swap(i, smallest);
                i = smallest;
            }
        }
        Some(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::workload::Workload;

    #[test]
    fn pq_delivers_records_in_order() {
        let input = Workload::UniformRandom.generate(500, 1);
        let mut pq = RamPriorityQueue::new(MemCounter::new());
        for &r in &input {
            pq.insert(r);
        }
        assert_eq!(pq.len(), 500);
        let mut out = Vec::new();
        while let Some(r) = pq.delete_min() {
            out.push(r);
        }
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(out, expect);
        assert!(pq.is_empty());
    }

    #[test]
    fn heap_baseline_agrees_with_pq() {
        let input = Workload::Zipf.generate(300, 2);
        // Zipf has duplicate keys broken by payload; both structures order by
        // (key, payload) so results must agree. Deduplicate for the RB queue.
        let mut uniq: Vec<Record> = input.clone();
        uniq.sort();
        uniq.dedup();
        let mut pq = RamPriorityQueue::new(MemCounter::new());
        let mut heap = BinaryHeapBaseline::new(MemCounter::new());
        for &r in &uniq {
            pq.insert(r);
            heap.insert(r);
        }
        loop {
            let a = pq.delete_min();
            let b = heap.delete_min();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut pq = RamPriorityQueue::new(MemCounter::new());
        assert_eq!(pq.peek_min(), None);
        pq.insert(Record::keyed(3));
        pq.insert(Record::keyed(1));
        assert_eq!(pq.peek_min(), Some(Record::keyed(1)));
        assert_eq!(pq.len(), 2);
    }

    #[test]
    fn tree_pq_writes_less_than_heap_per_op() {
        let n = 1 << 13;
        let input = Workload::UniformRandom.generate(n, 6);
        let ct = MemCounter::new();
        let mut pq = RamPriorityQueue::new(ct.clone());
        for &r in &input {
            pq.insert(r);
        }
        while pq.delete_min().is_some() {}
        let ch = MemCounter::new();
        let mut heap = BinaryHeapBaseline::new(ch.clone());
        for &r in &input {
            heap.insert(r);
        }
        while heap.delete_min().is_some() {}
        let tree_wpo = ct.writes() as f64 / (2 * n) as f64;
        let heap_wpo = ch.writes() as f64 / (2 * n) as f64;
        assert!(
            tree_wpo < heap_wpo / 1.5,
            "tree PQ writes/op {tree_wpo:.2} should be well below heap {heap_wpo:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_insert_panics() {
        let mut pq = RamPriorityQueue::new(MemCounter::new());
        pq.insert(Record::keyed(1));
        pq.insert(Record::keyed(1));
    }
}

//! §3 — sorting on the Asymmetric RAM in O(n log n) reads and O(n) writes.

use super::rbtree::{RbStats, RbTree};
use asym_model::{MemCounter, Record};

/// Sort by inserting every record into a red-black tree and reading them off
/// in order. Charges all accesses to `counter`; appending each record to the
/// output array is one write.
///
/// Cost (measured, matching §3): O(n log n) reads, O(n) writes, total
/// asymmetric cost O(n(ω + log n)).
pub fn tree_sort_with_counter(input: &[Record], counter: &MemCounter) -> (Vec<Record>, RbStats) {
    let mut tree = RbTree::new(counter.clone());
    for &r in input {
        counter.read(); // reading the input record
        let inserted = tree.insert(r);
        debug_assert!(inserted, "records are unique by construction");
    }
    let mut out = Vec::with_capacity(input.len());
    tree.in_order(|r| {
        counter.write(); // appending to the output array
        out.push(r);
    });
    (out, tree.stats())
}

/// [`tree_sort_with_counter`] with a throwaway counter (plain sorting API).
pub fn tree_sort(input: &[Record]) -> Vec<Record> {
    tree_sort_with_counter(input, &MemCounter::new()).0
}

/// Baseline: a conventional in-place comparison sort (bottom-up mergesort),
/// instrumented the same way. Performs Θ(n log n) reads *and* Θ(n log n)
/// writes — the comparison point for experiment E0.
pub fn mergesort_baseline(input: &[Record], counter: &MemCounter) -> Vec<Record> {
    let mut a: Vec<Record> = Vec::with_capacity(input.len());
    for &r in input {
        counter.read();
        counter.write();
        a.push(r);
    }
    let n = a.len();
    let mut buf = a.clone(); // scratch; its initial fill is not charged
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            // Merge a[lo..mid] and a[mid..hi] into buf[lo..hi].
            let (mut i, mut j) = (lo, mid);
            for slot in buf.iter_mut().take(hi).skip(lo) {
                let take_left = j >= hi || (i < mid && { a[i] } <= { a[j] });
                counter.add_reads(2); // the two candidate records examined
                let v = if take_left {
                    let v = a[i];
                    i += 1;
                    v
                } else {
                    let v = a[j];
                    j += 1;
                    v
                };
                counter.write();
                *slot = v;
            }
            lo = hi;
        }
        std::mem::swap(&mut a, &mut buf);
        width *= 2;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;

    #[test]
    fn tree_sort_sorts_every_workload() {
        for wl in Workload::ALL {
            let input = wl.generate(300, 9);
            let out = tree_sort(&input);
            assert_sorted_permutation(&input, &out);
        }
    }

    #[test]
    fn baseline_sorts_every_workload() {
        for wl in Workload::ALL {
            let input = wl.generate(257, 4);
            let c = MemCounter::new();
            let out = mergesort_baseline(&input, &c);
            assert_sorted_permutation(&input, &out);
        }
    }

    #[test]
    fn tree_sort_empty_and_singleton() {
        assert!(tree_sort(&[]).is_empty());
        let one = [Record::keyed(5)];
        assert_eq!(tree_sort(&one), one.to_vec());
    }

    #[test]
    fn tree_sort_writes_linear_baseline_writes_superlinear() {
        let n1 = 1 << 10;
        let n2 = 1 << 14;
        let wpi = |n: usize, f: &dyn Fn(&[Record], &MemCounter)| {
            let input = Workload::UniformRandom.generate(n, 2);
            let c = MemCounter::new();
            f(&input, &c);
            c.writes() as f64 / n as f64
        };
        let tree_small = wpi(n1, &|i, c| {
            tree_sort_with_counter(i, c);
        });
        let tree_large = wpi(n2, &|i, c| {
            tree_sort_with_counter(i, c);
        });
        let base_small = wpi(n1, &|i, c| {
            mergesort_baseline(i, c);
        });
        let base_large = wpi(n2, &|i, c| {
            mergesort_baseline(i, c);
        });
        assert!(
            tree_large < tree_small * 1.4,
            "tree sort writes/n must stay flat: {tree_small:.2} -> {tree_large:.2}"
        );
        assert!(
            base_large > base_small + 2.0,
            "baseline writes/n must grow by ~log: {base_small:.2} -> {base_large:.2}"
        );
    }

    #[test]
    fn tree_sort_beats_baseline_on_asymmetric_cost() {
        let input = Workload::UniformRandom.generate(1 << 13, 3);
        let omega = 16u64;
        let ct = MemCounter::new();
        tree_sort_with_counter(&input, &ct);
        let cb = MemCounter::new();
        mergesort_baseline(&input, &cb);
        let tree_cost = ct.reads() + omega * ct.writes();
        let base_cost = cb.reads() + omega * cb.writes();
        assert!(
            tree_cost < base_cost,
            "tree sort {tree_cost} should beat baseline {base_cost} at omega={omega}"
        );
    }

    #[test]
    fn stats_reflect_inserts() {
        let input = Workload::UniformRandom.generate(512, 8);
        let c = MemCounter::new();
        let (_, stats) = tree_sort_with_counter(&input, &c);
        assert_eq!(stats.inserts, 512);
        assert!(stats.rotations > 0);
        assert!(stats.rotations < 512, "amortized O(1) rotations per insert");
    }
}

//! An instrumented red-black tree with O(1) amortized structural writes.
//!
//! Every node-field access is charged on a [`MemCounter`]: reads for key
//! comparisons and pointer follows, writes for link updates, recolorings and
//! rotations. The descent stack is *not* charged — the paper's RAM model
//! explicitly grants O(log M) free bookkeeping locations for a stack.
//!
//! Red-black trees perform O(1) amortized recolorings and rotations per
//! update (the property §3 of the paper relies on, citing Ottmann & Wood),
//! so n inserts cost O(n log n) reads but only O(n) writes — the tallies
//! [`RbStats`] and the attached counter make that measurable.

use asym_model::{MemCounter, Record};

const NIL: u32 = u32::MAX;

/// Structural-change tallies (separate from the read/write counter so
/// experiments can report rotations/recolorings per insert).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RbStats {
    /// Single rotations performed.
    pub rotations: u64,
    /// Node recolorings performed.
    pub recolorings: u64,
    /// Successful insertions.
    pub inserts: u64,
    /// Successful delete-min operations.
    pub deletions: u64,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    key: Record,
    left: u32,
    right: u32,
    red: bool,
}

/// An arena-allocated red-black tree of [`Record`]s with counted accesses.
pub struct RbTree {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    counter: MemCounter,
    stats: RbStats,
    /// Free list of arena slots from deletions.
    free: Vec<u32>,
}

impl RbTree {
    /// An empty tree charging `counter`.
    pub fn new(counter: MemCounter) -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            len: 0,
            counter,
            stats: RbStats::default(),
            free: Vec::new(),
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Structural-change tallies.
    pub fn stats(&self) -> RbStats {
        self.stats
    }

    /// The counter this tree charges.
    pub fn counter(&self) -> &MemCounter {
        &self.counter
    }

    // ---- charged field accessors -------------------------------------------

    #[inline]
    fn key(&self, n: u32) -> Record {
        self.counter.read();
        self.nodes[n as usize].key
    }

    #[inline]
    fn left(&self, n: u32) -> u32 {
        self.counter.read();
        self.nodes[n as usize].left
    }

    #[inline]
    fn right(&self, n: u32) -> u32 {
        self.counter.read();
        self.nodes[n as usize].right
    }

    #[inline]
    fn is_red(&self, n: u32) -> bool {
        if n == NIL {
            return false; // NIL is black by definition; no memory touched.
        }
        self.counter.read();
        self.nodes[n as usize].red
    }

    #[inline]
    fn set_left(&mut self, n: u32, v: u32) {
        self.counter.write();
        self.nodes[n as usize].left = v;
    }

    #[inline]
    fn set_right(&mut self, n: u32, v: u32) {
        self.counter.write();
        self.nodes[n as usize].right = v;
    }

    #[inline]
    fn set_red(&mut self, n: u32, red: bool) {
        if self.nodes[n as usize].red != red {
            self.counter.write();
            self.stats.recolorings += 1;
            self.nodes[n as usize].red = red;
        }
    }

    fn alloc(&mut self, key: Record) -> u32 {
        // Creating a node writes its key and initializes links/color: charge
        // a constant 2 writes (key + packed header), matching the paper's
        // "O(1) writes per new node".
        self.counter.add_writes(2);
        let node = Node {
            key,
            left: NIL,
            right: NIL,
            red: true,
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    // ---- insertion -----------------------------------------------------------

    /// Insert a record; returns false (and changes nothing) on duplicates.
    pub fn insert(&mut self, key: Record) -> bool {
        if self.root == NIL {
            let n = self.alloc(key);
            self.nodes[n as usize].red = false;
            self.root = n;
            self.len = 1;
            self.stats.inserts += 1;
            return true;
        }
        // Descend, recording the path (free bookkeeping stack).
        let mut path: Vec<u32> = Vec::with_capacity(48);
        let mut cur = self.root;
        loop {
            let k = self.key(cur);
            path.push(cur);
            if key == k {
                return false;
            }
            let next = if key < k {
                self.left(cur)
            } else {
                self.right(cur)
            };
            if next == NIL {
                break;
            }
            cur = next;
        }
        let leaf = self.alloc(key);
        let parent = *path.last().unwrap();
        if key < self.nodes[parent as usize].key {
            self.set_left(parent, leaf);
        } else {
            self.set_right(parent, leaf);
        }
        self.len += 1;
        self.stats.inserts += 1;
        path.push(leaf);
        self.insert_fixup(path);
        true
    }

    /// Bottom-up red-red fixup along the descent path.
    fn insert_fixup(&mut self, mut path: Vec<u32>) {
        // path = [root, ..., parent, node]; node is red.
        while path.len() >= 3 {
            let node = path[path.len() - 1];
            let parent = path[path.len() - 2];
            let grand = path[path.len() - 3];
            if !self.is_red(parent) {
                break;
            }
            let parent_is_left = self.left(grand) == parent;
            let uncle = if parent_is_left {
                self.right(grand)
            } else {
                self.left(grand)
            };
            if self.is_red(uncle) {
                // Case 1: recolor and continue two levels up.
                self.set_red(parent, false);
                self.set_red(uncle, false);
                self.set_red(grand, true);
                path.pop();
                path.pop();
                continue;
            }
            // Cases 2/3: one or two rotations around the grandparent.
            let great = if path.len() >= 4 {
                Some(path[path.len() - 4])
            } else {
                None
            };
            let node_is_left = self.left(parent) == node;
            let new_sub = if parent_is_left {
                if !node_is_left {
                    // Left-right: rotate parent left first.
                    self.rotate_left_child(grand, parent);
                }
                self.rotate_right(grand, great)
            } else {
                if node_is_left {
                    self.rotate_right_child(grand, parent);
                }
                self.rotate_left(grand, great)
            };
            self.set_red(new_sub, false);
            self.set_red(grand, true);
            break;
        }
        let root = self.root;
        self.set_red(root, false);
    }

    // Rotations. `great` is the parent of `pivot` (None if pivot is root);
    // each rotation is three link writes.

    fn replace_child(&mut self, parent: Option<u32>, old: u32, new: u32) {
        match parent {
            None => {
                debug_assert_eq!(self.root, old);
                self.root = new; // root pointer is a bookkeeping word
                self.counter.write();
            }
            Some(p) => {
                if self.left(p) == old {
                    self.set_left(p, new);
                } else {
                    self.set_right(p, new);
                }
            }
        }
    }

    /// Rotate left around `pivot`; returns the subtree's new root.
    fn rotate_left(&mut self, pivot: u32, great: Option<u32>) -> u32 {
        self.stats.rotations += 1;
        let r = self.right(pivot);
        let rl = self.left(r);
        self.set_right(pivot, rl);
        self.set_left(r, pivot);
        self.replace_child(great, pivot, r);
        r
    }

    /// Rotate right around `pivot`; returns the subtree's new root.
    fn rotate_right(&mut self, pivot: u32, great: Option<u32>) -> u32 {
        self.stats.rotations += 1;
        let l = self.left(pivot);
        let lr = self.right(l);
        self.set_left(pivot, lr);
        self.set_right(l, pivot);
        self.replace_child(great, pivot, l);
        l
    }

    /// Rotate the left child of `grand` leftwards (LR case preparation).
    fn rotate_left_child(&mut self, grand: u32, parent: u32) {
        self.stats.rotations += 1;
        let node = self.right(parent);
        let nl = self.left(node);
        self.set_right(parent, nl);
        self.set_left(node, parent);
        self.set_left(grand, node);
    }

    /// Rotate the right child of `grand` rightwards (RL case preparation).
    fn rotate_right_child(&mut self, grand: u32, parent: u32) {
        self.stats.rotations += 1;
        let node = self.left(parent);
        let nr = self.right(node);
        self.set_left(parent, nr);
        self.set_right(node, parent);
        self.set_right(grand, node);
    }

    // ---- queries ---------------------------------------------------------------

    /// The minimum record, or None if empty (charged descent).
    pub fn min(&self) -> Option<Record> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        loop {
            let l = self.left(cur);
            if l == NIL {
                return Some(self.key(cur));
            }
            cur = l;
        }
    }

    /// Find any record whose key field equals `key`, ignoring the payload
    /// tie-break (dictionary lookup; callers must store at most one payload
    /// per key for this to be deterministic).
    pub fn find_by_key(&self, key: u64) -> Option<Record> {
        let mut cur = self.root;
        while cur != NIL {
            let k = self.key(cur);
            match key.cmp(&k.key) {
                std::cmp::Ordering::Equal => return Some(k),
                std::cmp::Ordering::Less => cur = self.left(cur),
                std::cmp::Ordering::Greater => cur = self.right(cur),
            }
        }
        None
    }

    /// Whether `key` is present (charged descent).
    pub fn contains(&self, key: Record) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let k = self.key(cur);
            if key == k {
                return true;
            }
            cur = if key < k {
                self.left(cur)
            } else {
                self.right(cur)
            };
        }
        false
    }

    /// In-order traversal, calling `f` on each record (O(n) reads; the
    /// traversal stack is free bookkeeping).
    pub fn in_order(&self, mut f: impl FnMut(Record)) {
        let mut stack: Vec<u32> = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.left(cur);
            }
            let n = stack.pop().unwrap();
            f(self.key(n));
            cur = self.right(n);
        }
    }

    // ---- delete-min ------------------------------------------------------------

    /// Remove and return the minimum record.
    pub fn delete_min(&mut self) -> Option<Record> {
        if self.root == NIL {
            return None;
        }
        // Descend the left spine, recording the path.
        let mut path: Vec<u32> = Vec::with_capacity(48);
        let mut cur = self.root;
        loop {
            let l = self.left(cur);
            if l == NIL {
                break;
            }
            path.push(cur);
            cur = l;
        }
        let min_node = cur;
        let key = self.key(min_node);
        let replacement = self.right(min_node); // may be NIL
        let was_red = self.is_red(min_node);
        let parent = path.last().copied();
        self.replace_child(parent, min_node, replacement);
        self.free.push(min_node);
        self.len -= 1;
        self.stats.deletions += 1;

        if was_red {
            // Red leaf (a red node with a right child would violate RB
            // invariants if the child existed, so replacement is NIL): done.
        } else if replacement != NIL && self.is_red(replacement) {
            self.set_red(replacement, false);
        } else {
            self.delete_fixup(path, true);
        }
        Some(key)
    }

    // ---- general deletion ---------------------------------------------------

    /// Delete an arbitrary record; returns false if absent. Like insertion,
    /// deletion costs O(log n) reads but only O(1) amortized writes (the §3
    /// dictionary claim).
    pub fn delete(&mut self, key: Record) -> bool {
        let mut path: Vec<u32> = Vec::with_capacity(48);
        let mut cur = self.root;
        while cur != NIL {
            let k = self.key(cur);
            if key == k {
                break;
            }
            path.push(cur);
            cur = if key < k {
                self.left(cur)
            } else {
                self.right(cur)
            };
        }
        if cur == NIL {
            return false;
        }
        let mut target = cur;
        if self.left(target) != NIL && self.right(target) != NIL {
            // Interior node: splice out the successor instead, after moving
            // its key up (one key write).
            path.push(target);
            let mut s = self.right(target);
            loop {
                let l = self.left(s);
                if l == NIL {
                    break;
                }
                path.push(s);
                s = l;
            }
            let skey = self.key(s);
            self.counter.write();
            self.nodes[target as usize].key = skey;
            target = s;
        }
        // `target` now has at most one child.
        let lchild = self.left(target);
        let replacement = if lchild != NIL {
            lchild
        } else {
            self.right(target)
        };
        let was_red = self.is_red(target);
        let parent = path.last().copied();
        let is_left = parent.is_none_or(|p| self.left(p) == target);
        self.replace_child(parent, target, replacement);
        self.free.push(target);
        self.len -= 1;
        self.stats.deletions += 1;
        if was_red {
            // Red node with <= 1 child is a leaf; nothing to fix.
        } else if replacement != NIL && self.is_red(replacement) {
            self.set_red(replacement, false);
        } else {
            self.delete_fixup(path, is_left);
        }
        true
    }

    /// Resolve a double-black child of `path.last()`; `is_left` says which
    /// side the double-black hangs on. Standard red-black deletion cases,
    /// with mirrored rotations for the right side.
    fn delete_fixup(&mut self, mut path: Vec<u32>, mut is_left: bool) {
        loop {
            let parent = match path.last().copied() {
                None => break, // double-black reached the root: done.
                Some(p) => p,
            };
            let mut grand = if path.len() >= 2 {
                Some(path[path.len() - 2])
            } else {
                None
            };
            let mut w = if is_left {
                self.right(parent)
            } else {
                self.left(parent)
            };
            debug_assert_ne!(w, NIL, "black-height imbalance implies a sibling");
            if self.is_red(w) {
                // Case 1: red sibling -> rotate to get a black sibling.
                self.set_red(w, false);
                self.set_red(parent, true);
                let new_sub = if is_left {
                    self.rotate_left(parent, grand)
                } else {
                    self.rotate_right(parent, grand)
                };
                // parent moved below new_sub; fix the path and the
                // grandparent used by any rotation later this iteration.
                path.pop();
                path.push(new_sub);
                path.push(parent);
                grand = Some(new_sub);
                w = if is_left {
                    self.right(parent)
                } else {
                    self.left(parent)
                };
            }
            let wl = self.left(w);
            let wr = self.right(w);
            if !self.is_red(wl) && !self.is_red(wr) {
                // Case 2: recolor sibling, push double-black up.
                self.set_red(w, true);
                if self.is_red(parent) {
                    self.set_red(parent, false);
                    break;
                }
                path.pop();
                if let Some(&g) = path.last() {
                    is_left = self.left(g) == parent;
                }
                continue;
            }
            // Inner/outer children relative to the double-black side.
            let (inner, outer) = if is_left { (wl, wr) } else { (wr, wl) };
            let w = if !self.is_red(outer) {
                // Case 3: inner child red -> rotate the sibling toward the
                // outside, making the inner child the new sibling.
                self.set_red(inner, false);
                self.set_red(w, true);
                if is_left {
                    self.rotate_right_child_of(parent, w)
                } else {
                    self.rotate_left_child_of(parent, w)
                }
            } else {
                w
            };
            // Case 4: outer child red -> rotate parent toward the
            // double-black side; done.
            let parent_red = self.is_red(parent);
            self.set_red(w, parent_red);
            self.set_red(parent, false);
            if is_left {
                let wr = self.right(w);
                self.set_red(wr, false);
                self.rotate_left(parent, grand);
            } else {
                let wl = self.left(w);
                self.set_red(wl, false);
                self.rotate_right(parent, grand);
            }
            break;
        }
    }

    /// Rotate `w` (the right child of `parent`) to the right; returns the new
    /// right child of `parent`.
    fn rotate_right_child_of(&mut self, parent: u32, w: u32) -> u32 {
        self.stats.rotations += 1;
        let l = self.left(w);
        let lr = self.right(l);
        self.set_left(w, lr);
        self.set_right(l, w);
        self.set_right(parent, l);
        l
    }

    /// Rotate `w` (the left child of `parent`) to the left; returns the new
    /// left child of `parent`.
    fn rotate_left_child_of(&mut self, parent: u32, w: u32) -> u32 {
        self.stats.rotations += 1;
        let r = self.right(w);
        let rl = self.left(r);
        self.set_right(w, rl);
        self.set_left(r, w);
        self.set_left(parent, r);
        r
    }

    // ---- uncharged invariant checking (tests) -----------------------------------

    /// Verify all red-black invariants; panics with a description on failure.
    /// Uncharged: this is a test oracle, not part of any algorithm.
    pub fn validate(&self) {
        if self.root == NIL {
            return;
        }
        assert!(!self.nodes[self.root as usize].red, "root must be black");
        self.validate_rec(self.root, None, None);
    }

    fn validate_rec(&self, n: u32, lo: Option<Record>, hi: Option<Record>) -> usize {
        if n == NIL {
            return 1; // NIL contributes one black.
        }
        let node = &self.nodes[n as usize];
        if let Some(lo) = lo {
            assert!(node.key > lo, "BST order violated");
        }
        if let Some(hi) = hi {
            assert!(node.key < hi, "BST order violated");
        }
        if node.red {
            let lred = node.left != NIL && self.nodes[node.left as usize].red;
            let rred = node.right != NIL && self.nodes[node.right as usize].red;
            assert!(!lred && !rred, "red node with red child");
        }
        let bl = self.validate_rec(node.left, lo, Some(node.key));
        let br = self.validate_rec(node.right, Some(node.key), hi);
        assert_eq!(bl, br, "black-height mismatch");
        bl + usize::from(!node.red)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn insert_and_inorder_sorts() {
        let mut t = RbTree::new(MemCounter::new());
        for k in [5u64, 3, 9, 1, 7, 2, 8, 0, 6, 4] {
            assert!(t.insert(rec(k)));
            t.validate();
        }
        assert_eq!(t.len(), 10);
        let mut out = Vec::new();
        t.in_order(|r| out.push(r.key));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = RbTree::new(MemCounter::new());
        assert!(t.insert(rec(1)));
        assert!(!t.insert(rec(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn contains_and_min() {
        let mut t = RbTree::new(MemCounter::new());
        assert_eq!(t.min(), None);
        for k in [4u64, 2, 6] {
            t.insert(rec(k));
        }
        assert!(t.contains(rec(2)));
        assert!(!t.contains(rec(3)));
        assert_eq!(t.min(), Some(rec(2)));
    }

    #[test]
    fn random_inserts_keep_invariants() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut keys: Vec<u64> = (0..2000).collect();
        keys.shuffle(&mut rng);
        let mut t = RbTree::new(MemCounter::new());
        for &k in &keys {
            t.insert(rec(k));
        }
        t.validate();
        let mut out = Vec::new();
        t.in_order(|r| out.push(r.key));
        assert_eq!(out.len(), 2000);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sorted_and_reversed_inserts_keep_invariants() {
        for rev in [false, true] {
            let mut t = RbTree::new(MemCounter::new());
            let keys: Vec<u64> = if rev {
                (0..500).rev().collect()
            } else {
                (0..500).collect()
            };
            for k in keys {
                t.insert(rec(k));
                t.validate();
            }
            assert_eq!(t.min(), Some(rec(0)));
        }
    }

    #[test]
    fn delete_min_returns_ascending_and_keeps_invariants() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut keys: Vec<u64> = (0..500).collect();
        keys.shuffle(&mut rng);
        let mut t = RbTree::new(MemCounter::new());
        for &k in &keys {
            t.insert(rec(k));
        }
        for expect in 0..500u64 {
            let got = t.delete_min().unwrap();
            assert_eq!(got, rec(expect));
            t.validate();
        }
        assert!(t.is_empty());
        assert_eq!(t.delete_min(), None);
    }

    #[test]
    fn interleaved_insert_delete_min() {
        let mut t = RbTree::new(MemCounter::new());
        let mut reference = std::collections::BTreeSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::Rng;
        for _ in 0..3000 {
            if rng.gen_bool(0.6) || reference.is_empty() {
                let k = rng.gen_range(0..10_000u64);
                assert_eq!(t.insert(rec(k)), reference.insert(rec(k)));
            } else {
                assert_eq!(t.delete_min(), reference.pop_first());
            }
        }
        t.validate();
        assert_eq!(t.len(), reference.len());
    }

    #[test]
    fn writes_grow_linearly_with_n() {
        // The core §3 claim: inserts do O(1) amortized writes. Verify the
        // writes-per-insert ratio stays flat as n grows 16x.
        let ratio = |n: u64| {
            let c = MemCounter::new();
            let mut t = RbTree::new(c.clone());
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let mut keys: Vec<u64> = (0..n).collect();
            keys.shuffle(&mut rng);
            for k in keys {
                t.insert(rec(k));
            }
            c.writes() as f64 / n as f64
        };
        let small = ratio(1 << 10);
        let large = ratio(1 << 14);
        assert!(
            large < small * 1.5,
            "writes/insert should be ~constant: {small:.2} -> {large:.2}"
        );
        assert!(large < 12.0, "absolute writes/insert too high: {large:.2}");
    }

    #[test]
    fn reads_grow_superlinearly_with_n() {
        let reads = |n: u64| {
            let c = MemCounter::new();
            let mut t = RbTree::new(c.clone());
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let mut keys: Vec<u64> = (0..n).collect();
            keys.shuffle(&mut rng);
            for k in keys {
                t.insert(rec(k));
            }
            c.reads() as f64 / n as f64
        };
        let r1 = reads(1 << 10);
        let r2 = reads(1 << 14);
        assert!(r2 > r1 + 2.0, "reads/insert should grow with log n");
    }

    #[test]
    fn general_delete_matches_btreeset() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut t = RbTree::new(MemCounter::new());
        let mut reference = std::collections::BTreeSet::new();
        for round in 0..5000 {
            let k = rng.gen_range(0..800u64);
            if rng.gen_bool(0.55) {
                assert_eq!(t.insert(rec(k)), reference.insert(rec(k)));
            } else {
                assert_eq!(t.delete(rec(k)), reference.remove(&rec(k)), "round {round}");
            }
            if round % 64 == 0 {
                t.validate();
            }
            assert_eq!(t.len(), reference.len());
        }
        t.validate();
        let mut out = Vec::new();
        t.in_order(|r| out.push(r));
        assert_eq!(out, reference.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn delete_absent_key_is_noop() {
        let mut t = RbTree::new(MemCounter::new());
        assert!(!t.delete(rec(5)));
        t.insert(rec(1));
        assert!(!t.delete(rec(2)));
        assert_eq!(t.len(), 1);
        assert!(t.delete(rec(1)));
        assert!(t.is_empty());
        assert!(!t.delete(rec(1)));
    }

    #[test]
    fn delete_interior_nodes_with_two_children() {
        let mut t = RbTree::new(MemCounter::new());
        for k in 0..64u64 {
            t.insert(rec(k));
        }
        // Delete in an order that repeatedly hits two-child interior nodes.
        for k in [31u64, 15, 47, 7, 23, 39, 55, 32, 16, 48] {
            assert!(t.delete(rec(k)));
            t.validate();
            assert!(!t.contains(rec(k)));
        }
        assert_eq!(t.len(), 54);
    }

    #[test]
    fn deletes_have_amortized_constant_writes() {
        use rand::seq::SliceRandom;
        let n = 1u64 << 13;
        let c = MemCounter::new();
        let mut t = RbTree::new(c.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut keys: Vec<u64> = (0..n).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            t.insert(rec(k));
        }
        let before = c.writes();
        keys.shuffle(&mut rng);
        for &k in &keys {
            assert!(t.delete(rec(k)));
        }
        let per_delete = (c.writes() - before) as f64 / n as f64;
        assert!(
            per_delete < 8.0,
            "deletes should write O(1) amortized, got {per_delete:.2}"
        );
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut t = RbTree::new(MemCounter::new());
        for k in 0..100u64 {
            t.insert(rec(k));
        }
        for _ in 0..50 {
            t.delete_min();
        }
        let before = t.nodes.len();
        for k in 200..250u64 {
            t.insert(rec(k));
        }
        assert_eq!(t.nodes.len(), before, "freed slots should be reused");
        t.validate();
    }
}

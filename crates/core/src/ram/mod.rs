//! §3 — sorting and priority queues on the Asymmetric RAM.
//!
//! The observation driving this section of the paper: inserting n records
//! into a balanced search tree costs O(n log n) reads but only O(n) writes,
//! because red-black trees perform O(1) *amortized* structural writes per
//! insertion. Reading the records off in order is another O(n) reads plus n
//! output writes. Total: O(n log n) reads, O(n) writes, asymmetric cost
//! O(n(ω + log n)) — versus O(ω n log n) for a conventional in-place sort.

pub mod dict;
pub mod pq;
pub mod rbtree;
pub mod tree_sort;

pub use dict::RamDictionary;
pub use pq::RamPriorityQueue;
pub use rbtree::{RbStats, RbTree};
pub use tree_sort::{tree_sort, tree_sort_with_counter};

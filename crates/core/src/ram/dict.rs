//! §3 — a write-efficient comparison-based dictionary.
//!
//! The paper: "we can maintain … comparison-based dictionaries (insert,
//! delete and search) in O(1) writes per operation." [`RamDictionary`] maps
//! `u64` keys to `u64` values on top of the instrumented red-black tree
//! (keys ride in the record's key field, values in the payload), so every
//! operation's read/write cost is measured on the attached counter.

use super::rbtree::{RbStats, RbTree};
use asym_model::{MemCounter, Record};

/// A key → value dictionary with O(log n) reads and O(1) amortized writes
/// per update.
pub struct RamDictionary {
    tree: RbTree,
}

impl RamDictionary {
    /// An empty dictionary charging `counter`.
    pub fn new(counter: MemCounter) -> Self {
        Self {
            tree: RbTree::new(counter),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Insert or replace; returns the previous value if the key existed.
    ///
    /// A replace is delete + insert of the record pair (the tree keys on
    /// (key, value) jointly, so an in-place payload update would corrupt the
    /// ordering only if payloads participated in routing — they do for ties,
    /// hence the remove-then-insert).
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let old = self.get(key);
        if let Some(v) = old {
            self.tree.delete(Record::new(key, v));
        }
        let ok = self.tree.insert(Record::new(key, value));
        debug_assert!(ok);
        old
    }

    /// Look up a key (O(log n) reads, zero writes).
    pub fn get(&self, key: u64) -> Option<u64> {
        // Records with equal keys are ordered by payload; search for the
        // smallest record with this key via the tree's ordered iteration
        // boundary. Since the dictionary never stores two payloads for one
        // key, a range probe on (key, 0)..=(key, MAX) has at most one hit —
        // implemented as a classic descent.
        self.tree.find_by_key(key).map(|r| r.payload)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let old = self.get(key)?;
        let removed = self.tree.delete(Record::new(key, old));
        debug_assert!(removed);
        Some(old)
    }

    /// All (key, value) pairs in key order.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len());
        self.tree.in_order(|r| out.push((r.key, r.payload)));
        out
    }

    /// Structural statistics of the underlying tree.
    pub fn stats(&self) -> RbStats {
        self.tree.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d = RamDictionary::new(MemCounter::new());
        assert_eq!(d.insert(3, 30), None);
        assert_eq!(d.insert(1, 10), None);
        assert_eq!(d.get(3), Some(30));
        assert_eq!(d.get(2), None);
        assert_eq!(d.insert(3, 33), Some(30));
        assert_eq!(d.get(3), Some(33));
        assert_eq!(d.remove(3), Some(33));
        assert_eq!(d.remove(3), None);
        assert_eq!(d.len(), 1);
        assert!(d.contains_key(1));
    }

    #[test]
    fn matches_hashmap_under_random_ops() {
        let mut d = RamDictionary::new(MemCounter::new());
        let mut reference = std::collections::HashMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..4000 {
            let k = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen_range(0..1000u64);
                    assert_eq!(d.insert(k, v), reference.insert(k, v));
                }
                1 => assert_eq!(d.remove(k), reference.remove(&k)),
                _ => assert_eq!(d.get(k), reference.get(&k).copied()),
            }
            assert_eq!(d.len(), reference.len());
        }
        let mut expect: Vec<(u64, u64)> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(d.entries(), expect);
    }

    #[test]
    fn writes_per_op_are_constant() {
        let c = MemCounter::new();
        let mut d = RamDictionary::new(c.clone());
        let n = 1u64 << 13;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..n {
            d.insert(rng.gen_range(0..u64::MAX), 1);
        }
        let wpo = c.writes() as f64 / n as f64;
        assert!(wpo < 8.0, "writes/op {wpo:.2} should be O(1)");
    }

    #[test]
    fn entries_sorted_by_key() {
        let mut d = RamDictionary::new(MemCounter::new());
        for k in [5u64, 1, 9, 3] {
            d.insert(k, k * 10);
        }
        assert_eq!(d.entries(), vec![(1, 10), (3, 30), (5, 50), (9, 90)]);
    }
}

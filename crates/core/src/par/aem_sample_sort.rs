//! The modeled parallel AEM sample sort: per-lane cost charging through a
//! sharded [`ParMachine`], span from the `wd-sim` cost algebra, and a
//! simulated work-stealing execution of the phase DAG.
//!
//! This is the executable version of the paper's parallel story (§4–§5):
//! write-efficiency only pays off if the *parallel schedule* preserves it,
//! so every phase here charges its modeled block transfers to the lane that
//! performs them and the run reports both the per-lane split and the merged
//! work aggregate. The phase schedule:
//!
//! 1. **sample-scan** (all lanes): the input is split into block-aligned
//!    chunks, one per lane; each lane scans its own chunk (charged reads)
//!    and keeps the records whose *global index* hashes into the sample —
//!    membership is a pure function of `(seed, index)`, so the sample, the
//!    splitters, and every bucket boundary are independent of the lane
//!    count.
//! 2. **splitter-sort** (lane 0): the sample is streamed to lane 0's disk
//!    (charged writes), sorted with the serial AEM mergesort, and streamed
//!    back once to pick the splitters at evenly spaced positions. A sample
//!    that arrives already in order (sorted or all-duplicate inputs) skips
//!    the disk sort — the decision is a property of the sample, never of
//!    the lane layout.
//! 3. **count** (all lanes): each lane re-scans its chunk and counts
//!    records per bucket, holding the splitters under a primary-memory
//!    lease.
//! 4. **exchange** (all lanes): each lane re-scans its chunk, routing every
//!    record to its bucket; buckets are owned round-robin by lane
//!    (`bucket % lanes`) and the owner writes each bucket as a dense block
//!    run on its own store — every output block is written exactly once by
//!    exactly one lane, so total writes are `Σ_b ⌈len_b/B⌉` no matter how
//!    many lanes participate.
//! 5. **bucket-sort** (owner lanes): buckets that fit in a lane's primary
//!    memory are read (charged), sorted in memory (free RAM ops), and
//!    written back (charged); oversized buckets — including the
//!    duplicate-heavy degenerate-skew case — run the serial AEM mergesort
//!    on the owner's machine, whose `(Record, provenance)` merge keys
//!    handle duplicates exactly. Deterministic, so transfer counts depend
//!    only on the bucket, never on the lane layout.
//!
//! Phases are barriers: per-lane transfer deltas become
//! [`Cost`] strands, a phase is their parallel composition (depth maxes),
//! and the run's span is the sequential composition over phases. The same
//! per-lane weights feed a [`Task::phases`] tree executed by
//! [`wd_sim::simulate_work_stealing`], so the reported time includes the
//! scheduler's actual lane imbalance and steal traffic.
//!
//! **Work-preservation invariant**: merged `(reads, writes)` across lanes
//! are *identical for every lane count* on the same input and seed —
//! chunks are block-aligned (read totals telescope to `⌈n/B⌉` per scan)
//! and all writes are bucket- or sample-granular. The differential battery
//! in `tests/par_sorts_agree.rs` pins this down; experiment E13 tabulates
//! it.
//!
//! **Model idealizations** (stated, not hidden): records in flight between
//! lanes — the oversample collected in phase 1 and the all-to-all exchange
//! of phase 4 — pass through *host* memory without a primary-memory lease.
//! This is the paper's own accounting: inter-processor communication is
//! free in the work-depth part of the model, and the owner-writes-once
//! bucket discipline is what its parallel distribution sorts obtain from a
//! prefix-sum step that block-aligns every bucket's output region, giving
//! the lane-independent `Σ_b ⌈len_b/B⌉` write total. A strictly M-bounded
//! exchange (the serial partition's round-of-M/B-buckets discipline,
//! `em::samplesort::partition`) would instead write per-(lane, bucket)
//! partial blocks — `Σ_w Σ_b ⌈len_{w,b}/B⌉`, larger and lane-*dependent* —
//! which is precisely the write inflation the paper's schedule avoids and
//! this invariant demonstrates. The final gather into one host vector is
//! likewise uncharged: the distributed sorted runs are the output.

use super::splitters::{bucket_of, dedup_splitters, splitter_positions};
use crate::em::mergesort::{aem_mergesort_opts, mergesort_slack, MergeOpts};
use asym_model::{ModelError, Record, Result};
use em_sim::{EmStats, EmVec, EmWriter, ParMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wd_sim::{simulate_work_stealing_traced, Cost, StealStats, Task};

/// Extra primary memory each lane needs beyond `M`: the serial mergesort's
/// slack (splitter-sort and oversized-bucket phases) or the splitter table
/// (`⌈M/B⌉` records), plus two block buffers (a cursor and an output
/// writer can be open at once).
pub fn par_samplesort_slack(m: usize, b: usize, k: usize) -> usize {
    2 * b + mergesort_slack(m, b, k).max(m.div_ceil(b))
}

/// Everything one modeled parallel sort run measured.
pub struct ParSortRun {
    /// The sorted records (gathered from the lanes' sorted runs, uncharged —
    /// the distributed runs *are* the algorithm's output).
    pub output: Vec<Record>,
    /// Final per-lane transfer stats, in worker order.
    pub lane_stats: Vec<EmStats>,
    /// The lanes merged into the work aggregate ([`EmStats::merge`]).
    pub merged: EmStats,
    /// Per-phase parallel cost (work adds, depth maxes across lanes).
    pub phase_costs: Vec<(&'static str, Cost)>,
    /// Total cost: phases in sequence. `cost.depth` is the modeled span.
    pub cost: Cost,
    /// A simulated work-stealing execution of the phase task tree on
    /// `lanes` processors.
    pub sched: StealStats,
}

impl ParSortRun {
    /// Modeled parallel time lower bound `max(work/p, span)` for `p` lanes.
    pub fn greedy_lower_bound(&self, omega: u64, lanes: usize) -> u64 {
        (self.cost.work(omega) / lanes as u64).max(self.cost.depth)
    }
}

/// Tracks per-lane transfer deltas between phase barriers.
struct PhaseLog<'a> {
    par: &'a ParMachine,
    last: Vec<EmStats>,
    phases: Vec<(&'static str, Vec<Cost>)>,
}

impl<'a> PhaseLog<'a> {
    fn new(par: &'a ParMachine) -> Self {
        Self {
            par,
            last: par.lane_stats(),
            phases: Vec::new(),
        }
    }

    /// Close the current phase: per-lane `(Δreads, Δwrites)` become strands.
    fn barrier(&mut self, name: &'static str) {
        let omega = self.par.omega();
        let now = self.par.lane_stats();
        let costs = now
            .iter()
            .zip(&self.last)
            .map(|(cur, prev)| {
                Cost::strand(
                    cur.block_reads - prev.block_reads,
                    cur.block_writes - prev.block_writes,
                    omega,
                )
            })
            .collect();
        self.phases.push((name, costs));
        self.last = now;
    }
}

/// Sort `input` on the sharded machine `par`, charging modeled transfers to
/// the lane that performs them. `k` is the write-saving factor forwarded to
/// the serial AEM mergesort used for the sample and for oversized buckets;
/// `seed` drives sampling and the scheduler simulation. Lanes must be
/// configured with [`par_samplesort_slack`] of slack.
///
/// Runs are deterministic in `(input, geometry, k, seed)`; merged reads and
/// writes are additionally independent of the lane count (see the module
/// docs). Every intermediate block is released, so a run leaves the lanes'
/// stores exactly as it found them.
#[deprecated(
    since = "0.2.0",
    note = "use the unified job API: `asym_core::sort::SortSpec` + the \
            `par-aem-samplesort` entry of `asym_core::sort::sorters()`"
)]
pub fn par_aem_sample_sort(
    par: &ParMachine,
    input: &[Record],
    k: usize,
    seed: u64,
) -> Result<ParSortRun> {
    par_sample_sort_run(par, input, k, seed, false).map(|(run, _)| run)
}

/// The parallel sample-sort engine behind both the deprecated free function
/// and the `sort::Sorter` adapter (one code path, so the two are
/// cost-identical by construction).
///
/// When `charge_steals` is set, the §2 cache-warm-up charge is folded into
/// the lane stats after the scheduler simulation: each successful steal
/// charges its *thief* lane `M/B` block reads (reloading a primary memory's
/// worth of working set) and, pessimistically, `M/B` block writes (the
/// stolen working set's lines may be dirty) — the `Qp ≤ Q1 + O(p·D·M/B)`
/// accounting. The charge is appended as a final `steal-warmup` phase so
/// `phase_costs` still compose to `cost` and `cost.{reads,writes}` still
/// equal the merged machine counters; the scheduler simulation itself runs
/// on the *uncharged* phase tree (the warm-up is a cache-accounting overlay
/// on the schedule, not extra scheduled work). The second return value is
/// the total warm-up charge (zero when disabled), so callers can recover
/// the schedule-invariant base counts by subtraction.
pub(crate) fn par_sample_sort_run(
    par: &ParMachine,
    input: &[Record],
    k: usize,
    seed: u64,
    charge_steals: bool,
) -> Result<(ParSortRun, EmStats)> {
    assert!(k >= 1, "k must be at least 1");
    let cfg = par.cfg();
    let (m, b) = (cfg.m, cfg.b);
    let p = par.lanes();
    if m / b < 2 {
        return Err(ModelError::Invariant(format!(
            "branching factor M/B = {} must be at least 2",
            m / b
        )));
    }
    let n = input.len();
    if n == 0 {
        return Ok((
            ParSortRun {
                output: Vec::new(),
                lane_stats: par.lane_stats(),
                merged: par.merged_stats(),
                phase_costs: Vec::new(),
                cost: Cost::ZERO,
                sched: StealStats::default(),
            },
            EmStats::default(),
        ));
    }
    let mut log = PhaseLog::new(par);

    // Stage: block-aligned chunks, one per lane (uncharged input setup).
    // Block alignment makes per-scan read totals telescope to ⌈n/B⌉
    // regardless of p.
    let total_blocks = n.div_ceil(b);
    let blocks_per_lane = total_blocks.div_ceil(p);
    let mut chunks: Vec<(usize, EmVec)> = Vec::with_capacity(p);
    for w in 0..p {
        let lo = (w * blocks_per_lane * b).min(n);
        let hi = ((w + 1) * blocks_per_lane * b).min(n);
        chunks.push((lo, EmVec::stage(par.lane(w), &input[lo..hi])));
    }

    // Phase 1 — sample-scan: every lane scans its own chunk; membership is
    // decided per *global* index, so the sample is lane-count-invariant.
    let num_buckets = n.div_ceil(m).clamp(2, (m / b).max(2));
    let target = ((4.0 * num_buckets as f64 * (n.max(2) as f64).ln()).ceil() as u64)
        .max(2 * num_buckets as u64)
        .min(n as u64);
    let mut sample: Vec<Record> = Vec::new();
    for (w, (start, chunk)) in chunks.iter().enumerate() {
        let mut reader = chunk.reader(par.lane(w))?;
        let mut index = *start as u64;
        while let Some(r) = reader.next() {
            if super::splitters::sampled(seed, index, n as u64, target) {
                sample.push(r);
            }
            index += 1;
        }
    }
    log.barrier("sample-scan");

    // Phase 2 — splitter-sort on lane 0: stream the sample to disk, sort it
    // with the serial AEM mergesort, stream it back once keeping only the
    // evenly spaced picks.
    let lane0 = par.lane(0);
    let splitters = if sample.windows(2).all(|w| w[0] <= w[1]) {
        // The sample arrived already in order (sorted or all-duplicate
        // inputs): picking splitters from it is free RAM work on records the
        // scan already holds. A property of the sample, so the branch cannot
        // depend on the lane count.
        dedup_splitters(
            splitter_positions(sample.len(), num_buckets)
                .into_iter()
                .map(|i| sample[i])
                .collect(),
        )
    } else {
        let mut writer = EmWriter::new(lane0)?;
        writer.extend(sample.drain(..));
        let sorted = aem_mergesort_opts(lane0, writer.finish(), 1, MergeOpts::default())?;
        let positions = splitter_positions(sorted.len(), num_buckets);
        let mut picks = Vec::with_capacity(positions.len());
        {
            let mut reader = sorted.reader(lane0)?;
            let mut next = positions.into_iter().peekable();
            let mut idx = 0usize;
            while let Some(r) = reader.next() {
                if next.peek() == Some(&idx) {
                    picks.push(r);
                    next.next();
                }
                idx += 1;
            }
        }
        sorted.free(lane0);
        dedup_splitters(picks)
    };
    let buckets = splitters.len() + 1;
    log.barrier("splitter-sort");

    // Phase 3 — count: each lane holds the splitter table under lease and
    // tallies its chunk.
    let mut counts: Vec<Vec<u64>> = vec![vec![0; buckets]; p];
    for (w, (_, chunk)) in chunks.iter().enumerate() {
        let lane = par.lane(w);
        let _splitter_lease = lane.lease(splitters.len().max(1))?;
        let mut reader = chunk.reader(lane)?;
        while let Some(r) = reader.next() {
            counts[w][bucket_of(&splitters, r)] += 1;
        }
    }
    log.barrier("count");

    // Phase 4 — exchange: re-scan chunks routing records to buckets; the
    // owner lane (bucket % p) writes each bucket as a dense block run, so
    // every output block is written exactly once.
    let mut bucket_data: Vec<Vec<Record>> = (0..buckets)
        .map(|j| Vec::with_capacity(counts.iter().map(|c| c[j] as usize).sum()))
        .collect();
    for (w, (_, chunk)) in chunks.iter().enumerate() {
        let lane = par.lane(w);
        let _splitter_lease = lane.lease(splitters.len().max(1))?;
        let mut reader = chunk.reader(lane)?;
        while let Some(r) = reader.next() {
            bucket_data[bucket_of(&splitters, r)].push(r);
        }
    }
    for (w, (_, chunk)) in chunks.into_iter().enumerate() {
        chunk.free(par.lane(w));
    }
    let mut runs: Vec<(usize, EmVec)> = Vec::with_capacity(buckets);
    for (j, data) in bucket_data.into_iter().enumerate() {
        let owner = j % p;
        let lane = par.lane(owner);
        let mut writer = EmWriter::new(lane)?;
        writer.extend(data);
        runs.push((owner, writer.finish()));
    }
    log.barrier("exchange");

    // Phase 5 — bucket-sort on the owner lanes.
    let mut sorted_runs: Vec<(usize, EmVec)> = Vec::with_capacity(runs.len());
    for (owner, run) in runs {
        let lane = par.lane(owner);
        if run.len() <= m {
            // In-memory: read the bucket under a full lease, sort with free
            // RAM operations, write the sorted run back.
            let lease = lane.lease(run.len().max(1))?;
            let mut data = run.reader(lane)?.drain();
            run.free(lane);
            data.sort_unstable();
            let mut writer = EmWriter::new(lane)?;
            writer.extend(data);
            drop(lease);
            sorted_runs.push((owner, writer.finish()));
        } else {
            // Oversized (skew): the serial write-efficient mergesort on the
            // owner's machine; deterministic, so its costs depend only on
            // the bucket content. Its `(Record, provenance)` merge keys make
            // duplicate-heavy buckets — up to every record equal, the
            // all-duplicates adversary — sort exactly, so degenerate skew
            // needs no special casing here.
            sorted_runs.push((
                owner,
                aem_mergesort_opts(lane, run, k, MergeOpts::default())?,
            ));
        }
    }
    log.barrier("bucket-sort");

    // Gather (uncharged oracle): the distributed sorted runs are the
    // algorithm's output; collecting them into one host vector is test
    // plumbing, not a modeled transfer.
    let mut output = Vec::with_capacity(n);
    for (owner, run) in sorted_runs {
        output.extend(run.read_all_uncharged(par.lane(owner)));
        run.free(par.lane(owner));
    }
    debug_assert_eq!(output.len(), n, "sort must conserve records");

    // Scheduler simulation over the measured (uncharged) phase tree: the
    // same per-lane depths the cost algebra uses become leaf weights.
    let lane_depths: Vec<Vec<u64>> = log
        .phases
        .iter()
        .map(|(_, lanes)| lanes.iter().map(|c| c.depth).collect())
        .collect();
    let task = Task::phases(&lane_depths);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5C4E_D01E);
    let trace = simulate_work_stealing_traced(&task, p, &mut rng);
    let sched = trace.stats;

    // §2 steal-aware cache warm-up charge (knob; see the function docs).
    let mut warmup = EmStats::default();
    if charge_steals {
        let mb = (m.div_ceil(b)) as u64;
        let omega = par.omega();
        let strands: Vec<Cost> = trace
            .steals_by_thief
            .iter()
            .enumerate()
            .map(|(w, &steals)| {
                let blocks = steals * mb;
                par.lane(w).charge_reads(blocks);
                par.lane(w).charge_writes(blocks);
                warmup.block_reads += blocks;
                warmup.block_writes += blocks;
                Cost::strand(blocks, blocks, omega)
            })
            .collect();
        log.phases.push(("steal-warmup", strands));
    }

    // Costs: phases in sequence, lanes in parallel within a phase.
    let phase_costs: Vec<(&'static str, Cost)> = log
        .phases
        .iter()
        .map(|(name, lanes)| (*name, Cost::par_all(lanes.iter().copied())))
        .collect();
    let cost = Cost::seq_all(phase_costs.iter().map(|(_, c)| *c));

    Ok((
        ParSortRun {
            output,
            lane_stats: par.lane_stats(),
            merged: par.merged_stats(),
            phase_costs,
            cost,
            sched,
        },
        warmup,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;
    use em_sim::EmConfig;

    fn par(m: usize, b: usize, omega: u64, k: usize, lanes: usize) -> ParMachine {
        ParMachine::new(
            EmConfig::new(m, b, omega).with_slack(par_samplesort_slack(m, b, k)),
            lanes,
        )
    }

    #[test]
    fn sorts_all_workloads_across_lane_counts() {
        for wl in Workload::ALL {
            let input = wl.generate(3000, 21);
            for lanes in [1usize, 3, 8] {
                let machine = par(32, 4, 8, 2, lanes);
                let run = par_aem_sample_sort(&machine, &input, 2, 42).expect("sort");
                assert_sorted_permutation(&input, &run.output);
                assert_eq!(machine.live_blocks(), 0, "leaked blocks ({wl:?}, {lanes})");
            }
        }
    }

    #[test]
    fn merged_work_is_lane_count_invariant() {
        let input = Workload::UniformRandom.generate(5000, 3);
        let reference = {
            let machine = par(64, 8, 16, 2, 1);
            par_aem_sample_sort(&machine, &input, 2, 7).expect("serial run")
        };
        for lanes in [2usize, 4, 8] {
            let machine = par(64, 8, 16, 2, lanes);
            let run = par_aem_sample_sort(&machine, &input, 2, 7).expect("lane run");
            assert_eq!(
                run.merged.block_writes, reference.merged.block_writes,
                "lanes={lanes}: write totals must be preserved"
            );
            assert_eq!(
                run.merged.block_reads, reference.merged.block_reads,
                "lanes={lanes}: read totals must be preserved"
            );
            assert_eq!(run.output, reference.output);
        }
    }

    #[test]
    fn span_shrinks_and_respects_brent_bounds() {
        let input = Workload::UniformRandom.generate(8000, 9);
        let serial = {
            let machine = par(64, 8, 8, 1, 1);
            par_aem_sample_sort(&machine, &input, 1, 5).expect("serial")
        };
        let wide = {
            let machine = par(64, 8, 8, 1, 8);
            par_aem_sample_sort(&machine, &input, 1, 5).expect("wide")
        };
        assert!(
            wide.cost.depth < serial.cost.depth,
            "span must shrink with lanes: {} vs {}",
            wide.cost.depth,
            serial.cost.depth
        );
        // The simulated schedule can't beat the greedy lower bound and the
        // sim executes exactly the modeled work.
        assert!(wide.sched.time >= wide.greedy_lower_bound(8, 8));
        assert_eq!(wide.sched.work, wide.cost.work(8));
        assert_eq!(serial.sched.steals, 0, "one lane cannot steal");
    }

    #[test]
    fn phase_costs_compose_to_the_total() {
        let input = Workload::Zipf.generate(2000, 13);
        let machine = par(32, 4, 4, 1, 4);
        let run = par_aem_sample_sort(&machine, &input, 1, 11).expect("sort");
        assert_eq!(run.phase_costs.len(), 5);
        let recomposed = Cost::seq_all(run.phase_costs.iter().map(|(_, c)| *c));
        assert_eq!(recomposed, run.cost);
        // Merged machine counters agree with the cost algebra's work split.
        assert_eq!(run.cost.reads, run.merged.block_reads);
        assert_eq!(run.cost.writes, run.merged.block_writes);
    }

    #[test]
    fn tiny_and_degenerate_inputs() {
        for n in [0usize, 1, 3, 7, 8, 9] {
            let input = Workload::Reversed.generate(n, 1);
            for lanes in [1usize, 4] {
                let machine = par(16, 4, 2, 1, lanes);
                let run = par_aem_sample_sort(&machine, &input, 1, 0).expect("sort");
                assert_sorted_permutation(&input, &run.output);
                assert_eq!(machine.live_blocks(), 0);
            }
        }
    }

    #[test]
    fn all_identical_records_collapse_to_one_bucket() {
        let input = vec![Record::new(5, 5); 4000];
        for lanes in [1usize, 4] {
            let machine = par(32, 4, 8, 2, lanes);
            let run = par_aem_sample_sort(&machine, &input, 2, 19).expect("sort");
            assert_eq!(run.output, input);
            assert_eq!(machine.live_blocks(), 0);
        }
    }

    #[test]
    fn steal_warmup_charge_folds_into_lane_stats() {
        let input = Workload::UniformRandom.generate(6000, 17);
        let base = {
            let machine = par(32, 4, 8, 1, 4);
            par_sample_sort_run(&machine, &input, 1, 23, false).expect("base")
        };
        let charged = {
            let machine = par(32, 4, 8, 1, 4);
            par_sample_sort_run(&machine, &input, 1, 23, true).expect("charged")
        };
        assert_eq!(base.1, EmStats::default(), "knob off charges nothing");
        let (run, warmup) = charged;
        // Same schedule, same output, same scheduler run.
        assert_eq!(run.output, base.0.output);
        assert_eq!(run.sched, base.0.sched);
        // Warm-up totals: M/B reads + M/B writes per successful steal.
        let mb = 32u64 / 4;
        assert_eq!(warmup.block_reads, run.sched.steals * mb);
        assert_eq!(warmup.block_writes, run.sched.steals * mb);
        assert!(run.sched.steals > 0, "4 lanes with imbalance should steal");
        // Folded into the machine counters: merged = base + warm-up, and the
        // cost algebra stays consistent with the counters.
        assert_eq!(
            run.merged.block_reads,
            base.0.merged.block_reads + warmup.block_reads
        );
        assert_eq!(
            run.merged.block_writes,
            base.0.merged.block_writes + warmup.block_writes
        );
        assert_eq!(run.cost.reads, run.merged.block_reads);
        assert_eq!(run.cost.writes, run.merged.block_writes);
        assert_eq!(run.phase_costs.len(), 6, "steal-warmup appended as a phase");
        assert_eq!(run.phase_costs[5].0, "steal-warmup");
        // Per-lane: lane stats sum to the merged aggregate still.
        assert_eq!(EmStats::merge_all(run.lane_stats.clone()), run.merged);
    }

    #[test]
    fn deterministic_given_seed() {
        let input = Workload::NearlySorted.generate(4000, 2);
        let a = par_aem_sample_sort(&par(32, 4, 8, 1, 4), &input, 1, 23).expect("a");
        let b = par_aem_sample_sort(&par(32, 4, 8, 1, 4), &input, 1, 23).expect("b");
        assert_eq!(a.output, b.output);
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.sched, b.sched);
    }
}

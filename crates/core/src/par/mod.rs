//! A real multi-threaded sample sort (crossbeam scoped threads).
//!
//! The PRAM algorithms in [`crate::pram`] are *interpreted* single-threaded
//! with measured work-depth costs; this module is the executable
//! counterpart used for wall-clock benchmarking: splitter-based bucketing
//! with per-thread counting, a shared prefix, and parallel per-bucket
//! sorts. Statistics are per-thread and merged at the end, so the
//! instrumentation does not serialize the threads.

pub mod sample_sort;

pub use sample_sort::par_sample_sort;

//! Parallel sample sorts: a threaded wall-clock executor and a modeled
//! lane executor.
//!
//! The PRAM algorithms in [`crate::pram`] are *interpreted* single-threaded
//! with measured work-depth costs; this module holds the two executable
//! counterparts of the parallel story:
//!
//! * [`par_sample_sort`] — real crossbeam threads for wall-clock
//!   benchmarking: splitter-based bucketing with per-thread counting, a
//!   shared prefix, and parallel per-bucket sorts.
//! * [`par_aem_sample_sort`] — the *modeled* parallel AEM sort: the same
//!   splitter discipline run against a sharded
//!   [`ParMachine`](em_sim::ParMachine), charging block reads and ω-cost
//!   writes to the lane that performs them, with span from `wd-sim`'s cost
//!   algebra and a simulated work-stealing execution of the phase DAG.
//!   Its key invariant — merged write totals are identical for every lane
//!   count — is what makes the paper's write bounds meaningful under
//!   parallel execution.
//!
//! Both reduce their sorted sample through [`splitters`], so they bucket
//! identically given the same sample.

pub mod aem_sample_sort;
pub mod sample_sort;
pub mod splitters;

pub use aem_sample_sort::{par_aem_sample_sort, par_samplesort_slack, ParSortRun};
pub use sample_sort::par_sample_sort;

//! Threaded splitter-based sample sort.
//!
//! This is the wall-clock executor; its modeled counterpart
//! ([`crate::par::par_aem_sample_sort`]) runs the same splitter/partition
//! discipline against per-lane `EmMachine`s and the `wd-sim` scheduler.
//! Both reduce their sorted sample through
//! [`super::splitters::splitters_from_sorted_sample`], so the two executors
//! bucket identically given the same sample.

use super::splitters::{bucket_of, splitters_from_sorted_sample};
use asym_model::Record;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sort `input` using `threads` worker threads.
///
/// Phases: (1) oversample and pick `threads − 1` splitters; (2) each worker
/// counts its chunk's records per bucket; (3) a prefix over the
/// threads × buckets count matrix assigns disjoint output slices; (4) each
/// worker scatters its chunk; (5) workers sort the buckets in parallel.
pub fn par_sample_sort(input: &[Record], threads: usize, seed: u64) -> Vec<Record> {
    let n = input.len();
    let p = threads.max(1);
    if n < 4 * p || p == 1 {
        let mut out = input.to_vec();
        out.sort_unstable();
        return out;
    }
    // Phase 1: splitters from an oversampled host-side sample.
    let mut rng = StdRng::seed_from_u64(seed);
    let oversample = 16 * p;
    let mut sample: Vec<Record> = input
        .choose_multiple(&mut rng, oversample.min(n))
        .copied()
        .collect();
    sample.sort_unstable();
    let splitters = splitters_from_sorted_sample(&sample, p);
    let buckets = splitters.len() + 1;

    // Phase 2: per-worker bucket counts.
    let chunk = n.div_ceil(p);
    let chunks: Vec<&[Record]> = input.chunks(chunk).collect();
    let workers = chunks.len();
    let mut counts: Vec<Vec<usize>> = vec![vec![0; buckets]; workers];
    crossbeam::scope(|s| {
        for (w, (my_chunk, my_counts)) in chunks.iter().zip(counts.iter_mut()).enumerate() {
            let splitters = &splitters;
            let _ = w;
            s.spawn(move |_| {
                for r in *my_chunk {
                    my_counts[bucket_of(splitters, *r)] += 1;
                }
            });
        }
    })
    .expect("counting workers");

    // Phase 3: bucket-major prefix assigns each (bucket, worker) a slice.
    let mut offsets: Vec<Vec<usize>> = vec![vec![0; buckets]; workers];
    let mut acc = 0usize;
    let mut bucket_bounds: Vec<usize> = Vec::with_capacity(buckets + 1);
    for b in 0..buckets {
        bucket_bounds.push(acc);
        for w in 0..workers {
            offsets[w][b] = acc;
            acc += counts[w][b];
        }
    }
    bucket_bounds.push(acc);
    debug_assert_eq!(acc, n);

    // Phase 4: parallel scatter into disjoint slices of one output vector.
    let mut output: Vec<Record> = vec![Record::default(); n];
    {
        // Split the output into raw disjoint cells via unsafe-free approach:
        // each worker owns a set of (start, len) ranges; use split_at_mut
        // repeatedly is awkward for interleaved ranges, so scatter via a
        // shared UnsafeCell-free fallback: sequential scatter per worker is
        // still parallel across workers through chunk ownership of *source*;
        // the destination ranges are disjoint by construction, so we use
        // pointer arithmetic guarded by that invariant.
        struct SendPtr(*mut Record);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let base = SendPtr(output.as_mut_ptr());
        let base_ref = &base;
        crossbeam::scope(|s| {
            for (my_chunk, my_offsets) in chunks.iter().zip(offsets.iter()) {
                let splitters = &splitters;
                let mut cursors = my_offsets.clone();
                s.spawn(move |_| {
                    for r in *my_chunk {
                        let b = bucket_of(splitters, *r);
                        // SAFETY: cursor ranges [offsets[w][b],
                        // offsets[w][b]+counts[w][b]) are pairwise disjoint
                        // across workers and buckets by the phase-3 prefix.
                        unsafe {
                            *base_ref.0.add(cursors[b]) = *r;
                        }
                        cursors[b] += 1;
                    }
                });
            }
        })
        .expect("scatter workers");
    }

    // Phase 5: sort buckets in parallel (disjoint slices via split_at_mut).
    {
        let mut rest: &mut [Record] = &mut output;
        let mut slices: Vec<&mut [Record]> = Vec::with_capacity(buckets);
        let mut prev = 0usize;
        for &bound in &bucket_bounds[1..=buckets] {
            let (head, tail) = rest.split_at_mut(bound - prev);
            slices.push(head);
            rest = tail;
            prev = bound;
        }
        crossbeam::scope(|s| {
            for slice in slices {
                s.spawn(move |_| slice.sort_unstable());
            }
        })
        .expect("bucket sort workers");
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;

    #[test]
    fn sorts_all_workloads_across_thread_counts() {
        for wl in Workload::ALL {
            for threads in [1usize, 2, 4, 7] {
                let input = wl.generate(5000, 3);
                let out = par_sample_sort(&input, threads, 42);
                assert_sorted_permutation(&input, &out);
            }
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_sequential() {
        for n in [0usize, 1, 5, 15] {
            let input = Workload::UniformRandom.generate(n, 1);
            let out = par_sample_sort(&input, 8, 7);
            assert_sorted_permutation(&input, &out);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let input = Workload::UniformRandom.generate(10_000, 9);
        let a = par_sample_sort(&input, 4, 11);
        let b = par_sample_sort(&input, 4, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_heavy_input() {
        let input = Workload::FewDistinct.generate(8000, 5);
        let out = par_sample_sort(&input, 4, 3);
        assert_sorted_permutation(&input, &out);
    }
}

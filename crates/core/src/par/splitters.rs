//! Splitter selection shared by the threaded and the modeled parallel
//! sample sorts.
//!
//! Both sorts reduce a sorted oversample to at most `buckets − 1` strictly
//! increasing splitters the same way, so the two executors partition
//! identically given the same sample. The modeled sort additionally needs
//! its *sample membership* to be a pure function of `(seed, global index)`
//! — not of how the input is chunked across lanes — so that the bucket
//! boundaries, and with them the merged write totals, cannot depend on the
//! lane count. [`sampled`] provides that: a splitmix64-style hash of the
//! record's global index decides membership, which every lane can evaluate
//! locally while scanning its own chunk.

use asym_model::Record;

/// The evenly spaced pick positions inside a sorted sample of `len`
/// elements for a `buckets`-way split (deduplicated, strictly increasing).
/// Exposed separately so the modeled sort can *stream* the sorted sample
/// off disk and keep only these positions, instead of holding the whole
/// sample in primary memory.
pub fn splitter_positions(len: usize, buckets: usize) -> Vec<usize> {
    if len == 0 || buckets < 2 {
        return Vec::new();
    }
    let mut positions: Vec<usize> = (1..buckets).map(|i| i * len / buckets).collect();
    positions.dedup();
    positions
}

/// Collapse equal picks into strictly increasing splitters (heavily skewed
/// samples yield fewer, coarser buckets instead of empty ones).
pub fn dedup_splitters(mut picks: Vec<Record>) -> Vec<Record> {
    debug_assert!(picks.windows(2).all(|w| w[0] <= w[1]), "picks not sorted");
    picks.dedup();
    picks
}

/// Reduce a **sorted** sample to at most `buckets − 1` strictly increasing
/// splitters ([`splitter_positions`] then [`dedup_splitters`]).
pub fn splitters_from_sorted_sample(sample: &[Record], buckets: usize) -> Vec<Record> {
    debug_assert!(sample.windows(2).all(|w| w[0] <= w[1]), "sample not sorted");
    dedup_splitters(
        splitter_positions(sample.len(), buckets)
            .into_iter()
            .map(|i| sample[i])
            .collect(),
    )
}

/// The bucket of `r` under `splitters`: the index of the first splitter
/// `≥ r`, so bucket `j` holds keys in `(S[j−1], S[j]]` with the overflow
/// bucket above the last splitter. The same rule the serial AEM sample sort
/// uses.
pub fn bucket_of(splitters: &[Record], r: Record) -> usize {
    splitters.partition_point(|s| *s < r)
}

/// Whether the record at `global index` belongs to the sample, targeting
/// `target` of `n` records in expectation. Deterministic in
/// `(seed, index)` alone — chunking the scan across lanes cannot change the
/// sample — and exactly all-in when `target ≥ n`.
pub fn sampled(seed: u64, index: u64, n: u64, target: u64) -> bool {
    if target >= n {
        return true;
    }
    splitmix64(seed ^ splitmix64(index)) % n < target
}

/// The splitmix64 mixing function (public-domain constants); a cheap,
/// high-quality 64-bit hash for per-index sampling decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::keyed(k)).collect()
    }

    #[test]
    fn splitters_are_strictly_increasing_and_bounded() {
        let sample = recs(&[1, 2, 3, 5, 5, 5, 8, 9, 12, 20]);
        for buckets in [2usize, 3, 4, 8] {
            let s = splitters_from_sorted_sample(&sample, buckets);
            assert!(s.len() < buckets);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }

    #[test]
    fn skewed_sample_collapses_instead_of_emptying() {
        let sample = recs(&[7; 50]);
        let s = splitters_from_sorted_sample(&sample, 8);
        assert_eq!(s, recs(&[7]));
        assert!(splitters_from_sorted_sample(&[], 4).is_empty());
        assert!(splitters_from_sorted_sample(&sample, 1).is_empty());
    }

    #[test]
    fn bucket_rule_matches_the_serial_convention() {
        let s = recs(&[10, 20]);
        assert_eq!(bucket_of(&s, Record::keyed(5)), 0);
        assert_eq!(bucket_of(&s, Record::keyed(10)), 0); // equal goes low
        assert_eq!(bucket_of(&s, Record::keyed(11)), 1);
        assert_eq!(bucket_of(&s, Record::keyed(20)), 1);
        assert_eq!(bucket_of(&s, Record::keyed(21)), 2);
        assert_eq!(bucket_of(&[], Record::keyed(3)), 0);
    }

    #[test]
    fn sampling_is_index_deterministic_and_near_target() {
        let (n, target) = (10_000u64, 500u64);
        let picks: Vec<u64> = (0..n).filter(|&i| sampled(42, i, n, target)).collect();
        let again: Vec<u64> = (0..n).filter(|&i| sampled(42, i, n, target)).collect();
        assert_eq!(picks, again, "membership must be a pure function");
        // Within a loose factor of the expectation.
        assert!(picks.len() as u64 > target / 3, "{}", picks.len());
        assert!((picks.len() as u64) < target * 3, "{}", picks.len());
        // Different seeds pick different sets.
        let other: Vec<u64> = (0..n).filter(|&i| sampled(43, i, n, target)).collect();
        assert_ne!(picks, other);
        // Saturated target takes everything.
        assert!((0..50).all(|i| sampled(7, i, 50, 50)));
    }
}

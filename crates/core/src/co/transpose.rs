//! Cache-oblivious matrix transpose (recursive rectangle splitting).

use cache_sim::SimArray;

/// Largest rectangle handled by direct loops.
const BASE: usize = 8;

/// Transpose the `rows × cols` row-major matrix at `src[src_off..]` into the
/// `cols × rows` row-major matrix at `dst[dst_off..]`.
///
/// Recursively halves the longer dimension, giving O(rc/B) transfers on a
/// tall cache without knowing B or M.
pub fn co_transpose<T: Copy>(
    src: &SimArray<T>,
    src_off: usize,
    rows: usize,
    cols: usize,
    dst: &mut SimArray<T>,
    dst_off: usize,
) {
    transpose_rec(src, src_off, cols, dst, dst_off, rows, 0, rows, 0, cols);
}

/// Transpose the sub-rectangle [r0, r1) × [c0, c1) of the source (which has
/// row stride `src_stride`) into the destination (row stride `dst_stride`).
#[allow(clippy::too_many_arguments)]
fn transpose_rec<T: Copy>(
    src: &SimArray<T>,
    src_off: usize,
    src_stride: usize,
    dst: &mut SimArray<T>,
    dst_off: usize,
    dst_stride: usize,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
) {
    let (h, w) = (r1 - r0, c1 - c0);
    if h == 0 || w == 0 {
        return;
    }
    if h <= BASE && w <= BASE {
        for r in r0..r1 {
            for c in c0..c1 {
                let v = src.read(src_off + r * src_stride + c);
                dst.write(dst_off + c * dst_stride + r, v);
            }
        }
        return;
    }
    if h >= w {
        let mid = r0 + h / 2;
        transpose_rec(
            src, src_off, src_stride, dst, dst_off, dst_stride, r0, mid, c0, c1,
        );
        transpose_rec(
            src, src_off, src_stride, dst, dst_off, dst_stride, mid, r1, c0, c1,
        );
    } else {
        let mid = c0 + w / 2;
        transpose_rec(
            src, src_off, src_stride, dst, dst_off, dst_stride, r0, r1, c0, mid,
        );
        transpose_rec(
            src, src_off, src_stride, dst, dst_off, dst_stride, r0, r1, mid, c1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};

    fn host_transpose(m: &[u32], rows: usize, cols: usize) -> Vec<u32> {
        let mut out = vec![0u32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = m[r * cols + c];
            }
        }
        out
    }

    #[test]
    fn matches_host_on_shapes() {
        let t = Tracker::null();
        for (rows, cols) in [(1usize, 1usize), (3, 17), (16, 16), (33, 7), (64, 48)] {
            let data: Vec<u32> = (0..(rows * cols) as u32).collect();
            let src = SimArray::from_vec(&t, data.clone());
            let mut dst = SimArray::filled(&t, rows * cols, 0u32);
            co_transpose(&src, 0, rows, cols, &mut dst, 0);
            assert_eq!(
                dst.peek_slice(),
                host_transpose(&data, rows, cols).as_slice(),
                "{rows}x{cols}"
            );
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tracker::null();
        let (rows, cols) = (24usize, 40usize);
        let data: Vec<u32> = (0..(rows * cols) as u32).rev().collect();
        let src = SimArray::from_vec(&t, data.clone());
        let mut mid = SimArray::filled(&t, rows * cols, 0u32);
        let mut out = SimArray::filled(&t, rows * cols, 0u32);
        co_transpose(&src, 0, rows, cols, &mut mid, 0);
        co_transpose(&mid, 0, cols, rows, &mut out, 0);
        assert_eq!(out.peek_slice(), data.as_slice());
    }

    #[test]
    fn io_is_linear_with_tall_cache() {
        // With M >= B^2 the recursive transpose should move each block O(1)
        // times: loads ~ 2 * n/B (read source + write-allocate dest).
        let n_side = 64usize;
        let cfg = CacheConfig::new(1024, 16, 4); // M = B^2 * 4, tall
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let src = SimArray::from_vec(&t, vec![0u32; n_side * n_side]);
        let mut dst = SimArray::filled(&t, n_side * n_side, 0u32);
        co_transpose(&src, 0, n_side, n_side, &mut dst, 0);
        t.flush();
        let s = t.stats();
        let blocks = (2 * n_side * n_side / 16) as u64;
        assert!(
            s.loads <= 3 * blocks,
            "loads {} should be O(n/B) = ~{blocks}",
            s.loads
        );
    }

    #[test]
    fn offsets_and_subranges_work() {
        let t = Tracker::null();
        // Two 4x4 matrices packed into one array at different offsets.
        let a: Vec<u32> = (0..16).collect();
        let b: Vec<u32> = (100..116).collect();
        let mut data = a.clone();
        data.extend(&b);
        let src = SimArray::from_vec(&t, data);
        let mut dst = SimArray::filled(&t, 32, 0u32);
        co_transpose(&src, 0, 4, 4, &mut dst, 0);
        co_transpose(&src, 16, 4, 4, &mut dst, 16);
        assert_eq!(&dst.peek_slice()[..16], host_transpose(&a, 4, 4).as_slice());
        assert_eq!(&dst.peek_slice()[16..], host_transpose(&b, 4, 4).as_slice());
    }
}

//! §5.3 — matrix multiplication with asymmetric read/write costs.
//!
//! Four multipliers over n×n row-major `SimArray<f64>` matrices:
//!
//! * [`mm_naive`] — the textbook triple loop (baseline; pathological B
//!   column traffic).
//! * [`mm_em_blocked`] — Theorem 5.2: √M×√M tiles, each C tile resident
//!   until complete: O(n³/(B√M)) reads but only O(n²/B) writes. Cache-aware
//!   (takes the tile size).
//! * [`mm_co_4way`] — the standard cache-oblivious divide-and-conquer
//!   (2×2 block recursion, 8 sequential sub-products): Θ(n³/(B√M)) reads
//!   *and* writes.
//! * [`mm_co_asym`] — Theorem 5.3: ω²-way recursion with the ω sub-products
//!   of each output block processed sequentially (so the ideal/LRU cache
//!   keeps the C block resident across them), plus the randomized b×b first
//!   round (b uniform in {2, 4, …, 2^⌊log₂ω⌋}) that shaves the expected
//!   O(log ω) factor.

use cache_sim::SimArray;
use rand::rngs::StdRng;
use rand::Rng;

/// Direct-loop threshold for the recursive variants.
const TILE: usize = 8;

/// A view of an n×n row-major matrix inside a [`SimArray`].
#[derive(Clone, Copy)]
struct View {
    off: usize,
    stride: usize,
}

impl View {
    #[inline]
    fn at(&self, r: usize, c: usize) -> usize {
        self.off + r * self.stride + c
    }

    fn sub(&self, r: usize, c: usize, block: usize) -> View {
        View {
            off: self.at(r * block, c * block),
            stride: self.stride,
        }
    }
}

/// C += A·B on size×size views, direct loops (i-k-j order so the C row
/// stays hot).
fn mm_base(
    a: &SimArray<f64>,
    b: &SimArray<f64>,
    c: &mut SimArray<f64>,
    va: View,
    vb: View,
    vc: View,
    size: usize,
) {
    for i in 0..size {
        for k in 0..size {
            let aik = a.read(va.at(i, k));
            if aik == 0.0 {
                // Still counts as read; skipping the inner loop would be a
                // value-dependent optimization the model doesn't assume.
            }
            for j in 0..size {
                let cur = c.read(vc.at(i, j));
                let add = aik * b.read(vb.at(k, j));
                c.write(vc.at(i, j), cur + add);
            }
        }
    }
}

/// The textbook triple loop: C = A·B.
pub fn mm_naive(a: &SimArray<f64>, b: &SimArray<f64>, c: &mut SimArray<f64>, n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.read(i * n + k) * b.read(k * n + j);
            }
            c.write(i * n + j, acc);
        }
    }
}

/// Theorem 5.2: tile the matrices with t×t blocks (t ≈ √(M/3)); each output
/// tile is accumulated host-side and written exactly once.
pub fn mm_em_blocked(
    a: &SimArray<f64>,
    b: &SimArray<f64>,
    c: &mut SimArray<f64>,
    n: usize,
    t: usize,
) {
    assert!(t >= 1 && n.is_multiple_of(t), "tile must divide n");
    let nt = n / t;
    let mut acc = vec![0.0f64; t * t];
    for bi in 0..nt {
        for bj in 0..nt {
            acc.iter_mut().for_each(|x| *x = 0.0);
            for bk in 0..nt {
                for i in 0..t {
                    for k in 0..t {
                        let aik = a.read((bi * t + i) * n + bk * t + k);
                        for j in 0..t {
                            acc[i * t + j] += aik * b.read((bk * t + k) * n + bj * t + j);
                        }
                    }
                }
            }
            for i in 0..t {
                for j in 0..t {
                    c.write((bi * t + i) * n + bj * t + j, acc[i * t + j]);
                }
            }
        }
    }
}

/// Standard cache-oblivious 2×2 divide-and-conquer: C += A·B.
pub fn mm_co_4way(a: &SimArray<f64>, b: &SimArray<f64>, c: &mut SimArray<f64>, n: usize) {
    assert!(n.is_power_of_two(), "n must be a power of two");
    let (va, vb, vc) = (
        View { off: 0, stride: n },
        View { off: 0, stride: n },
        View { off: 0, stride: n },
    );
    co_rec(a, b, c, va, vb, vc, n, 2, 2);
}

/// Theorem 5.3: ω²-way recursion, optionally with the randomized first
/// round (`rng`); ω and n must be powers of two.
pub fn mm_co_asym(
    a: &SimArray<f64>,
    b: &SimArray<f64>,
    c: &mut SimArray<f64>,
    n: usize,
    omega: usize,
    rng: Option<&mut StdRng>,
) {
    assert!(n.is_power_of_two(), "n must be a power of two");
    assert!(
        omega.is_power_of_two() && omega >= 2,
        "omega must be 2^k >= 2"
    );
    let (va, vb, vc) = (
        View { off: 0, stride: n },
        View { off: 0, stride: n },
        View { off: 0, stride: n },
    );
    let first = match rng {
        Some(rng) => {
            // b = 2^j, j uniform in 1..=log2(omega).
            let jmax = omega.trailing_zeros();
            1usize << rng.gen_range(1..=jmax)
        }
        None => omega,
    };
    // After the (possibly randomized) first round, the recursion continues
    // with the full ω × ω branching.
    co_rec(a, b, c, va, vb, vc, n, first, omega);
}

/// Shared recursion: split into `branch × branch` blocks; output blocks are
/// processed one at a time, their `branch` sub-products sequentially.
/// Deeper rounds use `next_branch`.
#[allow(clippy::too_many_arguments)]
fn co_rec(
    a: &SimArray<f64>,
    b: &SimArray<f64>,
    c: &mut SimArray<f64>,
    va: View,
    vb: View,
    vc: View,
    size: usize,
    branch: usize,
    next_branch: usize,
) {
    if size <= TILE || size < branch {
        mm_base(a, b, c, va, vb, vc, size);
        return;
    }
    let branch = branch.max(2);
    let block = size / branch;
    debug_assert!(block >= 1);
    for i in 0..branch {
        for j in 0..branch {
            let vcb = vc.sub(i, j, block);
            for k in 0..branch {
                co_rec(
                    a,
                    b,
                    c,
                    va.sub(i, k, block),
                    vb.sub(k, j, block),
                    vcb,
                    block,
                    next_branch,
                    next_branch,
                );
            }
        }
    }
}

/// Host-side reference multiply (test oracle).
pub fn host_matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};
    use rand::SeedableRng;

    type MmFn<'a> = &'a dyn Fn(&SimArray<f64>, &SimArray<f64>, &mut SimArray<f64>);

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn run_variant(
        n: usize,
        f: impl Fn(&SimArray<f64>, &SimArray<f64>, &mut SimArray<f64>),
    ) -> Vec<f64> {
        let t = Tracker::null();
        let am = random_matrix(n, 1);
        let bm = random_matrix(n, 2);
        let a = SimArray::from_vec(&t, am.clone());
        let b = SimArray::from_vec(&t, bm.clone());
        let mut c = SimArray::filled(&t, n * n, 0.0);
        f(&a, &b, &mut c);
        let expect = host_matmul(&am, &bm, n);
        assert!(max_err(c.peek_slice(), &expect) < 1e-9);
        c.into_inner()
    }

    #[test]
    fn all_variants_match_reference() {
        let n = 32;
        run_variant(n, |a, b, c| mm_naive(a, b, c, n));
        run_variant(n, |a, b, c| mm_em_blocked(a, b, c, n, 8));
        run_variant(n, |a, b, c| mm_co_4way(a, b, c, n));
        run_variant(n, |a, b, c| mm_co_asym(a, b, c, n, 4, None));
        run_variant(n, |a, b, c| {
            let mut rng = StdRng::seed_from_u64(7);
            mm_co_asym(a, b, c, n, 4, Some(&mut rng))
        });
    }

    #[test]
    fn odd_tile_sizes_and_small_matrices() {
        for n in [8usize, 16] {
            run_variant(n, |a, b, c| mm_co_asym(a, b, c, n, 8, None));
            run_variant(n, |a, b, c| mm_em_blocked(a, b, c, n, n / 2));
        }
    }

    #[test]
    fn blocked_beats_naive_on_reads() {
        let n = 64usize;
        let io = |f: MmFn| {
            let cfg = CacheConfig::new(512, 8, 8);
            let t = Tracker::new(cfg, PolicyChoice::Lru);
            let a = SimArray::from_vec(&t, random_matrix(n, 1));
            let b = SimArray::from_vec(&t, random_matrix(n, 2));
            let mut c = SimArray::filled(&t, n * n, 0.0);
            f(&a, &b, &mut c);
            t.flush();
            (t.stats().loads, t.stats().writebacks)
        };
        let (naive_r, _) = io(&|a, b, c| mm_naive(a, b, c, n));
        let (blocked_r, blocked_w) = io(&|a, b, c| mm_em_blocked(a, b, c, n, 8));
        assert!(
            blocked_r * 2 < naive_r,
            "blocked reads {blocked_r} should be well under naive {naive_r}"
        );
        // Theorem 5.2: writes ~ n^2/B.
        let write_bound = (2 * n * n / 8) as u64;
        assert!(
            blocked_w <= write_bound,
            "blocked writebacks {blocked_w} should be ~n^2/B = {}",
            n * n / 8
        );
    }

    #[test]
    fn asym_writes_less_than_4way() {
        let n = 128usize;
        let io = |f: MmFn| {
            let cfg = CacheConfig::new(512, 8, 16);
            let t = Tracker::new(cfg, PolicyChoice::Lru);
            let a = SimArray::from_vec(&t, random_matrix(n, 3));
            let b = SimArray::from_vec(&t, random_matrix(n, 4));
            let mut c = SimArray::filled(&t, n * n, 0.0);
            f(&a, &b, &mut c);
            t.flush();
            (t.stats().loads, t.stats().writebacks)
        };
        let (_, w4) = io(&|a, b, c| mm_co_4way(a, b, c, n));
        let (_, w16) = io(&|a, b, c| mm_co_asym(a, b, c, n, 16, None));
        assert!(
            w16 < w4,
            "omega^2-way recursion should write back less: {w16} vs {w4}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let t = Tracker::null();
        let a = SimArray::from_vec(&t, vec![0.0; 9]);
        let b = SimArray::from_vec(&t, vec![0.0; 9]);
        let mut c = SimArray::filled(&t, 9, 0.0);
        mm_co_4way(&a, &b, &mut c, 3);
    }
}

//! §5.2 — cache-oblivious FFT with asymmetric read/write costs.
//!
//! Both variants are six-step Cooley–Tukey decompositions n = n1·n2:
//! transpose, FFT the n1-length columns (as rows), twiddle, transpose, FFT
//! the n2-length rows, transpose to natural order.
//!
//! * **Standard** (baseline, Frigo et al.): n1 ≈ n2 ≈ √n, both recursive.
//! * **Asymmetric** (the paper's): n2 ≈ √(n/ω) and n1 = ω·n2; the length-n1
//!   row DFTs are themselves decomposed as ω × n2 with the ω-point column
//!   DFTs computed **brute force** (ω reads + 1 write per value) — spending
//!   ω× more reads to halve the number of recursion levels and with them
//!   the writes.
//!
//! Twiddle factors are computed on the fly (host arithmetic is free in the
//! model); all data movement goes through the simulated cache.

use super::transpose::co_transpose;
use cache_sim::SimArray;
use std::f64::consts::PI;

/// A complex value (one simulated cell per element, like the paper's
/// records).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// The complex number re + i·im.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^{-2πi k / n} (the forward-DFT root of unity).
    pub fn root(k: usize, n: usize) -> Self {
        let ang = -2.0 * PI * (k % n) as f64 / n as f64;
        Self::new(ang.cos(), ang.sin())
    }

    fn mul(self, o: Cplx) -> Cplx {
        Cplx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }

    /// |self - o| (test tolerance helper).
    pub fn dist(self, o: Cplx) -> f64 {
        ((self.re - o.re).powi(2) + (self.im - o.im).powi(2)).sqrt()
    }
}

/// Which decomposition drives the recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftVariant {
    /// n1 ≈ n2 ≈ √n (the symmetric baseline).
    Standard,
    /// n2 ≈ √(n/ω), n1 = ω·n2 with brute-force ω-point column DFTs.
    Asymmetric,
}

/// In-place forward DFT of `data[lo..lo+n)` (n a power of two). `base` is
/// the host-FFT threshold (≤ M in experiments); `omega` is used by the
/// asymmetric variant only.
pub fn fft(
    data: &mut SimArray<Cplx>,
    lo: usize,
    n: usize,
    variant: FftVariant,
    omega: usize,
    base: usize,
) {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    assert!(omega >= 1 && omega.is_power_of_two(), "omega must be 2^k");
    fft_rec(data, lo, n, variant, omega, base.max(4));
}

fn fft_rec(
    data: &mut SimArray<Cplx>,
    lo: usize,
    n: usize,
    variant: FftVariant,
    omega: usize,
    base: usize,
) {
    if n <= base {
        host_fft(data, lo, n);
        return;
    }
    let e = n.trailing_zeros() as usize;
    let n2 = match variant {
        FftVariant::Standard => 1usize << (e / 2),
        FftVariant::Asymmetric => {
            // n2 ~ sqrt(n/omega), as a power of two, at least 1.
            let target = ((n / omega).max(1) as f64).sqrt();
            let bits = (target.log2().round() as usize).min(e.saturating_sub(1));
            1usize << bits
        }
    };
    let n1 = n / n2;
    if n1 <= 1 || n2 <= 1 {
        host_fft(data, lo, n);
        return;
    }
    six_step(data, lo, n1, n2, variant, omega, base);
}

/// The six-step driver: input viewed as n1 × n2 row-major.
fn six_step(
    data: &mut SimArray<Cplx>,
    lo: usize,
    n1: usize,
    n2: usize,
    variant: FftVariant,
    omega: usize,
    base: usize,
) {
    let n = n1 * n2;
    let tracker = data.tracker().clone();
    let mut t = SimArray::filled(&tracker, n, Cplx::default());
    // 1. Transpose (n1 x n2) -> (n2 x n1).
    co_transpose(data, lo, n1, n2, &mut t, 0);
    // 2. Length-n1 FFT on each of the n2 rows of t.
    for r in 0..n2 {
        match variant {
            FftVariant::Standard => fft_rec(&mut t, r * n1, n1, variant, omega, base),
            FftVariant::Asymmetric => fft_row_asym(&mut t, r * n1, n1, omega, base),
        }
    }
    // 3. Twiddle: t[j2][k1] *= w_n^{j2*k1}.
    for j2 in 0..n2 {
        for k1 in 0..n1 {
            let v = t.read(j2 * n1 + k1);
            t.write(j2 * n1 + k1, v.mul(Cplx::root(j2 * k1, n)));
        }
    }
    // 4. Transpose back (n2 x n1) -> (n1 x n2) into data.
    co_transpose(&t, 0, n2, n1, data, lo);
    // 5. Length-n2 FFT on each of the n1 rows of data.
    for r in 0..n1 {
        fft_rec(data, lo + r * n2, n2, variant, omega, base);
    }
    // 6. Transpose (n1 x n2) -> (n2 x n1) for natural order; copy back.
    co_transpose(data, lo, n1, n2, &mut t, 0);
    for i in 0..n {
        let v = t.read(i);
        data.write(lo + i, v);
    }
}

/// The asymmetric row DFT of length m = ω · (m/ω): brute-force ω-point
/// column DFTs (ω reads + 1 write per value), then recursive rows.
fn fft_row_asym(data: &mut SimArray<Cplx>, lo: usize, m: usize, omega: usize, base: usize) {
    if m <= base || m <= omega || omega == 1 {
        // Small rows (or the degenerate ω=1) fall back to the standard path.
        fft_rec(data, lo, m, FftVariant::Standard, omega, base);
        return;
    }
    let n1 = omega;
    let n2 = m / omega;
    let tracker = data.tracker().clone();
    let mut t = SimArray::filled(&tracker, m, Cplx::default());
    // 1. Transpose (n1 x n2) -> (n2 x n1).
    co_transpose(data, lo, n1, n2, &mut t, 0);
    // 2. Brute-force the length-ω DFT of each of the n2 rows of t.
    for r in 0..n2 {
        brute_dft_row(&mut t, r * n1, n1);
    }
    // 3. Twiddle.
    for j2 in 0..n2 {
        for k1 in 0..n1 {
            let v = t.read(j2 * n1 + k1);
            t.write(j2 * n1 + k1, v.mul(Cplx::root(j2 * k1, m)));
        }
    }
    // 4. Transpose back.
    co_transpose(&t, 0, n2, n1, data, lo);
    // 5. Recursive length-n2 FFTs.
    for r in 0..n1 {
        fft_rec(data, lo + r * n2, n2, FftVariant::Asymmetric, omega, base);
    }
    // 6. Final transpose + copy back.
    co_transpose(data, lo, n1, n2, &mut t, 0);
    for i in 0..m {
        let v = t.read(i);
        data.write(lo + i, v);
    }
}

/// O(ω²) direct DFT of a length-ω row: per output value, ω reads and one
/// write into a scratch row, then copy back.
fn brute_dft_row(data: &mut SimArray<Cplx>, lo: usize, w: usize) {
    let tracker = data.tracker().clone();
    let mut out = SimArray::filled(&tracker, w, Cplx::default());
    for k in 0..w {
        let mut acc = Cplx::default();
        for j in 0..w {
            acc = acc.add(data.read(lo + j).mul(Cplx::root(j * k, w)));
        }
        out.write(k, acc);
    }
    for k in 0..w {
        let v = out.read(k);
        data.write(lo + k, v);
    }
}

/// Host-side iterative radix-2 FFT for base cases: n charged reads in, n
/// charged writes out.
fn host_fft(data: &mut SimArray<Cplx>, lo: usize, n: usize) {
    let mut a: Vec<Cplx> = (0..n).map(|i| data.read(lo + i)).collect();
    host_fft_slice(&mut a);
    for (i, v) in a.into_iter().enumerate() {
        data.write(lo + i, v);
    }
}

/// Plain iterative Cooley–Tukey on a host slice (free arithmetic).
pub fn host_fft_slice(a: &mut [Cplx]) {
    let n = a.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let w = Cplx::root(k, len);
                let u = a[start + k];
                let v = a[start + k + len / 2].mul(w);
                a[start + k] = u.add(v);
                a[start + k + len / 2] = u.sub(v);
            }
        }
        len *= 2;
    }
}

/// O(n²) reference DFT (host-side; test oracle and tiny-size checker).
pub fn naive_dft(input: &[Cplx]) -> Vec<Cplx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::default();
            for (j, &x) in input.iter().enumerate() {
                acc = acc.add(x.mul(Cplx::root(j * k, n)));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Cplx> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Cplx::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn max_err(a: &[Cplx], b: &[Cplx]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x.dist(*y)).fold(0.0, f64::max)
    }

    #[test]
    fn host_fft_matches_naive() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let sig = random_signal(n, 1);
            let mut a = sig.clone();
            host_fft_slice(&mut a);
            assert!(max_err(&a, &naive_dft(&sig)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn standard_variant_matches_naive() {
        for n in [4usize, 16, 64, 256, 1024] {
            let sig = random_signal(n, 2);
            let t = Tracker::null();
            let mut a = SimArray::from_vec(&t, sig.clone());
            fft(&mut a, 0, n, FftVariant::Standard, 1, 4);
            assert!(
                max_err(a.peek_slice(), &naive_dft(&sig)) < 1e-8,
                "standard n={n}"
            );
        }
    }

    #[test]
    fn asymmetric_variant_matches_naive() {
        for omega in [2usize, 4, 8] {
            for n in [64usize, 256, 1024] {
                let sig = random_signal(n, 3);
                let t = Tracker::null();
                let mut a = SimArray::from_vec(&t, sig.clone());
                fft(&mut a, 0, n, FftVariant::Asymmetric, omega, 4);
                assert!(
                    max_err(a.peek_slice(), &naive_dft(&sig)) < 1e-8,
                    "asym n={n} omega={omega}"
                );
            }
        }
    }

    #[test]
    fn subrange_fft() {
        let n = 64;
        let sig = random_signal(2 * n, 4);
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, sig.clone());
        fft(&mut a, n, n, FftVariant::Standard, 1, 4);
        assert_eq!(&a.peek_slice()[..n], &sig[..n], "prefix untouched");
        assert!(max_err(&a.peek_slice()[n..], &naive_dft(&sig[n..])) < 1e-8);
    }

    #[test]
    fn asymmetric_reduces_writebacks() {
        // Parameters where the level counts genuinely differ: base <= M and
        // enough levels that log_{omega*M}(omega*n) < log_M(n).
        let n = 1 << 16;
        let sig = random_signal(n, 5);
        let run = |variant: FftVariant, omega: usize| {
            let cfg = CacheConfig::new(256, 8, 16);
            let t = Tracker::new(cfg, PolicyChoice::Lru);
            let mut a = SimArray::from_vec(&t, sig.clone());
            fft(&mut a, 0, n, variant, omega, 64);
            t.flush();
            (t.stats().loads, t.stats().writebacks)
        };
        let (_r_std, w_std) = run(FftVariant::Standard, 1);
        let (r_asym, w_asym) = run(FftVariant::Asymmetric, 16);
        assert!(
            w_asym < w_std,
            "asymmetric FFT should write back less: {w_asym} vs {w_std}"
        );
        assert!(r_asym > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, vec![Cplx::default(); 24]);
        fft(&mut a, 0, 24, FftVariant::Standard, 1, 4);
    }
}

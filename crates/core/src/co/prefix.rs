//! Prefix sums over simulated arrays.
//!
//! A sequential scan is cache-oblivious and I/O-optimal (O(n/B) transfers);
//! it is what the cache experiments need. The work-depth (parallel) version
//! lives in `pram::prefix`, where depth is the measured quantity.

use cache_sim::SimArray;

/// Exclusive prefix sums of `src[lo..hi)` written to a fresh array of length
/// `hi - lo + 1` (last entry = total).
pub fn co_prefix_sums(src: &SimArray<u64>, lo: usize, hi: usize) -> SimArray<u64> {
    let n = hi - lo;
    let mut out = SimArray::filled(src.tracker(), n + 1, 0u64);
    let mut acc = 0u64;
    for i in 0..n {
        out.write(i, acc);
        acc += src.read(lo + i);
    }
    out.write(n, acc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};

    #[test]
    fn matches_reference() {
        let t = Tracker::null();
        let xs = vec![3u64, 1, 4, 1, 5];
        let a = SimArray::from_vec(&t, xs);
        let out = co_prefix_sums(&a, 0, 5);
        assert_eq!(out.peek_slice(), &[0, 3, 4, 8, 9, 14]);
    }

    #[test]
    fn subrange() {
        let t = Tracker::null();
        let a = SimArray::from_vec(&t, vec![10u64, 1, 2, 3, 10]);
        let out = co_prefix_sums(&a, 1, 4);
        assert_eq!(out.peek_slice(), &[0, 1, 3, 6]);
    }

    #[test]
    fn empty_range() {
        let t = Tracker::null();
        let a = SimArray::from_vec(&t, vec![7u64]);
        let out = co_prefix_sums(&a, 0, 0);
        assert_eq!(out.peek_slice(), &[0]);
    }

    #[test]
    fn io_is_scan_optimal() {
        let cfg = CacheConfig::new(256, 16, 4);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let n = 4096usize;
        let a = SimArray::from_vec(&t, vec![1u64; n]);
        let _ = co_prefix_sums(&a, 0, n);
        t.flush();
        let s = t.stats();
        let blocks = (2 * n / 16) as u64; // input + output
        assert!(s.loads <= blocks + 4, "loads {} ~ 2n/B = {blocks}", s.loads);
    }
}

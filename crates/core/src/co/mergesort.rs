//! Classic cache-oblivious mergesort.
//!
//! Recursive halving with streaming merges: O((n/B)·log₂(n/M)) transfers
//! without knowing M or B. Serves as (a) the symmetric comparison baseline
//! for experiment E8 and (b) the sample-sorting subroutine inside the §5.1
//! sort (the samples are an O(n/log n) fraction, so its cost is lower
//! order).

use asym_model::Record;
use cache_sim::SimArray;

/// Host-sort threshold: below this, read + host sort + write back. Kept
/// small so the recursion — not the base case — determines the I/O shape.
const BASE: usize = 32;

/// Sort `data[lo..hi)` in place (via one temp array per merge level).
pub fn co_mergesort(data: &mut SimArray<Record>, lo: usize, hi: usize) {
    let n = hi - lo;
    if n <= BASE {
        let mut host: Vec<Record> = (lo..hi).map(|i| data.read(i)).collect();
        host.sort_unstable();
        for (i, r) in host.into_iter().enumerate() {
            data.write(lo + i, r);
        }
        return;
    }
    let mid = lo + n / 2;
    co_mergesort(data, lo, mid);
    co_mergesort(data, mid, hi);
    // Merge the halves through a temp array, then copy back.
    let mut temp = SimArray::filled(data.tracker(), n, Record::default());
    let (mut i, mut j) = (lo, mid);
    for t in 0..n {
        let take_left = if i >= mid {
            false
        } else if j >= hi {
            true
        } else {
            data.read(i) <= data.read(j)
        };
        let v = if take_left {
            let v = data.read(i);
            i += 1;
            v
        } else {
            let v = data.read(j);
            j += 1;
            v
        };
        temp.write(t, v);
    }
    for t in 0..n {
        data.write(lo + t, temp.read(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};

    #[test]
    fn sorts_all_workloads() {
        for wl in Workload::ALL {
            for n in [0usize, 1, 31, 32, 100, 2048] {
                let input = wl.generate(n, 5);
                let t = Tracker::null();
                let mut a = SimArray::from_vec(&t, input.clone());
                co_mergesort(&mut a, 0, n);
                assert_sorted_permutation(&input, a.peek_slice());
            }
        }
    }

    #[test]
    fn subrange_sort_leaves_rest_untouched() {
        let t = Tracker::null();
        let input = Workload::Reversed.generate(100, 1);
        let mut a = SimArray::from_vec(&t, input.clone());
        co_mergesort(&mut a, 10, 90);
        assert_eq!(&a.peek_slice()[..10], &input[..10]);
        assert_eq!(&a.peek_slice()[90..], &input[90..]);
        assert!(a.peek_slice()[10..90].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn io_grows_as_n_log_n_over_mb() {
        // Doubling n past M should grow I/O slightly super-linearly; the
        // (n/B) log2(n/M) shape means I/O per block grows by ~1 per doubling.
        let io = |n: usize| {
            let cfg = CacheConfig::new(256, 16, 4);
            let t = Tracker::new(cfg, PolicyChoice::Lru);
            let input = Workload::UniformRandom.generate(n, 3);
            let mut a = SimArray::from_vec(&t, input);
            co_mergesort(&mut a, 0, n);
            t.flush();
            t.stats().loads as f64
        };
        let per_block_small = io(1 << 12) / ((1 << 12) as f64 / 16.0);
        let per_block_large = io(1 << 15) / ((1 << 15) as f64 / 16.0);
        assert!(
            per_block_large > per_block_small + 1.0,
            "per-block I/O should grow with log(n/M): {per_block_small:.1} -> {per_block_large:.1}"
        );
        assert!(
            per_block_large < per_block_small * 3.0,
            "...but only logarithmically"
        );
    }
}

//! §5.1 / Figure 1 — the low-depth cache-oblivious sort, asymmetric version.
//!
//! One level of recursion over a range of n records:
//!
//! * (a) split into √(nω) subarrays of size √(n/ω) and sort each
//!   recursively;
//! * (b) sample every ⌈log n⌉-th element of each sorted subarray, sort the
//!   samples (cache-oblivious mergesort), and pick √(n/ω)−1 splitters;
//! * (c) count each subarray's bucket boundaries (one merge-like pass),
//!   transpose the count matrix, prefix-sum it, transpose back, and
//!   distribute every record to its bucket — all O(n/B) transfers;
//! * (d) pick ω−1 pivots per bucket and partition it into ω sub-buckets by
//!   scanning the bucket ω times (the deliberate read/write trade: ω·n/B
//!   reads buy a √ω-deeper branching and thus fewer write levels);
//! * recurse on sub-buckets.
//!
//! With ω = 1, step (d) vanishes and the algorithm is exactly the original
//! symmetric BGS low-depth sort — the baseline of experiment E8.

use super::mergesort::co_mergesort;
use super::prefix::co_prefix_sums;
use super::transpose::co_transpose;
use asym_model::Record;
use cache_sim::SimArray;

/// Figure-1 shape statistics from the **top level** of the recursion.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoSortTelemetry {
    /// Number of subarrays at the top level (≈ √(nω)).
    pub subarrays: usize,
    /// Number of buckets at the top level (≈ √(n/ω)).
    pub buckets: usize,
    /// Largest top-level bucket (paper: ≤ 2√(nω)·log n w.h.p.).
    pub max_bucket: usize,
    /// Largest top-level sub-bucket (paper: O(√(n/ω)·log n) w.h.p.).
    pub max_sub_bucket: usize,
    /// Base-case invocations across the whole sort.
    pub base_cases: u64,
    /// Deepest recursion level reached.
    pub max_depth: u32,
    /// Progress-fallback host sorts (0 in the w.h.p. regime).
    pub fallbacks: u64,
}

/// Sort `data[lo..hi)` with the §5.1 algorithm. `omega ≥ 1` is the
/// read/write cost ratio (known to the algorithm, per the paper); `base` is
/// the host-sort threshold (set ≤ M in experiments so base cases fit in
/// cache).
pub fn co_asym_sort(
    data: &mut SimArray<Record>,
    lo: usize,
    hi: usize,
    omega: usize,
    base: usize,
) -> CoSortTelemetry {
    assert!(omega >= 1);
    let mut tel = CoSortTelemetry::default();
    sort_range(data, lo, hi, omega, base.max(16), 0, &mut tel);
    tel
}

fn host_sort(data: &mut SimArray<Record>, lo: usize, hi: usize) {
    let mut host: Vec<Record> = (lo..hi).map(|i| data.read(i)).collect();
    host.sort_unstable();
    for (i, r) in host.into_iter().enumerate() {
        data.write(lo + i, r);
    }
}

#[allow(clippy::too_many_arguments)]
fn sort_range(
    data: &mut SimArray<Record>,
    lo: usize,
    hi: usize,
    omega: usize,
    base: usize,
    depth: u32,
    tel: &mut CoSortTelemetry,
) {
    let n = hi - lo;
    tel.max_depth = tel.max_depth.max(depth);
    let sub_size = ((n as f64 / omega as f64).sqrt().floor() as usize).max(2);
    let lg = (n as f64).log2().ceil().max(1.0) as usize;
    // Base-case regime: explicitly small, or so small relative to ω that
    // subarrays of √(n/ω) can't produce even one every-log(n)-th sample.
    if n <= base || sub_size < 4 || n <= 2 * sub_size || sub_size < lg {
        tel.base_cases += 1;
        host_sort(data, lo, hi);
        return;
    }
    let tracker = data.tracker().clone();
    let num_sub = n.div_ceil(sub_size);

    // (a) Recursively sort the subarrays.
    for i in 0..num_sub {
        let s_lo = lo + i * sub_size;
        let s_hi = (s_lo + sub_size).min(hi);
        sort_range(data, s_lo, s_hi, omega, base, depth + 1, tel);
    }

    // (b) Sample every lg-th element of each subarray; sort; pick splitters.
    let samples_host_len;
    let mut samples = {
        let mut tmp: Vec<Record> = Vec::with_capacity(n / lg + num_sub);
        for i in 0..num_sub {
            let s_lo = lo + i * sub_size;
            let s_hi = (s_lo + sub_size).min(hi);
            let mut idx = s_lo + lg - 1;
            while idx < s_hi {
                tmp.push(data.read(idx));
                idx += lg;
            }
        }
        samples_host_len = tmp.len();
        let mut arr = SimArray::filled(&tracker, tmp.len().max(1), Record::default());
        for (i, r) in tmp.into_iter().enumerate() {
            arr.write(i, r);
        }
        arr
    };
    co_mergesort(&mut samples, 0, samples_host_len);
    let num_buckets = sub_size.min(samples_host_len.max(1)).max(1);
    let mut splitters: Vec<Record> = Vec::with_capacity(num_buckets.saturating_sub(1));
    for t in 1..num_buckets {
        let idx = t * samples_host_len / num_buckets;
        splitters.push(samples.read(idx.min(samples_host_len - 1)));
    }
    splitters.dedup();
    let num_buckets = splitters.len() + 1;
    if splitters.is_empty() {
        tel.fallbacks += 1;
        host_sort(data, lo, hi);
        return;
    }

    // (c) Count bucket boundaries per subarray: counts is a num_sub ×
    // num_buckets row-major matrix (its writes are the O(n/B) the paper
    // charges this step).
    let mut counts = SimArray::filled(&tracker, num_sub * num_buckets, 0u64);
    for i in 0..num_sub {
        let s_lo = lo + i * sub_size;
        let s_hi = (s_lo + sub_size).min(hi);
        let mut j = 0usize; // current bucket
        let mut run = 0u64;
        for idx in s_lo..s_hi {
            let r = data.read(idx);
            while j < splitters.len() && r > splitters[j] {
                counts.write(i * num_buckets + j, run);
                run = 0;
                j += 1;
            }
            run += 1;
        }
        counts.write(i * num_buckets + j, run);
        for rest in (j + 1)..num_buckets {
            counts.write(i * num_buckets + rest, 0);
        }
    }

    // Transpose to bucket-major, prefix-sum, transpose back: offsets[i][j]
    // = start of subarray i's segment of bucket j, relative to `lo`.
    let mut counts_t = SimArray::filled(&tracker, num_sub * num_buckets, 0u64);
    co_transpose(&counts, 0, num_sub, num_buckets, &mut counts_t, 0);
    let offsets_t = co_prefix_sums(&counts_t, 0, num_sub * num_buckets);
    let mut offsets = SimArray::filled(&tracker, num_sub * num_buckets, 0u64);
    co_transpose(&offsets_t, 0, num_buckets, num_sub, &mut offsets, 0);

    // Bucket extents (host bookkeeping, derived from the charged prefix).
    let mut bucket_start: Vec<usize> = Vec::with_capacity(num_buckets + 1);
    for j in 0..num_buckets {
        bucket_start.push(offsets_t.peek(j * num_sub) as usize);
    }
    bucket_start.push(n);

    // Distribute into a bucket-contiguous temp array.
    let mut temp = SimArray::filled(&tracker, n, Record::default());
    for i in 0..num_sub {
        let s_lo = lo + i * sub_size;
        let s_hi = (s_lo + sub_size).min(hi);
        let mut j = 0usize;
        let mut pos = offsets.read(i * num_buckets) as usize;
        for idx in s_lo..s_hi {
            let r = data.read(idx);
            while j < splitters.len() && r > splitters[j] {
                j += 1;
                pos = offsets.read(i * num_buckets + j) as usize;
            }
            temp.write(pos, r);
            pos += 1;
        }
    }

    if depth == 0 {
        tel.subarrays = num_sub;
        tel.buckets = num_buckets;
        tel.max_bucket = (0..num_buckets)
            .map(|j| bucket_start[j + 1] - bucket_start[j])
            .max()
            .unwrap_or(0);
    }

    // (d) Per bucket: ω−1 pivots, ω scan rounds into sub-buckets (back into
    // `data`), then recurse. With ω = 1 this reduces to a copy-back.
    for j in 0..num_buckets {
        let b_lo = bucket_start[j];
        let b_hi = bucket_start[j + 1];
        let b_len = b_hi - b_lo;
        if b_len == 0 {
            continue;
        }
        if omega == 1 {
            for t in b_lo..b_hi {
                let r = temp.read(t);
                data.write(lo + t, r);
            }
            sort_range(data, lo + b_lo, lo + b_hi, omega, base, depth + 1, tel);
            continue;
        }
        // Pivot sample: max(ω, √(ωn)/log n) records, evenly spaced.
        let want = (omega.max(((omega * n) as f64).sqrt() as usize / lg)).min(b_len);
        let stride = (b_len / want.max(1)).max(1);
        let mut pcount = 0usize;
        let mut pivot_arr = SimArray::filled(&tracker, want.max(1), Record::default());
        let mut t = b_lo + stride - 1;
        while t < b_hi && pcount < want {
            pivot_arr.write(pcount, temp.read(t));
            pcount += 1;
            t += stride;
        }
        co_mergesort(&mut pivot_arr, 0, pcount);
        let mut pivots: Vec<Record> = Vec::with_capacity(omega - 1);
        for q in 1..omega {
            if pcount == 0 {
                break;
            }
            let idx = q * pcount / omega;
            pivots.push(pivot_arr.read(idx.min(pcount - 1)));
        }
        pivots.dedup();

        // Count sub-bucket sizes (one read pass, host counters).
        let mut sizes = vec![0usize; pivots.len() + 1];
        for t in b_lo..b_hi {
            let r = temp.read(t);
            sizes[pivots.partition_point(|p| *p < r)] += 1;
        }
        // ω passes: pass q writes sub-bucket q contiguously into data.
        let mut dst = lo + b_lo;
        for (q, &sz) in sizes.iter().enumerate() {
            if sz == 0 {
                continue;
            }
            for t in b_lo..b_hi {
                let r = temp.read(t);
                if pivots.partition_point(|p| *p < r) == q {
                    data.write(dst, r);
                    dst += 1;
                }
            }
        }
        debug_assert_eq!(dst, lo + b_hi);
        // Recurse on sub-buckets.
        let mut s_lo = lo + b_lo;
        let mut max_sub = 0usize;
        for &sz in &sizes {
            if sz == b_len && pivots.is_empty() && b_len > base {
                // No pivot progress (pathological): host sort to stay total.
                tel.fallbacks += 1;
                host_sort(data, s_lo, s_lo + sz);
            } else if sz > 0 {
                sort_range(data, s_lo, s_lo + sz, omega, base, depth + 1, tel);
            }
            max_sub = max_sub.max(sz);
            s_lo += sz;
        }
        if depth == 0 {
            tel.max_sub_bucket = tel.max_sub_bucket.max(max_sub);
        }
    }
    if depth == 0 && omega == 1 {
        tel.max_sub_bucket = tel.max_bucket;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;
    use cache_sim::{CacheConfig, PolicyChoice, Tracker};

    fn sort_host(input: &[Record], omega: usize) -> (Vec<Record>, CoSortTelemetry) {
        let t = Tracker::null();
        let mut a = SimArray::from_vec(&t, input.to_vec());
        let tel = co_asym_sort(&mut a, 0, input.len(), omega, 64);
        (a.into_inner(), tel)
    }

    #[test]
    fn sorts_all_workloads_and_omegas() {
        for wl in Workload::ALL {
            for omega in [1usize, 2, 4, 16] {
                let input = wl.generate(3000, 7);
                let (out, _) = sort_host(&input, omega);
                assert_sorted_permutation(&input, &out);
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        for n in [0usize, 1, 2, 16, 65] {
            let input = Workload::UniformRandom.generate(n, 1);
            let (out, _) = sort_host(&input, 4);
            assert_sorted_permutation(&input, &out);
        }
    }

    #[test]
    fn telemetry_matches_figure_1_shape() {
        let n = 1 << 14;
        let omega = 4usize;
        let input = Workload::UniformRandom.generate(n, 3);
        let (_, tel) = sort_host(&input, omega);
        let expect_subs = (n as f64 * omega as f64).sqrt();
        let expect_buckets = (n as f64 / omega as f64).sqrt();
        assert!(
            (tel.subarrays as f64) > expect_subs / 2.0
                && (tel.subarrays as f64) < expect_subs * 2.0,
            "subarrays {} vs sqrt(n*omega) = {expect_subs:.0}",
            tel.subarrays
        );
        assert!(
            (tel.buckets as f64) > expect_buckets / 4.0
                && (tel.buckets as f64) < expect_buckets * 2.0,
            "buckets {} vs sqrt(n/omega) = {expect_buckets:.0}",
            tel.buckets
        );
        // Max bucket bound: 2*sqrt(n*omega)*log n w.h.p.
        let bucket_bound = 2.0 * expect_subs * (n as f64).log2();
        assert!((tel.max_bucket as f64) < bucket_bound);
        // Max sub-bucket bound: O(sqrt(n/omega) * log n) w.h.p. (allow 4x).
        let sub_bound = 4.0 * expect_buckets * (n as f64).log2();
        assert!(
            (tel.max_sub_bucket as f64) < sub_bound,
            "max sub-bucket {} vs bound {sub_bound:.0}",
            tel.max_sub_bucket
        );
        assert_eq!(tel.fallbacks, 0, "w.h.p. regime should need no fallbacks");
    }

    #[test]
    fn asymmetric_variant_writes_fewer_blocks() {
        let n = 1 << 14;
        let input = Workload::UniformRandom.generate(n, 9);
        let run = |omega: usize| {
            let cfg = CacheConfig::new(512, 8, 8);
            let t = Tracker::new(cfg, PolicyChoice::Lru);
            let mut a = SimArray::from_vec(&t, input.clone());
            co_asym_sort(&mut a, 0, n, omega, 256);
            t.flush();
            (t.stats().loads, t.stats().writebacks)
        };
        let (r1, w1) = run(1);
        let (r8, w8) = run(8);
        assert!(
            w8 < w1,
            "omega=8 should write back fewer blocks: {w8} vs {w1}"
        );
        assert!(r8 > r1, "the write saving costs extra reads: {r8} vs {r1}");
    }

    #[test]
    fn omega_one_is_pure_bgs_no_extra_reads() {
        // With omega = 1 the sub-bucket machinery must not run: the read
        // count should stay within a small factor of the mergesort baseline.
        let n = 1 << 13;
        let input = Workload::UniformRandom.generate(n, 11);
        let cfg = CacheConfig::new(512, 8, 1);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, input.clone());
        co_asym_sort(&mut a, 0, n, 1, 256);
        t.flush();
        let sort_loads = t.stats().loads;
        let t2 = Tracker::new(cfg, PolicyChoice::Lru);
        let mut b = SimArray::from_vec(&t2, input);
        co_mergesort(&mut b, 0, n);
        t2.flush();
        let merge_loads = t2.stats().loads;
        assert!(
            sort_loads < 4 * merge_loads,
            "BGS loads {sort_loads} should be within ~4x of mergesort {merge_loads}"
        );
    }
}

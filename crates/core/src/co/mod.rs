//! §5 — cache-oblivious parallel algorithms with asymmetric read/write costs.
//!
//! All algorithms here are oblivious to the cache parameters M and B (they
//! know only ω, which the paper treats as a main-memory parameter) and run
//! against `cache-sim`'s [`cache_sim::SimArray`]s, so their cache complexity
//! is *measured* under LRU / read-write-LRU / offline-MIN policies rather
//! than derived.
//!
//! * [`transpose`] — recursive blocked matrix transpose, O(nm/B) I/Os.
//! * [`prefix`] — scan-based prefix sums (sequential scans are I/O-optimal
//!   and oblivious; the low-depth variant matters only for depth, which the
//!   PRAM module measures).
//! * [`mergesort`] — classic cache-oblivious mergesort, the symmetric
//!   baseline and the sample-sorting subroutine.
//! * [`sort`] — §5.1 / Figure 1: the low-depth sort with √(nω) subarrays,
//!   √(n/ω) buckets and ω-round sub-bucket partitioning. ω = 1 recovers the
//!   original BGS algorithm exactly (the second baseline).
//! * [`fft`](mod@fft) — §5.2: six-step FFT; the asymmetric variant brute-forces
//!   ω-point column DFTs to cut the recursion depth (and hence writes).
//! * [`matmul`] — §5.3: EM blocked multiply (Theorem 5.2) and the ω²-way
//!   divide-and-conquer with randomized first round (Theorem 5.3).

pub mod fft;
pub mod matmul;
pub mod mergesort;
pub mod prefix;
pub mod sort;
pub mod transpose;

pub use fft::{fft, naive_dft, Cplx, FftVariant};
pub use matmul::{mm_co_4way, mm_co_asym, mm_em_blocked, mm_naive};
pub use mergesort::co_mergesort;
pub use prefix::co_prefix_sums;
pub use sort::{co_asym_sort, CoSortTelemetry};
pub use transpose::co_transpose;

//! The [`Sorter`] trait, one adapter per AEM algorithm, the [`sorters`]
//! registry, and the unified [`SortOutcome`].

use super::spec::{Algorithm, SortSpec};
use crate::em::heapsort::heapsort_run;
use crate::em::mergesort::{aem_mergesort_opts, MergeOpts};
use crate::em::samplesort::samplesort_run;
use crate::par::aem_sample_sort::par_sample_sort_run;
use asym_model::{CostReport, ModelError, Record, Result};
use em_sim::{EmMachine, EmStats, EmVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wd_sim::{Cost, StealStats};

/// Everything one sort job produced, regardless of algorithm: the sorted
/// records, the merged transfer statistics, their ω-weighted rendering, and
/// — for parallel runs — the per-lane / per-phase / scheduler detail that
/// used to live in `par::ParSortRun`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortOutcome {
    /// The sorted records (gathered to host memory, uncharged — the
    /// disk-resident runs are the algorithm's output).
    pub output: Vec<Record>,
    /// Transfer statistics, merged across lanes for parallel runs. Includes
    /// the steal warm-up charge when the spec enables it.
    pub stats: EmStats,
    /// `stats` rendered under the spec's ω.
    pub report: CostReport,
    /// Parallel-only detail (`None` for the sequential algorithms).
    pub parallel: Option<ParData>,
}

impl SortOutcome {
    /// Total asymmetric I/O cost `reads + ω·writes`.
    pub fn io_cost(&self) -> u64 {
        self.report.total()
    }

    /// The transfer stats with any steal warm-up charge subtracted back out
    /// — the schedule-invariant base counts E13's work-preservation claim
    /// is about. Identical to `stats` for sequential runs and for parallel
    /// runs with the knob off.
    pub fn base_stats(&self) -> EmStats {
        match &self.parallel {
            Some(par) => EmStats {
                block_reads: self.stats.block_reads - par.steal_warmup.block_reads,
                block_writes: self.stats.block_writes - par.steal_warmup.block_writes,
                peak_memory: self.stats.peak_memory,
            },
            None => self.stats,
        }
    }
}

/// Per-lane, per-phase, and scheduler measurements of a parallel run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParData {
    /// Final per-lane transfer stats, in worker order (warm-up included
    /// when charged).
    pub lane_stats: Vec<EmStats>,
    /// Per-phase parallel cost (work adds, depth maxes across lanes); the
    /// `steal-warmup` phase is appended when the spec charges steals.
    pub phase_costs: Vec<(&'static str, Cost)>,
    /// Total cost: phases in sequence. `cost.depth` is the modeled span.
    pub cost: Cost,
    /// The simulated work-stealing execution of the phase tree.
    pub sched: StealStats,
    /// The §2 cache warm-up charge folded into the lane stats (zero when
    /// the spec's `steal_charge` knob is off).
    pub steal_warmup: EmStats,
}

/// One sorting algorithm behind the unified front door: adapters translate
/// a validated [`SortSpec`] into machines, run the engine the legacy free
/// function also wraps, and report a [`SortOutcome`].
pub trait Sorter {
    /// Stable identifier (equals `self.kind().name()`); used in bench JSON
    /// and experiment tables.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Which algorithm this adapter fronts.
    fn kind(&self) -> Algorithm;

    /// Run the job described by `spec` over `input`. The spec's algorithm
    /// must match [`Sorter::kind`]; runtime faults (backend I/O, exceeded
    /// leases) surface as [`ModelError`]s.
    fn run(&self, spec: &SortSpec, input: &[Record]) -> Result<SortOutcome>;
}

/// Shared sequential-adapter plumbing: build the spec's machine, stage the
/// input (uncharged), run the engine, gather the output, and leave the
/// store exactly as clean as the engine left it. `expect_clean` asserts a
/// fully-released store after the output is freed — the mergesort and
/// sample sort guarantee it; the heapsort's drained priority queue retains
/// empty structural blocks, so it opts out.
fn run_serial(
    spec: &SortSpec,
    input: &[Record],
    expect_clean: bool,
    engine: impl FnOnce(&EmMachine, EmVec) -> Result<EmVec>,
) -> Result<SortOutcome> {
    let em = spec.machine()?;
    let staged = EmVec::stage(&em, input);
    let sorted = engine(&em, staged)?;
    let output = sorted.read_all_uncharged(&em);
    sorted.free(&em);
    if expect_clean {
        assert_eq!(em.live_blocks(), 0, "engine leaked disk blocks");
    }
    let stats = em.stats();
    Ok(SortOutcome {
        output,
        stats,
        report: stats.report(spec.omega()),
        parallel: None,
    })
}

fn check_kind(sorter: &dyn Sorter, spec: &SortSpec) -> Result<()> {
    if spec.algorithm() != sorter.kind() {
        return Err(ModelError::Invariant(format!(
            "spec describes {} but was handed to the {} sorter",
            spec.algorithm(),
            sorter.name()
        )));
    }
    Ok(())
}

/// Adapter for the AEM mergesort (Algorithm 2).
pub struct MergesortSorter;

impl Sorter for MergesortSorter {
    fn kind(&self) -> Algorithm {
        Algorithm::Mergesort
    }

    fn run(&self, spec: &SortSpec, input: &[Record]) -> Result<SortOutcome> {
        check_kind(self, spec)?;
        run_serial(spec, input, true, |em, v| {
            aem_mergesort_opts(em, v, spec.k(), MergeOpts::default())
        })
    }
}

/// Adapter for the AEM sample sort (§4.2). The spec's seed drives the
/// splitter sampling, so runs are deterministic in the spec.
pub struct SamplesortSorter;

impl Sorter for SamplesortSorter {
    fn kind(&self) -> Algorithm {
        Algorithm::Samplesort
    }

    fn run(&self, spec: &SortSpec, input: &[Record]) -> Result<SortOutcome> {
        check_kind(self, spec)?;
        run_serial(spec, input, true, |em, v| {
            let mut rng = StdRng::seed_from_u64(spec.seed());
            samplesort_run(em, v, spec.k(), &mut rng)
        })
    }
}

/// Adapter for the buffer-tree heapsort (§4.3).
pub struct HeapsortSorter;

impl Sorter for HeapsortSorter {
    fn kind(&self) -> Algorithm {
        Algorithm::Heapsort
    }

    fn run(&self, spec: &SortSpec, input: &[Record]) -> Result<SortOutcome> {
        check_kind(self, spec)?;
        run_serial(spec, input, false, |em, v| heapsort_run(em, v, spec.k()))
    }
}

/// Adapter for the modeled parallel sample sort on lane-sharded machines.
pub struct ParSamplesortSorter;

impl Sorter for ParSamplesortSorter {
    fn kind(&self) -> Algorithm {
        Algorithm::ParSamplesort
    }

    fn run(&self, spec: &SortSpec, input: &[Record]) -> Result<SortOutcome> {
        check_kind(self, spec)?;
        let par = spec.par_machine()?;
        let (run, steal_warmup) =
            par_sample_sort_run(&par, input, spec.k(), spec.seed(), spec.steal_charge())?;
        assert_eq!(par.live_blocks(), 0, "a run must release every block");
        let stats = run.merged;
        Ok(SortOutcome {
            output: run.output,
            stats,
            report: stats.report(spec.omega()),
            parallel: Some(ParData {
                lane_stats: run.lane_stats,
                phase_costs: run.phase_costs,
                cost: run.cost,
                sched: run.sched,
                steal_warmup,
            }),
        })
    }
}

/// Every registered sorter, in [`Algorithm::ALL`] order. Consumers that
/// want "all the sorts" (differential suites, experiment sweeps) enumerate
/// this instead of hard-coding call sites.
pub fn sorters() -> Vec<Box<dyn Sorter>> {
    vec![
        Box::new(MergesortSorter),
        Box::new(SamplesortSorter),
        Box::new(HeapsortSorter),
        Box::new(ParSamplesortSorter),
    ]
}

/// The registered sorter for one algorithm.
pub fn sorter_for(algorithm: Algorithm) -> Box<dyn Sorter> {
    match algorithm {
        Algorithm::Mergesort => Box::new(MergesortSorter),
        Algorithm::Samplesort => Box::new(SamplesortSorter),
        Algorithm::Heapsort => Box::new(HeapsortSorter),
        Algorithm::ParSamplesort => Box::new(ParSamplesortSorter),
    }
}

/// Run the job described by `spec` with its algorithm's registered sorter —
/// the one-call front door.
pub fn run(spec: &SortSpec, input: &[Record]) -> Result<SortOutcome> {
    sorter_for(spec.algorithm()).run(spec, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_model::record::assert_sorted_permutation;
    use asym_model::workload::Workload;

    fn spec_for(algorithm: Algorithm) -> SortSpec {
        SortSpec::builder(algorithm, 32, 4, 8)
            .k(2)
            .lanes(if algorithm.is_parallel() { 4 } else { 1 })
            .seed(11)
            .build()
            .expect("valid spec")
    }

    #[test]
    fn registry_covers_every_algorithm_with_matching_names() {
        let all = sorters();
        assert_eq!(all.len(), Algorithm::ALL.len());
        for (sorter, algorithm) in all.iter().zip(Algorithm::ALL) {
            assert_eq!(sorter.kind(), algorithm);
            assert_eq!(sorter.name(), algorithm.name());
            assert_eq!(sorter_for(algorithm).kind(), algorithm);
        }
    }

    #[test]
    fn every_sorter_sorts_and_reports_costs() {
        let input = Workload::UniformRandom.generate(1200, 0x5027);
        for sorter in sorters() {
            let spec = spec_for(sorter.kind());
            let outcome = sorter.run(&spec, &input).expect("run");
            assert_sorted_permutation(&input, &outcome.output);
            assert!(outcome.stats.block_writes > 0, "{}", sorter.name());
            assert_eq!(
                outcome.io_cost(),
                outcome.stats.block_reads + 8 * outcome.stats.block_writes
            );
            assert_eq!(
                outcome.parallel.is_some(),
                sorter.kind().is_parallel(),
                "{}",
                sorter.name()
            );
            assert_eq!(outcome.base_stats(), outcome.stats, "knob off: no warm-up");
        }
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let spec = spec_for(Algorithm::Mergesort);
        let err = HeapsortSorter.run(&spec, &[]).unwrap_err();
        assert!(matches!(err, ModelError::Invariant(_)));
    }

    #[test]
    fn dispatching_run_matches_direct_adapter_calls() {
        let input = Workload::Zipf.generate(800, 3);
        for algorithm in Algorithm::ALL {
            let spec = spec_for(algorithm);
            let via_dispatch = run(&spec, &input).expect("dispatch");
            let via_adapter = sorter_for(algorithm).run(&spec, &input).expect("adapter");
            assert_eq!(via_dispatch.output, via_adapter.output);
            assert_eq!(via_dispatch.stats, via_adapter.stats);
        }
    }
}

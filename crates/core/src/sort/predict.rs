//! Pre-run cost prediction: the paper's read/write/memory bounds as a
//! scheduling API.
//!
//! The cost model's defining feature is that a sort's resource needs are
//! known *before* it runs: the theorems bound block reads, block writes,
//! and the primary-memory footprint purely in terms of the job description
//! `(algorithm, n, M, B, k, lanes)`. [`SortSpec::predict`] evaluates those
//! bounds into a [`CostEstimate`], which is exactly what a multi-tenant
//! scheduler needs for admission control — `asym-serve` bounds total
//! in-flight [`CostEstimate::peak_memory`] against its budget and rejects
//! over-budget submissions without ever starting them.
//!
//! Two different strengths of guarantee are on offer:
//!
//! * `peak_memory` is a **hard bound**: every machine lease is checked
//!   against `M + slack` (per lane), so the measured
//!   [`EmStats::peak_memory`](em_sim::EmStats) can never exceed the
//!   prediction. `tests/predict_bounds.rs` pins this across every
//!   registered sorter and ω ∈ {1, 8, 32}.
//! * `reads` / `writes` are **envelope bounds** from the theorem statements
//!   (Theorem 4.3 for the mergesort, Theorem 4.5 for the sample sorts,
//!   Theorem 4.10 for the heapsort) with the same constants the
//!   `tests/cost_bounds.rs` suite verifies empirically — safe for capacity
//!   planning, deliberately not tight.

use super::spec::{Algorithm, SortSpec};
use asym_model::stats::ceil_log_base;

/// Predicted resource bounds for one sort job over `n` records (see
/// [`SortSpec::predict`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostEstimate {
    /// Upper bound on modeled block reads.
    pub reads: u64,
    /// Upper bound on modeled block writes (unweighted).
    pub writes: u64,
    /// Hard bound on the peak primary-memory lease, in records, summed
    /// across lanes (each lane's leases are capped at `M + slack`).
    pub peak_memory: usize,
    /// The spec's write cost ω, for weighting.
    pub omega: u64,
}

impl CostEstimate {
    /// Upper bound on the asymmetric I/O cost `reads + ω·writes`.
    pub fn io_cost(&self) -> u64 {
        self.reads + self.omega * self.writes
    }

    /// The peak-memory bound in bytes (records are 16 bytes: key + payload).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_memory as u64 * std::mem::size_of::<asym_model::Record>() as u64
    }
}

impl SortSpec {
    /// Evaluate the paper's cost bounds for this job over `n` records,
    /// before running anything.
    ///
    /// ```
    /// use asym_core::sort::{Algorithm, SortSpec};
    /// let spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
    ///     .k(4)
    ///     .build()
    ///     .unwrap();
    /// let est = spec.predict(100_000);
    /// assert!(est.peak_memory >= 64); // at least one full memory
    /// assert!(est.writes < est.reads); // k > 1 trades reads for writes
    /// ```
    pub fn predict(&self, n: usize) -> CostEstimate {
        let (m, b, k) = (self.m(), self.b(), self.k());
        let blocks = n.div_ceil(b).max(1) as u64;
        // Merge/distribution levels at the serial fan-in kM/B
        // (ceil_log_base clamps to >= 1).
        let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
        let (reads, writes) = match self.algorithm() {
            // Theorem 4.3: (n/B)·log_{kM/B}(n/B) writes, k+1 reads per
            // written block.
            Algorithm::Mergesort => ((k as u64 + 1) * blocks * levels, blocks * levels),
            // Theorem 4.5 envelope (constants per tests/cost_bounds.rs):
            // each level re-reads up to k+4 times over a 4x block envelope.
            Algorithm::Samplesort => ((k as u64 + 4) * 4 * blocks * levels, 4 * blocks * levels),
            // Theorem 4.10 amortized per-operation costs over 2n operations
            // (n inserts + n delete-mins), buffer-tree constants included.
            Algorithm::Heapsort => {
                let ops = 2.0 * n.max(1) as f64;
                let tree_levels = 1.0 + (n.max(2) as f64).ln() / ((k * m) as f64 / b as f64).ln();
                let reads = (12.0 * (k as f64 / b as f64) * tree_levels * ops).ceil() as u64;
                let writes = (12.0 * (1.0 / b as f64) * tree_levels * ops).ceil() as u64;
                (reads, writes)
            }
            // The parallel sample sort buckets at fan-in M/B regardless of k
            // (k only reaches the per-bucket serial mergesort), so its level
            // count uses the smaller base; the work bound is the serial
            // sample sort's envelope plus per-lane splitter/scan overhead
            // and, when charged, the §2 steal warm-up (O(M/B) per steal,
            // steals bounded by the per-phase lane count).
            Algorithm::ParSamplesort => {
                let par_levels = ceil_log_base(m as f64 / b as f64, blocks as f64);
                let lanes = self.lanes() as u64;
                let per_lane = lanes * par_levels * (m / b).max(1) as u64;
                let reads = (k as u64 + 4) * 4 * blocks * par_levels + 4 * per_lane;
                let writes = 4 * blocks * par_levels + per_lane;
                (reads, writes)
            }
        };
        CostEstimate {
            reads,
            writes,
            // Hard bound: each lane's leases are capped at M + slack.
            peak_memory: (m + self.slack()) * self.lanes(),
            omega: self.omega(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(algorithm: Algorithm, k: usize) -> SortSpec {
        SortSpec::builder(algorithm, 32, 4, 8)
            .k(k)
            .lanes(if algorithm.is_parallel() { 4 } else { 1 })
            .build()
            .expect("valid spec")
    }

    #[test]
    fn estimate_totals_weigh_writes_by_omega() {
        let est = spec(Algorithm::Mergesort, 2).predict(10_000);
        assert_eq!(est.io_cost(), est.reads + 8 * est.writes);
        assert_eq!(est.peak_bytes(), est.peak_memory as u64 * 16);
        assert!(est.reads > 0 && est.writes > 0);
    }

    #[test]
    fn peak_memory_scales_with_lanes_and_slack() {
        let serial = spec(Algorithm::Samplesort, 2);
        assert_eq!(serial.predict(1000).peak_memory, 32 + serial.slack());
        let par = spec(Algorithm::ParSamplesort, 2);
        assert_eq!(par.predict(1000).peak_memory, (32 + par.slack()) * 4);
    }

    #[test]
    fn raising_k_lowers_the_predicted_write_bound() {
        let w1 = spec(Algorithm::Mergesort, 1).predict(100_000).writes;
        let w4 = spec(Algorithm::Mergesort, 4).predict(100_000).writes;
        assert!(w4 <= w1, "k=4 writes {w4} must not exceed k=1 writes {w1}");
    }

    #[test]
    fn degenerate_sizes_stay_finite() {
        for algorithm in Algorithm::ALL {
            for n in [0usize, 1, 2] {
                let est = spec(algorithm, 1).predict(n);
                assert!(est.reads > 0, "{algorithm} n={n}");
                assert!(est.peak_memory >= 32, "{algorithm} n={n}");
            }
        }
    }
}

//! The unified sort-job API: one front door for every AEM sort.
//!
//! The paper presents its three sequential sorts and the parallel schedule
//! as instances of one question — how many reads and ω-weighted writes does
//! a sort pay on a machine with memory `M`, blocks `B`, and write cost ω —
//! so the repo fronts them with one job description instead of four free
//! functions with incompatible signatures:
//!
//! * [`SortSpec`] — a validated, serializable-in-spirit description of one
//!   job: algorithm, geometry `(M, B, ω)`, write-saving factor `k`, lanes,
//!   storage [`Backend`](em_sim::Backend), seed, slack, and the §2
//!   steal-charging knob. Invalid combinations are typed [`SpecError`]s at
//!   build time; [`SortSpecBuilder::from_env`] absorbs the `ASYM_BENCH_*`
//!   variables in one place.
//! * [`Sorter`] — the algorithm-behind-a-trait: `name`, `kind`, and
//!   `run(&spec, input) -> SortOutcome`. Four adapters wrap the same
//!   engines the (now deprecated) free functions delegate to, so the two
//!   paths are cost-identical by construction — `tests/cost_golden.rs`
//!   freezes the counts through the legacy names and a registry-driven
//!   differential suite pins the equivalence.
//! * [`SortOutcome`] — output, merged [`EmStats`](em_sim::EmStats), a
//!   [`CostReport`](asym_model::CostReport), and per-lane / per-phase /
//!   scheduler detail for parallel runs.
//! * [`sorters`] — the registry; experiments and differential tests
//!   enumerate it instead of hard-coding call sites.
//! * [`SortSpec::predict`] — the paper's cost bounds evaluated pre-run as a
//!   [`CostEstimate`], the admission-control currency of the job server.
//! * [`SortSpec::to_json`] / [`SortOutcome::to_json`] — the JSON wire
//!   format ([`wire`]), with every decode failure a typed [`WireError`].
//!
//! ```
//! use asym_core::sort::{Algorithm, SortSpec};
//! use asym_model::workload::Workload;
//!
//! let spec = SortSpec::builder(Algorithm::Mergesort, 64, 8, 16)
//!     .k(4) // trade 4x reads for ~1/2 the write levels
//!     .build()
//!     .expect("valid spec");
//! let input = Workload::UniformRandom.generate(10_000, 42);
//! let outcome = asym_core::sort::run(&spec, &input).expect("sort");
//! assert!(outcome.output.windows(2).all(|w| w[0] <= w[1]));
//! println!(
//!     "{}: {} reads, {} writes, I/O cost {}",
//!     spec.algorithm(),
//!     outcome.stats.block_reads,
//!     outcome.stats.block_writes,
//!     outcome.io_cost()
//! );
//! ```

pub mod adapters;
pub mod checkpoint;
pub mod predict;
pub mod spec;
pub mod wire;

pub use checkpoint::{
    input_digest, predict_staged, resume_from, run_staged, CheckpointManifest, Checkpointer,
    MemCheckpointer, StagePlan, MANIFEST_VERSION,
};

pub use adapters::{
    run, sorter_for, sorters, HeapsortSorter, MergesortSorter, ParData, ParSamplesortSorter,
    SamplesortSorter, SortOutcome, Sorter,
};
pub use predict::CostEstimate;
pub use spec::{
    env_backend, env_thread_cap, parse_backend, parse_thread_cap, Algorithm, SortSpec,
    SortSpecBuilder, SpecError, BACKEND_ENV, THREADS_ENV,
};
pub use wire::WireError;

//! The JSON wire format: [`SortSpec`] and [`SortOutcome`] as network
//! payloads.
//!
//! `SortSpec` was already a validated, serializable-in-spirit job
//! description; this module makes it an actual wire format so jobs can
//! arrive over HTTP (the `asym-serve` front door), from config files, or
//! from replayed audit logs. Everything is built on the dependency-free
//! [`asym_model::json`] codec, and every failure is typed:
//!
//! * syntactic problems (bad JSON, missing fields, unknown names) are
//!   [`WireError::Malformed`];
//! * semantically invalid job descriptions surface the builder's
//!   [`SpecError`] verbatim as [`WireError::Spec`] — the wire layer adds no
//!   second validation path, it routes through [`SortSpecBuilder::build`]
//!   like every other caller.
//!
//! [`WireError::to_json`] renders either case as a structured error payload
//! (`{"error": ..., "kind": ..., "message": ...}`) so HTTP clients can
//! dispatch on `kind` instead of parsing prose.
//!
//! Integers cross the wire exactly — record keys and seeds are full-range
//! `u64`, which is why [`asym_model::json`] keeps bare digit runs out of
//! `f64` (see `Json::Int`). Round trips are property-tested in
//! `tests/wire_roundtrip.rs`.
//!
//! [`SortSpecBuilder::build`]: super::spec::SortSpecBuilder::build

use super::adapters::{ParData, SortOutcome};
use super::spec::{Algorithm, SortSpec, SpecError};
use asym_model::json::{self, Json, JsonArr, JsonObj};
use asym_model::Record;
use em_sim::{Backend, EmStats, FaultSpec};
use wd_sim::{Cost, StealStats};

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The document is not JSON, or not the expected shape (missing or
    /// ill-typed fields, unknown algorithm/backend/phase names).
    Malformed(String),
    /// The document decoded fine but describes an invalid job.
    Spec(SpecError),
}

impl WireError {
    /// Render as a structured error payload. `Malformed` carries its
    /// message; `Spec` carries a stable `kind` slug plus the variant's
    /// fields, so clients dispatch on structure rather than prose.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        match self {
            WireError::Malformed(msg) => {
                o.str("error", "malformed").str("message", msg);
            }
            WireError::Spec(e) => {
                o.str("error", "spec")
                    .str("kind", spec_error_kind(e))
                    .str("message", &e.to_string());
                match e {
                    SpecError::BlockExceedsMemory { b, m } => {
                        o.u64("b", *b as u64).u64("m", *m as u64);
                    }
                    SpecError::FanInTooSmall { fan_in } => {
                        o.u64("fan_in", *fan_in as u64);
                    }
                    SpecError::LanesOnSerialSort { algorithm, lanes } => {
                        o.str("algorithm", algorithm.name())
                            .u64("lanes", *lanes as u64);
                    }
                    SpecError::GeometryOverflow { m, k } => {
                        o.u64("m", *m as u64).u64("k", *k as u64);
                    }
                    SpecError::FaultRate { field, permille } => {
                        o.str("field", field).u64("permille", *permille as u64);
                    }
                    SpecError::Env {
                        var,
                        value,
                        expected,
                    } => {
                        o.str("var", var)
                            .str("value", value)
                            .str("expected", expected);
                    }
                    _ => {}
                }
            }
        }
        o.finish()
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Spec(e) => write!(f, "invalid job description: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<SpecError> for WireError {
    fn from(e: SpecError) -> Self {
        WireError::Spec(e)
    }
}

/// The stable machine-readable slug for each [`SpecError`] variant.
fn spec_error_kind(e: &SpecError) -> &'static str {
    match e {
        SpecError::ZeroOmega => "zero_omega",
        SpecError::ZeroBlock => "zero_block",
        SpecError::BlockExceedsMemory { .. } => "block_exceeds_memory",
        SpecError::ZeroWriteFactor => "zero_write_factor",
        SpecError::FanInTooSmall { .. } => "fan_in_too_small",
        SpecError::ZeroLanes => "zero_lanes",
        SpecError::LanesOnSerialSort { .. } => "lanes_on_serial_sort",
        SpecError::GeometryOverflow { .. } => "geometry_overflow",
        SpecError::FaultRate { .. } => "fault_rate",
        SpecError::Env { .. } => "env",
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

fn req_u64(obj: &[(String, Json)], key: &str) -> Result<u64, WireError> {
    json::get_u64(obj, key).ok_or_else(|| malformed(format!("missing numeric field {key:?}")))
}

impl SortSpec {
    /// Render the job description as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("algorithm", self.algorithm().name())
            .u64("m", self.m() as u64)
            .u64("b", self.b() as u64)
            .u64("omega", self.omega())
            .u64("k", self.k() as u64)
            .u64("lanes", self.lanes() as u64)
            .str("backend", self.backend().name())
            .u64("seed", self.seed())
            .u64("slack", self.slack() as u64)
            .bool("steal_charge", self.steal_charge());
        if let Some(dir) = self.file_dir() {
            o.str("file_dir", &dir.display().to_string());
        }
        if let Some(f) = self.fault() {
            let mut fo = JsonObj::new();
            fo.u64("seed", f.seed)
                .u64("read_permille", f.read_permille as u64)
                .u64("write_permille", f.write_permille as u64)
                .u64("short_permille", f.short_permille as u64)
                .u64("panic_permille", f.panic_permille as u64);
            o.raw("fault", &fo.finish());
        }
        o.finish()
    }

    /// Decode a job description, validating through the normal builder.
    /// Required fields: `algorithm`, `m`, `b`, `omega`; everything else
    /// defaults like [`SortSpec::builder`]. [`Backend::Custom`] is not
    /// wire-nameable (custom stores are constructed in code).
    pub fn from_json(text: &str) -> Result<SortSpec, WireError> {
        let v = Json::parse(text).map_err(WireError::Malformed)?;
        Self::from_json_value(&v)
    }

    /// Decode from an already-parsed [`Json`] value (e.g. a field of a
    /// larger request object).
    pub fn from_json_value(v: &Json) -> Result<SortSpec, WireError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| malformed("spec must be a JSON object"))?;
        let name = json::get_str(obj, "algorithm")
            .ok_or_else(|| malformed("missing string field \"algorithm\""))?;
        let algorithm = Algorithm::parse(&name)
            .ok_or_else(|| malformed(format!("unknown algorithm {name:?}")))?;
        let m = req_u64(obj, "m")? as usize;
        let b = req_u64(obj, "b")? as usize;
        let omega = req_u64(obj, "omega")?;
        let mut builder = SortSpec::builder(algorithm, m, b, omega);
        if let Some(k) = json::get_u64(obj, "k") {
            builder = builder.k(k as usize);
        }
        if let Some(lanes) = json::get_u64(obj, "lanes") {
            builder = builder.lanes(lanes as usize);
        }
        if let Some(seed) = json::get_u64(obj, "seed") {
            builder = builder.seed(seed);
        }
        if let Some(slack) = json::get_u64(obj, "slack") {
            builder = builder.slack(slack as usize);
        }
        if let Some(on) = json::get_bool(obj, "steal_charge") {
            builder = builder.steal_charge(on);
        }
        if let Some(name) = json::get_str(obj, "backend") {
            let backend = Backend::parse(&name)
                .ok_or_else(|| malformed(format!("unknown backend {name:?}")))?;
            builder = builder.backend(backend);
        }
        if let Some(dir) = json::get_str(obj, "file_dir") {
            builder = builder.file_dir(dir);
        }
        if let Some(fv) = json::find(obj, "fault") {
            let fo = fv
                .as_obj()
                .ok_or_else(|| malformed("\"fault\" must be an object"))?;
            // Rates clamp into u16 here; the builder rejects anything over
            // 1000 permille with a typed error either way.
            let rate = |key| json::get_u64(fo, key).unwrap_or(0).min(u16::MAX as u64) as u16;
            builder = builder.fault(Some(FaultSpec {
                seed: json::get_u64(fo, "seed").unwrap_or(0),
                read_permille: rate("read_permille"),
                write_permille: rate("write_permille"),
                short_permille: rate("short_permille"),
                panic_permille: rate("panic_permille"),
            }));
        }
        builder.build().map_err(WireError::Spec)
    }
}

// ---- outcome telemetry ------------------------------------------------------

/// The parallel phase names that can appear on the wire (the fixed phase
/// sequence of the parallel sample sort, plus the appended steal-warm-up
/// phase). Decoding interns onto these `'static` names.
const PHASE_NAMES: [&str; 6] = [
    "sample-scan",
    "splitter-sort",
    "count",
    "exchange",
    "bucket-sort",
    "steal-warmup",
];

fn intern_phase(name: &str) -> Option<&'static str> {
    PHASE_NAMES.iter().find(|p| **p == name).copied()
}

fn stats_json(s: &EmStats) -> String {
    let mut o = JsonObj::new();
    o.u64("reads", s.block_reads)
        .u64("writes", s.block_writes)
        .u64("peak_memory", s.peak_memory as u64);
    o.finish()
}

fn stats_from(v: &Json, what: &str) -> Result<EmStats, WireError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| malformed(format!("{what} must be an object")))?;
    Ok(EmStats {
        block_reads: req_u64(obj, "reads")?,
        block_writes: req_u64(obj, "writes")?,
        peak_memory: req_u64(obj, "peak_memory")? as usize,
    })
}

fn cost_json(c: &Cost) -> String {
    let mut o = JsonObj::new();
    o.u64("reads", c.reads)
        .u64("writes", c.writes)
        .u64("depth", c.depth);
    o.finish()
}

fn cost_from(v: &Json, what: &str) -> Result<Cost, WireError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| malformed(format!("{what} must be an object")))?;
    Ok(Cost {
        reads: req_u64(obj, "reads")?,
        writes: req_u64(obj, "writes")?,
        depth: req_u64(obj, "depth")?,
    })
}

impl SortOutcome {
    /// Render the outcome as JSON telemetry: the merged stats, ω, the
    /// weighted total, per-lane / per-phase / scheduler detail for parallel
    /// runs, and — only when `include_output` — the sorted records
    /// themselves as `[key, payload]` pairs (telemetry consumers usually
    /// want counts, not payload bytes).
    pub fn to_json(&self, include_output: bool) -> String {
        let mut o = JsonObj::new();
        o.u64("reads", self.stats.block_reads)
            .u64("writes", self.stats.block_writes)
            .u64("peak_memory", self.stats.peak_memory as u64)
            .u64("omega", self.report.omega)
            .u64("io_cost", self.io_cost())
            .u64("output_len", self.output.len() as u64);
        if include_output {
            let mut arr = JsonArr::new();
            for r in &self.output {
                arr.raw(&format!("[{}, {}]", r.key, r.payload));
            }
            o.raw("output", &arr.finish());
        }
        if let Some(par) = &self.parallel {
            let mut p = JsonObj::new();
            let mut lanes = JsonArr::new();
            for lane in &par.lane_stats {
                lanes.raw(&stats_json(lane));
            }
            p.raw("lane_stats", &lanes.finish());
            let mut phases = JsonArr::new();
            for (name, cost) in &par.phase_costs {
                let mut ph = JsonObj::new();
                ph.str("name", name).raw("cost", &cost_json(cost));
                phases.raw(&ph.finish());
            }
            p.raw("phases", &phases.finish());
            p.raw("cost", &cost_json(&par.cost));
            let mut sched = JsonObj::new();
            sched
                .u64("steals", par.sched.steals)
                .u64("failed_steals", par.sched.failed_steals)
                .u64("time", par.sched.time)
                .u64("work", par.sched.work)
                .u64("depth", par.sched.depth);
            p.raw("sched", &sched.finish());
            p.raw("steal_warmup", &stats_json(&par.steal_warmup));
            o.raw("parallel", &p.finish());
        }
        o.finish()
    }

    /// Decode telemetry back into a [`SortOutcome`]. An absent `output`
    /// field (telemetry without payload) decodes as an empty output vector;
    /// `output_len` is informative only.
    pub fn from_json(text: &str) -> Result<SortOutcome, WireError> {
        let v = Json::parse(text).map_err(WireError::Malformed)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| malformed("outcome must be a JSON object"))?;
        let stats = EmStats {
            block_reads: req_u64(obj, "reads")?,
            block_writes: req_u64(obj, "writes")?,
            peak_memory: req_u64(obj, "peak_memory")? as usize,
        };
        let omega = req_u64(obj, "omega")?;
        let mut output = Vec::new();
        if let Some(arr) = json::find(obj, "output") {
            let items = arr
                .as_arr()
                .ok_or_else(|| malformed("\"output\" must be an array"))?;
            for item in items {
                let pair = item
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| malformed("output records are [key, payload] pairs"))?;
                let key = pair[0]
                    .as_u64()
                    .ok_or_else(|| malformed("record key must be a u64"))?;
                let payload = pair[1]
                    .as_u64()
                    .ok_or_else(|| malformed("record payload must be a u64"))?;
                output.push(Record::new(key, payload));
            }
        }
        let parallel = match json::find(obj, "parallel") {
            None => None,
            Some(p) => {
                let po = p
                    .as_obj()
                    .ok_or_else(|| malformed("\"parallel\" must be an object"))?;
                let lane_stats = json::find(po, "lane_stats")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| malformed("missing \"lane_stats\" array"))?
                    .iter()
                    .map(|v| stats_from(v, "lane stats"))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut phase_costs = Vec::new();
                for ph in json::find(po, "phases")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| malformed("missing \"phases\" array"))?
                {
                    let pho = ph
                        .as_obj()
                        .ok_or_else(|| malformed("phase must be an object"))?;
                    let name = json::get_str(pho, "name")
                        .ok_or_else(|| malformed("phase missing \"name\""))?;
                    let name = intern_phase(&name)
                        .ok_or_else(|| malformed(format!("unknown phase {name:?}")))?;
                    let cost = cost_from(
                        json::find(pho, "cost").ok_or_else(|| malformed("phase missing cost"))?,
                        "phase cost",
                    )?;
                    phase_costs.push((name, cost));
                }
                let cost = cost_from(
                    json::find(po, "cost").ok_or_else(|| malformed("missing \"cost\""))?,
                    "cost",
                )?;
                let so = json::find(po, "sched")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| malformed("missing \"sched\" object"))?;
                let sched = StealStats {
                    steals: req_u64(so, "steals")?,
                    failed_steals: req_u64(so, "failed_steals")?,
                    time: req_u64(so, "time")?,
                    work: req_u64(so, "work")?,
                    depth: req_u64(so, "depth")?,
                };
                let steal_warmup = stats_from(
                    json::find(po, "steal_warmup")
                        .ok_or_else(|| malformed("missing \"steal_warmup\""))?,
                    "steal warm-up",
                )?;
                Some(ParData {
                    lane_stats,
                    phase_costs,
                    cost,
                    sched,
                    steal_warmup,
                })
            }
        };
        Ok(SortOutcome {
            output,
            stats,
            report: stats.report(omega),
            parallel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::run;
    use asym_model::workload::Workload;

    #[test]
    fn spec_round_trips_for_every_algorithm() {
        for algorithm in Algorithm::ALL {
            let spec = SortSpec::builder(algorithm, 64, 8, 16)
                .k(2)
                .lanes(if algorithm.is_parallel() { 4 } else { 1 })
                .seed(0xFEED_FACE_CAFE_BEEF)
                .steal_charge(algorithm.is_parallel())
                .build()
                .expect("valid spec");
            let decoded = SortSpec::from_json(&spec.to_json()).expect("decode");
            assert_eq!(decoded, spec, "{algorithm}");
        }
    }

    #[test]
    fn spec_with_file_dir_round_trips() {
        let spec = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .backend(Backend::File)
            .file_dir("/tmp/job-17")
            .build()
            .expect("valid spec");
        let decoded = SortSpec::from_json(&spec.to_json()).expect("decode");
        assert_eq!(decoded, spec);
        assert_eq!(
            decoded.file_dir().unwrap().display().to_string(),
            "/tmp/job-17"
        );
    }

    #[test]
    fn minimal_spec_takes_builder_defaults() {
        let decoded =
            SortSpec::from_json(r#"{"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8}"#)
                .expect("decode");
        let built = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .build()
            .unwrap();
        assert_eq!(decoded, built);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for (text, needle) in [
            ("{", "expected"),
            ("[1]", "must be a JSON object"),
            (r#"{"m": 32}"#, "algorithm"),
            (
                r#"{"algorithm": "bogosort", "m": 32, "b": 4, "omega": 8}"#,
                "unknown algorithm",
            ),
            (
                r#"{"algorithm": "aem-mergesort", "b": 4, "omega": 8}"#,
                "\"m\"",
            ),
            (
                r#"{"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8, "backend": "nvme"}"#,
                "unknown backend",
            ),
        ] {
            let err = SortSpec::from_json(text).unwrap_err();
            assert!(
                matches!(err, WireError::Malformed(ref m) if m.contains(needle)),
                "{text}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_specs_surface_spec_errors_as_structured_payloads() {
        // Valid JSON, invalid job: lanes on a serial sort.
        let err = SortSpec::from_json(
            r#"{"algorithm": "aem-heapsort", "m": 32, "b": 4, "omega": 8, "lanes": 4}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            WireError::Spec(SpecError::LanesOnSerialSort {
                algorithm: Algorithm::Heapsort,
                lanes: 4
            })
        );
        let payload = Json::parse(&err.to_json()).expect("error payload is JSON");
        assert_eq!(payload.get("error").and_then(Json::as_str), Some("spec"));
        assert_eq!(
            payload.get("kind").and_then(Json::as_str),
            Some("lanes_on_serial_sort")
        );
        assert_eq!(
            payload.get("algorithm").and_then(Json::as_str),
            Some("aem-heapsort")
        );
        assert_eq!(payload.get("lanes").and_then(Json::as_u64), Some(4));
        assert!(payload.get("message").is_some());
    }

    #[test]
    fn every_spec_error_variant_renders_kind_and_parses() {
        let variants = [
            SpecError::ZeroOmega,
            SpecError::ZeroBlock,
            SpecError::BlockExceedsMemory { b: 8, m: 4 },
            SpecError::ZeroWriteFactor,
            SpecError::FanInTooSmall { fan_in: 1 },
            SpecError::ZeroLanes,
            SpecError::LanesOnSerialSort {
                algorithm: Algorithm::Mergesort,
                lanes: 2,
            },
            SpecError::GeometryOverflow {
                m: usize::MAX,
                k: 2,
            },
            SpecError::FaultRate {
                field: "read_permille",
                permille: 1001,
            },
            SpecError::Env {
                var: "ASYM_BENCH_BACKEND",
                value: "nvme".into(),
                expected: "\"mem\" or \"file\"",
            },
        ];
        let mut kinds = std::collections::HashSet::new();
        for e in variants {
            let payload = Json::parse(&WireError::Spec(e).to_json()).expect("parses");
            let kind = payload
                .get("kind")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            assert!(kinds.insert(kind), "kind slugs must be distinct");
        }
        assert_eq!(kinds.len(), 10);
    }

    #[test]
    fn spec_with_fault_schedule_round_trips() {
        let spec = SortSpec::builder(Algorithm::Samplesort, 64, 8, 16)
            .k(2)
            .fault(Some(FaultSpec {
                seed: 0xC4A05,
                read_permille: 100,
                write_permille: 100,
                short_permille: 250,
                panic_permille: 5,
            }))
            .build()
            .expect("valid spec");
        let decoded = SortSpec::from_json(&spec.to_json()).expect("decode");
        assert_eq!(decoded, spec);
        assert_eq!(decoded.fault().unwrap().read_permille, 100);
        // Out-of-range rates arriving over the wire surface the builder's
        // typed error, not a silent wrap.
        let err = SortSpec::from_json(
            r#"{"algorithm": "aem-mergesort", "m": 32, "b": 4, "omega": 8,
                "fault": {"seed": 1, "write_permille": 90000}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Spec(SpecError::FaultRate {
                    field: "write_permille",
                    ..
                })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn sequential_outcome_round_trips_with_and_without_output() {
        let spec = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .k(2)
            .build()
            .unwrap();
        let input = Workload::UniformRandom.generate(500, 7);
        let outcome = run(&spec, &input).expect("run");
        let with = SortOutcome::from_json(&outcome.to_json(true)).expect("decode");
        assert_eq!(with.output, outcome.output, "full-range keys survive");
        assert_eq!(with.stats, outcome.stats);
        assert_eq!(with.report, outcome.report);
        assert!(with.parallel.is_none());
        let without = SortOutcome::from_json(&outcome.to_json(false)).expect("decode");
        assert!(without.output.is_empty());
        assert_eq!(without.stats, outcome.stats);
    }

    #[test]
    fn parallel_outcome_round_trips_all_detail() {
        let spec = SortSpec::builder(Algorithm::ParSamplesort, 32, 4, 8)
            .lanes(4)
            .steal_charge(true)
            .build()
            .unwrap();
        let input = Workload::Zipf.generate(600, 3);
        let outcome = run(&spec, &input).expect("run");
        let decoded = SortOutcome::from_json(&outcome.to_json(true)).expect("decode");
        assert_eq!(decoded.output, outcome.output);
        assert_eq!(decoded.stats, outcome.stats);
        let (a, b) = (decoded.parallel.unwrap(), outcome.parallel.unwrap());
        assert_eq!(a.lane_stats, b.lane_stats);
        assert_eq!(a.phase_costs, b.phase_costs);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.sched, b.sched);
        assert_eq!(a.steal_warmup, b.steal_warmup);
    }

    #[test]
    fn unknown_phase_names_are_rejected() {
        let text = r#"{ "reads": 1, "writes": 1, "peak_memory": 4, "omega": 8, "output_len": 0,
            "parallel": { "lane_stats": [],
                "phases": [{ "name": "warp-drive", "cost": { "reads": 0, "writes": 0, "depth": 0 } }],
                "cost": { "reads": 0, "writes": 0, "depth": 0 },
                "sched": { "steals": 0, "failed_steals": 0, "time": 0, "work": 0, "depth": 0 },
                "steal_warmup": { "reads": 0, "writes": 0, "peak_memory": 0 } } }"#;
        let err = SortOutcome::from_json(text).unwrap_err();
        assert!(matches!(err, WireError::Malformed(ref m) if m.contains("warp-drive")));
    }
}

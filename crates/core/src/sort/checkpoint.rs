//! Phase-boundary checkpoint/resume for staged sort runs.
//!
//! A staged run decomposes one sort job into a deterministic sequence of
//! phases computed from `(spec, n)` alone ([`StagePlan`]): the input is
//! cut into block-aligned chunks, each chunk phase sorts one chunk with
//! the spec's registered sorter, then merge-round phases fold the sorted
//! runs `l = kM/B` at a time with the Lemma 4.1 merge until one run
//! survives. After every completed phase the executor hands a versioned
//! [`CheckpointManifest`] — phase counter, surviving run layout,
//! cumulative [`EmStats`], input digest — to a [`Checkpointer`] sink;
//! `asym-serve` appends it to its audit WAL as a `checkpointed` event, so
//! the manifest is durable the moment the phase's writes are.
//!
//! [`resume_from`] verifies the digest, rebuilds the machine state from
//! the manifest's surviving runs (restaged uncharged — their writes were
//! paid, and recorded, by the prefix), and continues from the first
//! incomplete phase. Phases are deterministic in `(spec, input)` and the
//! cumulative fold is associative (reads/writes add, peaks max), so the
//! modeled cost of `resume ⊕ prefix` is bit-identical to an uninterrupted
//! staged run — that equality is the paper's "writes are the expensive
//! resource" argument turned into a recovery property: work already
//! written is never re-written. `tests/checkpoint_resume.rs` pins it for
//! every registry sorter; the serve chaos harness's "never redo paid
//! writes" gate builds on it.
//!
//! Staged execution is a different (checkpointable) schedule of the same
//! sort: its output is identical to [`super::run`] (every sorter is a
//! total order on records), but its modeled costs differ from the
//! single-shot path's, so [`predict_staged`] prices it — per-chunk
//! theorem envelopes plus a Lemma 4.1 envelope per merge round.

use super::adapters::{sorter_for, SortOutcome};
use super::predict::CostEstimate;
use super::spec::SortSpec;
use super::wire::WireError;
use crate::em::mergesort::{merge_sorted_runs, mergesort_slack};
use asym_model::json::{self, Json, JsonArr, JsonObj};
use asym_model::{ModelError, Record, Result};
use em_sim::{EmStats, EmVec};

/// The manifest schema this build writes and the only one it resumes.
pub const MANIFEST_VERSION: u64 = 1;

/// How many chunk phases a staged run aims for: enough that a crash loses
/// at most ~1/8 of the chunk-sorting work, few enough that manifests stay
/// small and merge rounds stay shallow.
const TARGET_CHUNKS: usize = 8;

/// Where checkpoint manifests go. The executor calls [`save`] after every
/// completed phase (the final one included — a complete manifest makes
/// resume idempotent and gives write-accounting one event per phase
/// execution). A failed save fails the phase: a checkpoint the sink never
/// accepted must not be assumed durable.
///
/// [`save`]: Checkpointer::save
pub trait Checkpointer {
    /// Persist one manifest.
    fn save(&mut self, manifest: &CheckpointManifest) -> Result<()>;
}

/// A [`Checkpointer`] that keeps every manifest in memory — the sink for
/// tests, reference runs, and embedded callers that manage durability
/// themselves.
#[derive(Debug, Default)]
pub struct MemCheckpointer {
    /// Every manifest saved, in phase order.
    pub manifests: Vec<CheckpointManifest>,
}

impl Checkpointer for MemCheckpointer {
    fn save(&mut self, manifest: &CheckpointManifest) -> Result<()> {
        self.manifests.push(manifest.clone());
        Ok(())
    }
}

/// The deterministic phase schedule of one staged run, computed from
/// `(spec, n)` alone — both sides of a resume derive the identical plan,
/// so a manifest only needs to say *how many* phases completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagePlan {
    /// Block-aligned `[start, end)` input ranges, one chunk phase each.
    chunks: Vec<(usize, usize)>,
    /// Merge fan-in `l = kM/B` for the merge-round phases.
    fan_in: usize,
    /// Merge rounds after the chunk phases (each folds groups of
    /// `fan_in` surviving runs into one).
    rounds: usize,
}

impl StagePlan {
    /// Plan the staged run of `spec` over `n` records.
    pub fn new(spec: &SortSpec, n: usize) -> StagePlan {
        let b = spec.b();
        // The merge always runs serially on one machine, so the serial
        // fan-in applies to every algorithm (spec validation guarantees
        // kM/B ≥ M/B ≥ 2).
        let fan_in = ((spec.k() * spec.m()) / b).max(2);
        let mut chunks = Vec::new();
        if n == 0 {
            chunks.push((0, 0));
        } else {
            let chunk = n.div_ceil(TARGET_CHUNKS).max(b).next_multiple_of(b);
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                chunks.push((lo, hi));
                lo = hi;
            }
        }
        let mut rounds = 0;
        let mut c = chunks.len();
        while c > 1 {
            c = c.div_ceil(fan_in);
            rounds += 1;
        }
        StagePlan {
            chunks,
            fan_in,
            rounds,
        }
    }

    /// The chunk phases' input ranges.
    pub fn chunks(&self) -> &[(usize, usize)] {
        &self.chunks
    }

    /// Merge rounds after the chunk phases.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total phases: one per chunk plus one per merge round.
    pub fn total_phases(&self) -> usize {
        self.chunks.len() + self.rounds
    }

    /// Lengths of the surviving runs after `phases_done` completed phases
    /// — the layout a valid manifest must carry.
    pub fn layout_after(&self, phases_done: usize) -> Vec<usize> {
        let c = self.chunks.len();
        let mut runs: Vec<usize> = self
            .chunks
            .iter()
            .take(phases_done.min(c))
            .map(|&(lo, hi)| hi - lo)
            .collect();
        for _ in c..phases_done {
            runs = runs
                .chunks(self.fan_in)
                .map(|group| group.iter().sum())
                .collect();
        }
        runs
    }
}

/// Digest binding a manifest to its job: FNV-1a over the spec's *logical*
/// fields and the input records. Backend, file directory, and fault
/// schedule are deliberately excluded — the server re-points those per
/// attempt, and none of them changes the output or the modeled stats (the
/// machine charges before it touches the store).
pub fn input_digest(spec: &SortSpec, input: &[Record]) -> u64 {
    fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
        for &x in bytes {
            h ^= x as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, spec.algorithm().name().as_bytes());
    for v in [
        spec.m() as u64,
        spec.b() as u64,
        spec.omega(),
        spec.k() as u64,
        spec.lanes() as u64,
        spec.seed(),
        spec.slack() as u64,
        u64::from(spec.steal_charge()),
        input.len() as u64,
    ] {
        h = fnv1a(h, &v.to_le_bytes());
    }
    for r in input {
        h = fnv1a(h, &r.key.to_le_bytes());
        h = fnv1a(h, &r.payload.to_le_bytes());
    }
    h
}

/// One phase-boundary snapshot of a staged run: everything a fresh
/// process needs to continue from the first incomplete phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// [`input_digest`] of the job this manifest belongs to.
    pub digest: u64,
    /// Input length (also folded into the digest; kept explicit for
    /// cheap pre-checks and observability).
    pub n: u64,
    /// Completed phases. Resume continues at phase `phases_done`.
    pub phases_done: u64,
    /// The plan's total phase count (sanity-checked on resume).
    pub total_phases: u64,
    /// Cumulative modeled stats over the completed phases: reads and
    /// writes sum, peaks max (phases run sequentially on fresh machines,
    /// so the footprint is the largest single phase — *not*
    /// [`EmStats::merge`], whose summed peaks are lane semantics).
    pub stats: EmStats,
    /// The surviving sorted runs, in layout order. Pending chunks are
    /// recomputable from the input, so only produced data is carried.
    pub runs: Vec<Vec<Record>>,
}

impl CheckpointManifest {
    /// Render as a single-line JSON object (runs as `[key, payload]`
    /// pairs, like the job wire format).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("version", self.version)
            .u64("digest", self.digest)
            .u64("n", self.n)
            .u64("phases_done", self.phases_done)
            .u64("total_phases", self.total_phases);
        let mut s = JsonObj::new();
        s.u64("block_reads", self.stats.block_reads)
            .u64("block_writes", self.stats.block_writes)
            .u64("peak_memory", self.stats.peak_memory as u64);
        o.raw("stats", &s.finish());
        let mut runs = JsonArr::new();
        for run in &self.runs {
            let mut arr = JsonArr::new();
            for r in run {
                arr.raw(&format!("[{}, {}]", r.key, r.payload));
            }
            runs.raw(&arr.finish());
        }
        o.raw("runs", &runs.finish());
        o.finish()
    }

    /// Decode a manifest. An unknown version is a typed
    /// [`WireError::Malformed`] naming it — a future manifest must not be
    /// half-read as an empty one.
    pub fn from_json(text: &str) -> std::result::Result<CheckpointManifest, WireError> {
        let bad = |m: String| WireError::Malformed(m);
        let v = Json::parse(text).map_err(bad)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| bad("manifest must be a JSON object".into()))?;
        let req = |k: &str| {
            json::get_u64(obj, k)
                .ok_or_else(|| bad(format!("manifest missing numeric field {k:?}")))
        };
        let version = req("version")?;
        if version != MANIFEST_VERSION {
            return Err(bad(format!(
                "manifest version {version} is not supported (this build speaks v{MANIFEST_VERSION})"
            )));
        }
        let stats = json::find(obj, "stats")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("manifest missing \"stats\" object".into()))?;
        let stat = |k: &str| {
            json::get_u64(stats, k).ok_or_else(|| bad(format!("manifest stats missing {k:?}")))
        };
        let runs_v = json::find(obj, "runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("manifest missing \"runs\" array".into()))?;
        let mut runs = Vec::with_capacity(runs_v.len());
        for run in runs_v {
            let items = run
                .as_arr()
                .ok_or_else(|| bad("manifest runs must be arrays".into()))?;
            let mut records = Vec::with_capacity(items.len());
            for item in items {
                let pair = item
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("run records are [key, payload] pairs".into()))?;
                let key = pair[0]
                    .as_u64()
                    .ok_or_else(|| bad("record key must be a u64".into()))?;
                let payload = pair[1]
                    .as_u64()
                    .ok_or_else(|| bad("record payload must be a u64".into()))?;
                records.push(Record::new(key, payload));
            }
            runs.push(records);
        }
        Ok(CheckpointManifest {
            version,
            digest: req("digest")?,
            n: req("n")?,
            phases_done: req("phases_done")?,
            total_phases: req("total_phases")?,
            stats: EmStats {
                block_reads: stat("block_reads")?,
                block_writes: stat("block_writes")?,
                peak_memory: stat("peak_memory")? as usize,
            },
            runs,
        })
    }

    /// Full consistency check against the job this manifest claims to
    /// belong to: version, digest, phase counters, and the run layout the
    /// plan dictates (lengths and sortedness). `Err` carries the reason —
    /// a server holding a non-matching manifest should fall back to a
    /// fresh staged run rather than fail the job.
    pub fn validate(&self, spec: &SortSpec, input: &[Record]) -> std::result::Result<(), String> {
        if self.version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {}", self.version));
        }
        if self.n as usize != input.len() {
            return Err(format!(
                "manifest is for {} records, job has {}",
                self.n,
                input.len()
            ));
        }
        let digest = input_digest(spec, input);
        if self.digest != digest {
            return Err(format!(
                "digest mismatch: manifest {:#x}, job {:#x}",
                self.digest, digest
            ));
        }
        let plan = StagePlan::new(spec, input.len());
        if self.total_phases != plan.total_phases() as u64 {
            return Err(format!(
                "manifest plans {} phases, spec plans {}",
                self.total_phases,
                plan.total_phases()
            ));
        }
        if self.phases_done == 0 || self.phases_done > self.total_phases {
            return Err(format!(
                "phase counter {} out of range 1..={}",
                self.phases_done, self.total_phases
            ));
        }
        let layout = plan.layout_after(self.phases_done as usize);
        if self.runs.len() != layout.len()
            || self
                .runs
                .iter()
                .zip(&layout)
                .any(|(r, &len)| r.len() != len)
        {
            return Err(format!(
                "run layout {:?} does not match the plan's {:?}",
                self.runs.iter().map(Vec::len).collect::<Vec<_>>(),
                layout
            ));
        }
        for (i, run) in self.runs.iter().enumerate() {
            if run.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("run {i} is not sorted"));
            }
        }
        Ok(())
    }
}

/// The slack a staged run's merge rounds need: the spec's own slack, or
/// the mergesort's `2B + kM/B` footprint if that is larger (a
/// non-mergesort spec's slack may not cover the merge's queue + buffers +
/// run pointers).
pub fn staged_slack(spec: &SortSpec) -> usize {
    spec.slack()
        .max(mergesort_slack(spec.m(), spec.b(), spec.k()))
}

/// Pre-run cost envelope for a *staged* run — the admission currency for
/// checkpointed jobs. Chunk phases are priced by the per-chunk theorem
/// envelopes ([`SortSpec::predict`]); each merge round adds the Lemma 4.1
/// envelope `(k+1)` reads and one write per staged block (staging a run
/// rounds up to a block, hence the `+ chunk count` term); the peak-memory
/// bound accounts for the merge machine's [`staged_slack`].
pub fn predict_staged(spec: &SortSpec, n: usize) -> CostEstimate {
    let plan = StagePlan::new(spec, n);
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut peak = spec.m() + staged_slack(spec);
    for &(lo, hi) in plan.chunks() {
        let e = spec.predict(hi - lo);
        reads += e.reads;
        writes += e.writes;
        peak = peak.max(e.peak_memory);
    }
    let round_blocks = (n.div_ceil(spec.b()) + plan.chunks().len()) as u64;
    let rounds = plan.rounds() as u64;
    reads += (spec.k() as u64 + 1) * round_blocks * rounds;
    writes += round_blocks * rounds;
    CostEstimate {
        reads,
        writes,
        peak_memory: peak,
        omega: spec.omega(),
    }
}

/// Run the job as a staged, checkpointable sequence of phases, saving a
/// manifest to `sink` after each. Output is identical to [`super::run`];
/// modeled costs follow [`predict_staged`].
pub fn run_staged(
    spec: &SortSpec,
    input: &[Record],
    sink: &mut dyn Checkpointer,
) -> Result<SortOutcome> {
    let plan = StagePlan::new(spec, input.len());
    execute(spec, input, &plan, 0, Vec::new(), EmStats::default(), sink)
}

/// Continue a staged run from `manifest`: verify it against `(spec,
/// input)`, restage the surviving runs, and execute the remaining phases.
/// The returned outcome — output *and* cumulative stats — is bit-identical
/// to an uninterrupted [`run_staged`]. A manifest that fails validation is
/// a [`ModelError::Invariant`] (callers that can should pre-check with
/// [`CheckpointManifest::validate`] and fall back to a fresh run).
pub fn resume_from(
    spec: &SortSpec,
    input: &[Record],
    manifest: &CheckpointManifest,
    sink: &mut dyn Checkpointer,
) -> Result<SortOutcome> {
    manifest
        .validate(spec, input)
        .map_err(|reason| ModelError::Invariant(format!("cannot resume: {reason}")))?;
    let plan = StagePlan::new(spec, input.len());
    execute(
        spec,
        input,
        &plan,
        manifest.phases_done as usize,
        manifest.runs.clone(),
        manifest.stats,
        sink,
    )
}

/// The phase interpreter both entry points share. `start` phases are
/// already done, their surviving runs are `runs` and their cumulative
/// stats `cum` — zero/empty for a fresh run.
fn execute(
    spec: &SortSpec,
    input: &[Record],
    plan: &StagePlan,
    start: usize,
    mut runs: Vec<Vec<Record>>,
    mut cum: EmStats,
    sink: &mut dyn Checkpointer,
) -> Result<SortOutcome> {
    let total = plan.total_phases();
    let digest = input_digest(spec, input);
    for phase in start..total {
        let phase_stats = if let Some(&(lo, hi)) = plan.chunks().get(phase) {
            if lo == hi {
                runs.push(Vec::new());
                EmStats::default()
            } else {
                let out = sorter_for(spec.algorithm()).run(spec, &input[lo..hi])?;
                runs.push(out.output);
                out.stats
            }
        } else {
            let (merged, stats) = merge_round(spec, &runs, plan.fan_in)?;
            runs = merged;
            stats
        };
        // Sequential fold: counts add, footprints max (each phase runs on
        // fresh machines, so the peak is the largest single phase).
        cum.block_reads += phase_stats.block_reads;
        cum.block_writes += phase_stats.block_writes;
        cum.peak_memory = cum.peak_memory.max(phase_stats.peak_memory);
        sink.save(&CheckpointManifest {
            version: MANIFEST_VERSION,
            digest,
            n: input.len() as u64,
            phases_done: (phase + 1) as u64,
            total_phases: total as u64,
            stats: cum,
            runs: runs.clone(),
        })?;
    }
    let output = runs.pop().expect("the plan always ends with one run");
    debug_assert!(runs.is_empty(), "merge rounds must converge to one run");
    Ok(SortOutcome {
        output,
        stats: cum,
        report: cum.report(spec.omega()),
        parallel: None,
    })
}

/// One merge round: fold groups of `fan_in` surviving runs into one with
/// the Lemma 4.1 merge, on a single machine sized by [`staged_slack`].
/// Single-run groups carry over untouched (no work, no charge).
fn merge_round(
    spec: &SortSpec,
    runs: &[Vec<Record>],
    fan_in: usize,
) -> Result<(Vec<Vec<Record>>, EmStats)> {
    let em = merge_spec(spec).machine()?;
    let mut out = Vec::with_capacity(runs.len().div_ceil(fan_in));
    for group in runs.chunks(fan_in) {
        if group.len() == 1 {
            out.push(group[0].clone());
            continue;
        }
        let staged: Vec<EmVec> = group.iter().map(|r| EmVec::stage(&em, r)).collect();
        let merged = merge_sorted_runs(&em, &staged, spec.k())?;
        out.push(merged.read_all_uncharged(&em));
        merged.free(&em);
        for v in staged {
            v.free(&em);
        }
    }
    assert_eq!(em.live_blocks(), 0, "merge round leaked disk blocks");
    Ok((out, em.stats()))
}

/// The spec with its slack widened to [`staged_slack`] (identity when the
/// spec's own slack already covers the merge).
fn merge_spec(spec: &SortSpec) -> SortSpec {
    let slack = staged_slack(spec);
    if slack == spec.slack() {
        return spec.clone();
    }
    let mut b = SortSpec::builder(spec.algorithm(), spec.m(), spec.b(), spec.omega())
        .k(spec.k())
        .lanes(spec.lanes())
        .backend(spec.backend())
        .seed(spec.seed())
        .slack(slack)
        .steal_charge(spec.steal_charge())
        .fault(spec.fault());
    if let Some(dir) = spec.file_dir() {
        b = b.file_dir(dir);
    }
    b.build()
        .expect("a valid spec stays valid under wider slack")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::{run, Algorithm};
    use asym_model::workload::Workload;

    fn spec_for(algorithm: Algorithm) -> SortSpec {
        SortSpec::builder(algorithm, 32, 4, 8)
            .k(2)
            .lanes(if algorithm.is_parallel() { 4 } else { 1 })
            .seed(11)
            .build()
            .expect("valid spec")
    }

    #[test]
    fn plans_are_deterministic_block_aligned_and_converge() {
        let spec = spec_for(Algorithm::Mergesort);
        for n in [0usize, 1, 3, 4, 50, 1_000, 10_000] {
            let plan = StagePlan::new(&spec, n);
            assert_eq!(plan, StagePlan::new(&spec, n));
            let covered: usize = plan.chunks().iter().map(|&(lo, hi)| hi - lo).sum();
            assert_eq!(covered, n, "n={n}");
            for &(lo, hi) in plan.chunks() {
                assert!(lo <= hi);
                assert!(lo % spec.b() == 0, "chunks start block-aligned");
            }
            assert_eq!(plan.layout_after(plan.total_phases()), vec![n]);
        }
        // Many chunks at a small fan-in force multiple merge rounds.
        let tight = SortSpec::builder(Algorithm::Mergesort, 8, 4, 8)
            .build()
            .unwrap();
        let plan = StagePlan::new(&tight, 1_000);
        assert!(plan.rounds() >= 2, "fan-in 2 over 8 chunks needs 3 rounds");
    }

    #[test]
    fn staged_output_matches_the_single_shot_path() {
        let input = Workload::Zipf.generate(900, 7);
        for algorithm in Algorithm::ALL {
            let spec = spec_for(algorithm);
            let mut sink = MemCheckpointer::default();
            let staged = run_staged(&spec, &input, &mut sink).expect("staged");
            let plain = run(&spec, &input).expect("single-shot");
            assert_eq!(staged.output, plain.output, "{algorithm}");
            assert_eq!(
                sink.manifests.len(),
                StagePlan::new(&spec, input.len()).total_phases(),
                "one manifest per phase"
            );
            let est = predict_staged(&spec, input.len());
            assert!(staged.stats.block_reads <= est.reads, "{algorithm}");
            assert!(staged.stats.block_writes <= est.writes, "{algorithm}");
            assert!(staged.stats.peak_memory <= est.peak_memory, "{algorithm}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_stage_cleanly() {
        let spec = spec_for(Algorithm::Samplesort);
        for n in [0usize, 1, 5] {
            let input = Workload::UniformRandom.generate(n, 3);
            let mut sink = MemCheckpointer::default();
            let staged = run_staged(&spec, &input, &mut sink).expect("staged");
            let mut expect = input.clone();
            expect.sort();
            assert_eq!(staged.output, expect, "n={n}");
        }
    }

    #[test]
    fn manifests_round_trip_and_reject_garbage() {
        let spec = spec_for(Algorithm::Mergesort);
        let input = Workload::UniformRandom.generate(300, 5);
        let mut sink = MemCheckpointer::default();
        run_staged(&spec, &input, &mut sink).expect("staged");
        for m in &sink.manifests {
            let back = CheckpointManifest::from_json(&m.to_json()).expect("round trip");
            assert_eq!(&back, m);
            assert!(back.validate(&spec, &input).is_ok());
        }
        assert!(CheckpointManifest::from_json("42").is_err());
        let future = sink.manifests[0]
            .to_json()
            .replacen("\"version\": 1", "\"version\": 9", 1);
        let err = CheckpointManifest::from_json(&future).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn validation_catches_wrong_job_phase_and_layout() {
        let spec = spec_for(Algorithm::Mergesort);
        let input = Workload::UniformRandom.generate(400, 9);
        let mut sink = MemCheckpointer::default();
        run_staged(&spec, &input, &mut sink).expect("staged");
        let good = sink.manifests[1].clone();

        // Different input: digest refuses.
        let other = Workload::UniformRandom.generate(400, 10);
        assert!(good.validate(&spec, &other).unwrap_err().contains("digest"));
        // Different logical spec (seed participates in the digest).
        let reseeded = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .k(2)
            .seed(12)
            .build()
            .unwrap();
        assert!(good.validate(&reseeded, &input).is_err());
        // Tampered layout and phase counter.
        let mut torn = good.clone();
        torn.runs.pop();
        assert!(torn.validate(&spec, &input).unwrap_err().contains("layout"));
        let mut late = good.clone();
        late.phases_done = late.total_phases + 1;
        assert!(late.validate(&spec, &input).unwrap_err().contains("range"));
        let mut shuffled = good.clone();
        shuffled.runs[0].reverse();
        assert!(shuffled
            .validate(&spec, &input)
            .unwrap_err()
            .contains("not sorted"));
        // And resume_from surfaces the same refusal typed.
        let mut sink2 = MemCheckpointer::default();
        assert!(matches!(
            resume_from(&spec, &other, &good, &mut sink2),
            Err(ModelError::Invariant(_))
        ));
    }

    #[test]
    fn backend_and_fault_do_not_enter_the_digest() {
        let input = Workload::UniformRandom.generate(100, 1);
        let base = spec_for(Algorithm::Mergesort);
        let faulted = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .k(2)
            .seed(11)
            .fault(Some(em_sim::FaultSpec::new(7)))
            .build()
            .unwrap();
        assert_eq!(input_digest(&base, &input), input_digest(&faulted, &input));
        let reseeded = SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
            .k(2)
            .seed(12)
            .build()
            .unwrap();
        assert_ne!(input_digest(&base, &input), input_digest(&reseeded, &input));
    }
}

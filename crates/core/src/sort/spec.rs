//! The sort-job description: [`Algorithm`], the validated [`SortSpec`]
//! builder, [`SpecError`], and the `ASYM_BENCH_*` environment absorption.

use crate::em::mergesort::mergesort_slack;
use crate::em::pq::pq_slack;
use crate::em::samplesort::samplesort_slack;
use crate::par::par_samplesort_slack;
use em_sim::file::FileStore;
use em_sim::{
    Backend, BlockStore, EmConfig, EmMachine, FaultSpec, FaultStore, MemStore, ParMachine,
};
use std::path::PathBuf;

/// The four AEM sorting algorithms the unified API fronts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 2 — the l = kM/B-way mergesort (§4.1).
    Mergesort,
    /// The l-way distribution sort (§4.2).
    Samplesort,
    /// n inserts + n delete-mins on the buffer-tree priority queue (§4.3).
    Heapsort,
    /// The modeled parallel sample sort on lane-sharded machines (§4–§5).
    ParSamplesort,
}

impl Algorithm {
    /// Every algorithm, in presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Mergesort,
        Algorithm::Samplesort,
        Algorithm::Heapsort,
        Algorithm::ParSamplesort,
    ];

    /// Stable lowercase identifier (the `Sorter::name` of the adapter, used
    /// in bench JSON and tables).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Mergesort => "aem-mergesort",
            Algorithm::Samplesort => "aem-samplesort",
            Algorithm::Heapsort => "aem-heapsort",
            Algorithm::ParSamplesort => "par-aem-samplesort",
        }
    }

    /// Parse an algorithm from its stable [`Algorithm::name`] (the wire
    /// format and bench JSON both name algorithms this way).
    pub fn parse(name: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Whether the algorithm runs on lane-sharded machines (`lanes > 1`
    /// meaningful) rather than one sequential machine.
    pub fn is_parallel(self) -> bool {
        matches!(self, Algorithm::ParSamplesort)
    }

    /// The slack (extra primary memory beyond `M`, in records) the paper
    /// budgets for this algorithm at write-saving factor `k` — the default a
    /// [`SortSpec`] is built with unless overridden.
    pub fn default_slack(self, m: usize, b: usize, k: usize) -> usize {
        match self {
            Algorithm::Mergesort => mergesort_slack(m, b, k),
            Algorithm::Samplesort => samplesort_slack(m, b, k),
            Algorithm::Heapsort => pq_slack(m, b, k),
            Algorithm::ParSamplesort => par_samplesort_slack(m, b, k),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`SortSpecBuilder`] refused to produce a [`SortSpec`]. Every
/// invalid combination is a typed error — never a panic — so job
/// descriptions arriving from config files, env vars, or the network can be
/// rejected gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// ω must be ≥ 1 (ω = 1 is the symmetric baseline).
    ZeroOmega,
    /// B must be ≥ 1.
    ZeroBlock,
    /// Primary memory must hold at least one block (B ≤ M).
    BlockExceedsMemory {
        /// Block size requested.
        b: usize,
        /// Primary memory requested.
        m: usize,
    },
    /// The write-saving factor k must be ≥ 1 (k = 1 is the classic EM
    /// algorithm).
    ZeroWriteFactor,
    /// The branching factor (fan-in) must be ≥ 2: `kM/B` for the serial
    /// sorts, `M/B` for the parallel sample sort.
    FanInTooSmall {
        /// The computed fan-in.
        fan_in: usize,
    },
    /// A machine needs at least one lane.
    ZeroLanes,
    /// Multiple lanes were requested for a sequential algorithm.
    LanesOnSerialSort {
        /// The sequential algorithm.
        algorithm: Algorithm,
        /// The lanes requested.
        lanes: usize,
    },
    /// `k·M` exceeds the geometry ceiling, so the fan-in, slack formulas,
    /// or capacity sums would overflow `usize`.
    GeometryOverflow {
        /// Primary memory requested.
        m: usize,
        /// Write-saving factor requested.
        k: usize,
    },
    /// A fault-injection rate is out of range (permille means 0..=1000).
    FaultRate {
        /// Which rate field.
        field: &'static str,
        /// The rate requested.
        permille: u16,
    },
    /// An `ASYM_BENCH_*` variable held an unparsable value.
    Env {
        /// The variable.
        var: &'static str,
        /// Its value.
        value: String,
        /// What would have parsed.
        expected: &'static str,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroOmega => write!(f, "omega must be at least 1"),
            SpecError::ZeroBlock => write!(f, "block size B must be at least 1"),
            SpecError::BlockExceedsMemory { b, m } => {
                write!(f, "primary memory must hold a block (B = {b} > M = {m})")
            }
            SpecError::ZeroWriteFactor => write!(f, "write-saving factor k must be at least 1"),
            SpecError::FanInTooSmall { fan_in } => {
                write!(f, "branching factor {fan_in} must be at least 2")
            }
            SpecError::ZeroLanes => write!(f, "a machine needs at least one lane"),
            SpecError::LanesOnSerialSort { algorithm, lanes } => {
                write!(f, "{algorithm} is sequential; {lanes} lanes requested")
            }
            SpecError::GeometryOverflow { m, k } => {
                write!(
                    f,
                    "geometry overflows: k = {k} times M = {m} records exceeds the ceiling"
                )
            }
            SpecError::FaultRate { field, permille } => {
                write!(f, "fault rate {field} = {permille} exceeds 1000 permille")
            }
            SpecError::Env {
                var,
                value,
                expected,
            } => write!(f, "{var}={value:?}: expected {expected}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The environment variable naming the storage backend (`mem` or `file`).
pub const BACKEND_ENV: &str = em_sim::store::BACKEND_ENV;

/// The environment variable capping the lane count of parallel jobs (and
/// the lane sweeps of the bench harness).
pub const THREADS_ENV: &str = "ASYM_BENCH_THREADS";

/// Parse a [`BACKEND_ENV`] value.
pub fn parse_backend(value: &str) -> Result<Backend, SpecError> {
    Backend::parse(value).ok_or(SpecError::Env {
        var: BACKEND_ENV,
        value: value.into(),
        expected: "\"mem\" or \"file\"",
    })
}

/// Parse a [`THREADS_ENV`] value (a lane count; clamped up to 1).
pub fn parse_thread_cap(value: &str) -> Result<usize, SpecError> {
    value
        .trim()
        .parse::<usize>()
        .map(|n| n.max(1))
        .map_err(|_| SpecError::Env {
            var: THREADS_ENV,
            value: value.into(),
            expected: "a lane count",
        })
}

/// Read [`BACKEND_ENV`]: `Ok(None)` when unset, a typed [`SpecError`] when
/// set to garbage. This is the single parsing point the whole workspace
/// routes through (harness and benches `expect` the error — a typo must not
/// silently run a backend-matrix job on the wrong store).
pub fn env_backend() -> Result<Option<Backend>, SpecError> {
    match std::env::var(BACKEND_ENV) {
        Ok(v) => parse_backend(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Read [`THREADS_ENV`]: `Ok(None)` when unset (no cap).
pub fn env_thread_cap() -> Result<Option<usize>, SpecError> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_thread_cap(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// A validated description of one sort job: which algorithm, on what
/// machine geometry, at which write-saving factor, over how many lanes, on
/// which storage backend. Constructed through [`SortSpec::builder`]; a
/// `SortSpec` that exists has passed validation, so the `Sorter` adapters
/// only surface runtime faults ([`asym_model::ModelError`]), never
/// configuration mistakes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortSpec {
    algorithm: Algorithm,
    m: usize,
    b: usize,
    omega: u64,
    k: usize,
    lanes: usize,
    backend: Backend,
    file_dir: Option<PathBuf>,
    seed: u64,
    slack: usize,
    steal_charge: bool,
    fault: Option<FaultSpec>,
}

impl SortSpec {
    /// Start describing a job: `algorithm` on an `M`-record memory with
    /// `B`-record blocks at write cost `omega`. Everything else defaults:
    /// k = 1, one lane, in-memory backend, seed 0, the paper's slack for the
    /// algorithm, no steal charging.
    pub fn builder(algorithm: Algorithm, m: usize, b: usize, omega: u64) -> SortSpecBuilder {
        SortSpecBuilder {
            algorithm,
            m,
            b,
            omega,
            k: 1,
            lanes: 1,
            backend: Backend::Mem,
            file_dir: None,
            seed: 0,
            slack: None,
            steal_charge: false,
            fault: None,
        }
    }

    /// The algorithm this job runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Primary memory size `M`, in records.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Block size `B`, in records.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Write cost ω.
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// Write-saving factor k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Lane count (1 for the sequential algorithms).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The storage backend every machine of this job runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Seed driving sampling and scheduler simulation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The directory the file backend's backing files live in (`None`: the
    /// system temp dir, or not the file backend at all).
    pub fn file_dir(&self) -> Option<&std::path::Path> {
        self.file_dir.as_deref()
    }

    /// Extra primary memory beyond `M`, in records.
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// Whether the §2 steal-aware cache warm-up charge is folded into lane
    /// stats (parallel algorithms only; no-op for sequential jobs, which
    /// have no scheduler).
    pub fn steal_charge(&self) -> bool {
        self.steal_charge
    }

    /// The seeded fault-injection schedule every machine of this job mounts
    /// (`None`: a well-behaved device). Faults never change modeled costs —
    /// the machine charges before it touches the store.
    pub fn fault(&self) -> Option<FaultSpec> {
        self.fault
    }

    /// The machine configuration this spec resolves to.
    pub fn em_config(&self) -> EmConfig {
        EmConfig::new(self.m, self.b, self.omega).with_slack(self.slack)
    }

    /// Build one machine per the spec. Fails with [`asym_model::ModelError::Io`]
    /// when the file backend cannot create its backing file (e.g. an
    /// unwritable directory) — never panics.
    pub fn machine(&self) -> asym_model::Result<EmMachine> {
        self.machine_salted(0)
    }

    /// [`SortSpec::machine`] with a lane index folded into any injected
    /// fault stream, so each lane of a parallel machine faults
    /// independently rather than in lockstep.
    fn machine_salted(&self, lane: u64) -> asym_model::Result<EmMachine> {
        let cfg = self.em_config();
        let Some(fault) = self.fault else {
            return match (&self.backend, &self.file_dir) {
                (Backend::File, Some(dir)) => {
                    let store: Box<dyn BlockStore> = Box::new(FileStore::new_in(dir, cfg.b)?);
                    Ok(EmMachine::with_store(cfg, store))
                }
                _ => EmMachine::with_backend(cfg, self.backend),
            };
        };
        let inner: Box<dyn BlockStore> = match (&self.backend, &self.file_dir) {
            (Backend::File, Some(dir)) => Box::new(FileStore::new_in(dir, cfg.b)?),
            (Backend::File, None) => Box::new(FileStore::new(cfg.b)?),
            _ => Box::new(MemStore::new(cfg.b)),
        };
        let fault = if lane == 0 { fault } else { fault.salted(lane) };
        Ok(EmMachine::with_store(
            cfg,
            Box::new(FaultStore::new(inner, fault)),
        ))
    }

    /// Build the lane-sharded machine bank per the spec (same failure mode
    /// as [`SortSpec::machine`], once per lane).
    pub fn par_machine(&self) -> asym_model::Result<ParMachine> {
        let lanes = (0..self.lanes)
            .map(|lane| self.machine_salted(lane as u64))
            .collect::<asym_model::Result<Vec<_>>>()?;
        Ok(ParMachine::from_lanes(lanes))
    }
}

/// Builder for [`SortSpec`] (see [`SortSpec::builder`]).
#[derive(Clone, Debug)]
pub struct SortSpecBuilder {
    algorithm: Algorithm,
    m: usize,
    b: usize,
    omega: u64,
    k: usize,
    lanes: usize,
    backend: Backend,
    file_dir: Option<PathBuf>,
    seed: u64,
    slack: Option<usize>,
    steal_charge: bool,
    fault: Option<FaultSpec>,
}

impl SortSpecBuilder {
    /// Write-saving factor k (default 1 — the classic EM algorithm).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Lane count for parallel algorithms (default 1).
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Storage backend (default [`Backend::Mem`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Directory for the file backend's backing files (default: the system
    /// temp dir). Ignored on the in-memory backend.
    pub fn file_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.file_dir = Some(dir.into());
        self
    }

    /// Seed for sampling and the scheduler simulation (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the paper's slack allowance (default: the algorithm's
    /// published footprint via [`Algorithm::default_slack`]).
    pub fn slack(mut self, slack: usize) -> Self {
        self.slack = Some(slack);
        self
    }

    /// Fold the §2 per-steal `O(M/B)` cache warm-up charge into the lane
    /// stats (default off; parallel algorithms only).
    pub fn steal_charge(mut self, on: bool) -> Self {
        self.steal_charge = on;
        self
    }

    /// Mount a seeded fault-injecting store over the chosen backend
    /// (default `None`: a well-behaved device). Rates beyond 1000 permille
    /// are a typed [`SpecError::FaultRate`] at build time.
    pub fn fault(mut self, fault: Option<FaultSpec>) -> Self {
        self.fault = fault;
        self
    }

    /// Absorb the `ASYM_BENCH_*` environment: `ASYM_BENCH_BACKEND` replaces
    /// the backend when set, `ASYM_BENCH_THREADS` caps the lane count. A
    /// garbage value is a typed [`SpecError::Env`], never a panic or a
    /// silent fallback.
    pub fn from_env(mut self) -> Result<Self, SpecError> {
        if let Some(backend) = env_backend()? {
            self.backend = backend;
        }
        if let Some(cap) = env_thread_cap()? {
            self.lanes = self.lanes.min(cap);
        }
        Ok(self)
    }

    /// Validate and produce the [`SortSpec`].
    pub fn build(self) -> Result<SortSpec, SpecError> {
        if self.omega == 0 {
            return Err(SpecError::ZeroOmega);
        }
        if self.b == 0 {
            return Err(SpecError::ZeroBlock);
        }
        if self.b > self.m {
            return Err(SpecError::BlockExceedsMemory {
                b: self.b,
                m: self.m,
            });
        }
        if self.k == 0 {
            return Err(SpecError::ZeroWriteFactor);
        }
        if self.lanes == 0 {
            return Err(SpecError::ZeroLanes);
        }
        if !self.algorithm.is_parallel() && self.lanes > 1 {
            return Err(SpecError::LanesOnSerialSort {
                algorithm: self.algorithm,
                lanes: self.lanes,
            });
        }
        // Geometry ceiling: k·M bounds every term the slack formulas and
        // the capacity sum `M + slack` build from (the largest is
        // pq_slack's ~10·kM), so capping it at usize::MAX/16 makes all of
        // them — and the fan-in product below — overflow-free. A typed
        // error, not a panic: job descriptions can arrive from config or
        // the network.
        let km = self
            .k
            .checked_mul(self.m)
            .filter(|&km| km <= usize::MAX / 16)
            .ok_or(SpecError::GeometryOverflow {
                m: self.m,
                k: self.k,
            })?;
        // Fan-in floor: the parallel sort buckets at M/B regardless of k (k
        // only reaches its inner serial mergesort); the serial sorts branch
        // at kM/B.
        let fan_in = if self.algorithm.is_parallel() {
            self.m / self.b
        } else {
            km / self.b
        };
        if fan_in < 2 {
            return Err(SpecError::FanInTooSmall { fan_in });
        }
        if let Some(f) = &self.fault {
            for (field, permille) in [
                ("read_permille", f.read_permille),
                ("write_permille", f.write_permille),
                ("short_permille", f.short_permille),
                ("panic_permille", f.panic_permille),
            ] {
                if permille > 1000 {
                    return Err(SpecError::FaultRate { field, permille });
                }
            }
        }
        let slack = self
            .slack
            .unwrap_or_else(|| self.algorithm.default_slack(self.m, self.b, self.k));
        Ok(SortSpec {
            algorithm: self.algorithm,
            m: self.m,
            b: self.b,
            omega: self.omega,
            k: self.k,
            lanes: self.lanes,
            backend: self.backend,
            file_dir: self.file_dir,
            seed: self.seed,
            slack,
            steal_charge: self.steal_charge,
            fault: self.fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_paper_footprints() {
        for algorithm in Algorithm::ALL {
            let spec = SortSpec::builder(algorithm, 32, 4, 8)
                .k(2)
                .lanes(if algorithm.is_parallel() { 4 } else { 1 })
                .build()
                .expect("valid spec");
            assert_eq!(spec.slack(), algorithm.default_slack(32, 4, 2));
            assert_eq!(spec.em_config().capacity(), 32 + spec.slack());
            assert_eq!(spec.backend(), Backend::Mem);
        }
    }

    #[test]
    fn invalid_combinations_are_typed_errors() {
        let b = |f: fn(SortSpecBuilder) -> SortSpecBuilder| {
            f(SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)).build()
        };
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, 32, 4, 0).build(),
            Err(SpecError::ZeroOmega)
        );
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, 32, 0, 8).build(),
            Err(SpecError::ZeroBlock)
        );
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, 4, 32, 8).build(),
            Err(SpecError::BlockExceedsMemory { b: 32, m: 4 })
        );
        assert_eq!(b(|s| s.k(0)), Err(SpecError::ZeroWriteFactor));
        assert_eq!(b(|s| s.lanes(0)), Err(SpecError::ZeroLanes));
        assert_eq!(
            b(|s| s.lanes(4)),
            Err(SpecError::LanesOnSerialSort {
                algorithm: Algorithm::Mergesort,
                lanes: 4
            })
        );
        // kM/B = 1 < 2: the degenerate fan-in the free functions reject at
        // run time is a build-time error here.
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, 4, 4, 8).build(),
            Err(SpecError::FanInTooSmall { fan_in: 1 })
        );
        // The parallel sort ignores k for its fan-in.
        assert_eq!(
            SortSpec::builder(Algorithm::ParSamplesort, 4, 4, 8)
                .k(8)
                .build(),
            Err(SpecError::FanInTooSmall { fan_in: 1 })
        );
        // Absurd geometry is a typed error, not a multiply-overflow panic
        // (and not a wrapped product that validates nonsense in release).
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, usize::MAX, 2, 8)
                .k(2)
                .build(),
            Err(SpecError::GeometryOverflow {
                m: usize::MAX,
                k: 2
            })
        );
        assert_eq!(
            SortSpec::builder(Algorithm::Heapsort, usize::MAX / 8, 8, 8).build(),
            Err(SpecError::GeometryOverflow {
                m: usize::MAX / 8,
                k: 1
            })
        );
        // Every error displays something human-readable.
        for e in [
            SpecError::ZeroOmega,
            SpecError::FanInTooSmall { fan_in: 1 },
            SpecError::Env {
                var: BACKEND_ENV,
                value: "nvme".into(),
                expected: "\"mem\" or \"file\"",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn fault_rates_validate_and_do_not_change_costs() {
        let absurd = FaultSpec {
            seed: 1,
            read_permille: 1001,
            ..FaultSpec::new(1)
        };
        assert_eq!(
            SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
                .fault(Some(absurd))
                .build(),
            Err(SpecError::FaultRate {
                field: "read_permille",
                permille: 1001
            })
        );
        // A mounted fault schedule changes luck, never modeled costs: a
        // no-op spec must leave the run bit-identical to a bare machine.
        let input = asym_model::workload::Workload::UniformRandom.generate(400, 9);
        let plain = crate::sort::run(
            &SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
                .k(2)
                .build()
                .unwrap(),
            &input,
        )
        .expect("plain run");
        let faulted = crate::sort::run(
            &SortSpec::builder(Algorithm::Mergesort, 32, 4, 8)
                .k(2)
                .fault(Some(FaultSpec::new(0xDECAF)))
                .build()
                .unwrap(),
            &input,
        )
        .expect("no-op fault run");
        assert_eq!(plain.output, faulted.output);
        assert_eq!(plain.stats, faulted.stats);
    }

    #[test]
    fn env_values_parse_or_fail_typed() {
        assert_eq!(parse_backend("mem"), Ok(Backend::Mem));
        assert_eq!(parse_backend("file"), Ok(Backend::File));
        assert!(matches!(
            parse_backend("nvme"),
            Err(SpecError::Env {
                var: BACKEND_ENV,
                ..
            })
        ));
        assert_eq!(parse_thread_cap("4"), Ok(4));
        assert_eq!(parse_thread_cap(" 2 "), Ok(2));
        assert_eq!(parse_thread_cap("0"), Ok(1), "cap clamps up to one lane");
        assert!(matches!(
            parse_thread_cap("many"),
            Err(SpecError::Env {
                var: THREADS_ENV,
                ..
            })
        ));
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(Algorithm::Mergesort.name(), "aem-mergesort");
        assert_eq!(Algorithm::ParSamplesort.to_string(), "par-aem-samplesort");
        assert!(Algorithm::ParSamplesort.is_parallel());
        assert!(!Algorithm::Heapsort.is_parallel());
        assert_eq!(Algorithm::ALL.len(), 4);
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
        }
        assert_eq!(Algorithm::parse("quicksort"), None);
    }
}

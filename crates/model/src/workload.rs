//! Deterministic input generators.
//!
//! Every experiment in this reproduction takes its input from one of these
//! generators, seeded explicitly so all runs are replayable. The paper's
//! bounds are comparison-based and hold for any input; the harness runs
//! several distributions to confirm the measured counts are input-insensitive
//! (and to stress randomized pieces like splitter sampling with skew).

use crate::record::{Record, MAX_KEY};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The input distributions used across experiments.
///
/// ```
/// use asym_model::workload::Workload;
/// let records = Workload::UniformRandom.generate(100, 42);
/// assert_eq!(records.len(), 100);
/// assert_eq!(records, Workload::UniformRandom.generate(100, 42)); // seeded
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Uniformly random unique keys.
    UniformRandom,
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Sorted, then a fraction of random adjacent-ish swaps (~5% of n).
    NearlySorted,
    /// Only `sqrt(n)` distinct key values (duplicates broken by payload).
    FewDistinct,
    /// Zipf-distributed key popularity (heavy skew; duplicates broken by payload).
    Zipf,
    /// Organ pipe: ascending then descending.
    OrganPipe,
    /// Every record byte-identical (key and payload): the worst-case
    /// duplicate adversary. Unlike the [`Workload::ALL`] generators, payloads
    /// are *not* rewritten to positions — the duplicates are real.
    AllIdentical,
    /// ~90% duplicates: `max(1, n/10)` distinct records, each drawn with
    /// replacement, payloads equal among twins (real duplicates).
    DuplicateHeavy,
}

impl Workload {
    /// All unique-record generator variants (handy for exhaustive test
    /// loops). The duplicate adversaries are deliberately *not* in this list:
    /// many harnesses compare against references that assume distinct
    /// records (e.g. the RAM red-black tree sort, whose set semantics drop
    /// duplicates) — they opt into [`Workload::DUPLICATE_ADVERSARIES`]
    /// explicitly.
    pub const ALL: [Workload; 7] = [
        Workload::UniformRandom,
        Workload::Sorted,
        Workload::Reversed,
        Workload::NearlySorted,
        Workload::FewDistinct,
        Workload::Zipf,
        Workload::OrganPipe,
    ];

    /// The duplicate-record adversaries: inputs with repeated `(key,
    /// payload)` pairs that stress the sorters' tie handling.
    pub const DUPLICATE_ADVERSARIES: [Workload; 2] =
        [Workload::AllIdentical, Workload::DuplicateHeavy];

    /// Short stable name used in table output.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::UniformRandom => "uniform",
            Workload::Sorted => "sorted",
            Workload::Reversed => "reversed",
            Workload::NearlySorted => "nearly-sorted",
            Workload::FewDistinct => "few-distinct",
            Workload::Zipf => "zipf",
            Workload::OrganPipe => "organ-pipe",
            Workload::AllIdentical => "all-identical",
            Workload::DuplicateHeavy => "duplicate-heavy",
        }
    }

    /// Parse a generator from its [`Workload::name`] (job descriptions
    /// arriving over the wire name their input distribution). Covers the
    /// duplicate adversaries too, so jobs can request them.
    pub fn parse(name: &str) -> Option<Workload> {
        Workload::ALL
            .into_iter()
            .chain(Workload::DUPLICATE_ADVERSARIES)
            .find(|wl| wl.name() == name)
    }

    /// True for the [`Workload::ALL`] generators, whose records are made
    /// distinct by rewriting payloads to positions; false for the duplicate
    /// adversaries, which keep their repeated records.
    pub fn unique_records(&self) -> bool {
        !matches!(self, Workload::AllIdentical | Workload::DuplicateHeavy)
    }

    /// Generate `n` records. For the [`Workload::ALL`] generators the
    /// payload is the original index (making every record distinct); the
    /// duplicate adversaries skip that rewrite so their duplicates survive.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        let mut out: Vec<Record> = match self {
            Workload::UniformRandom => {
                let mut keys = unique_uniform_keys(n, &mut rng);
                keys.shuffle(&mut rng);
                keys.into_iter().map(Record::keyed).collect()
            }
            Workload::Sorted => {
                let mut keys = unique_uniform_keys(n, &mut rng);
                keys.sort_unstable();
                keys.into_iter().map(Record::keyed).collect()
            }
            Workload::Reversed => {
                let mut keys = unique_uniform_keys(n, &mut rng);
                keys.sort_unstable();
                keys.reverse();
                keys.into_iter().map(Record::keyed).collect()
            }
            Workload::NearlySorted => {
                let mut keys = unique_uniform_keys(n, &mut rng);
                keys.sort_unstable();
                let swaps = n / 20;
                for _ in 0..swaps {
                    if n < 2 {
                        break;
                    }
                    let i = rng.gen_range(0..n);
                    let j = (i + 1 + rng.gen_range(0..8.min(n))) % n;
                    keys.swap(i, j);
                }
                keys.into_iter().map(Record::keyed).collect()
            }
            Workload::FewDistinct => {
                let distinct = (n as f64).sqrt().ceil().max(1.0) as u64;
                (0..n)
                    .map(|_| Record::new(rng.gen_range(0..distinct), 0))
                    .collect()
            }
            Workload::Zipf => (0..n)
                .map(|_| Record::new(zipf_sample(n.max(2) as u64, 1.1, &mut rng), 0))
                .collect(),
            Workload::OrganPipe => {
                let half = n / 2;
                let mut keys: Vec<u64> = (0..half as u64).collect();
                keys.extend((0..(n - half) as u64).rev());
                keys.into_iter().map(Record::keyed).collect()
            }
            Workload::AllIdentical => {
                let key = rng.gen_range(0..=MAX_KEY);
                vec![Record::new(key, key); n]
            }
            Workload::DuplicateHeavy => {
                let distinct = (n / 10).max(1) as u64;
                (0..n)
                    .map(|_| {
                        let d = rng.gen_range(0..distinct);
                        Record::new(d, d)
                    })
                    .collect()
            }
        };
        // Payload = original position, which makes all records distinct (the
        // paper's uniqueness-by-index convention) — except for the duplicate
        // adversaries, whose whole point is repeated records.
        if self.unique_records() {
            for (i, r) in out.iter_mut().enumerate() {
                r.payload = i as u64;
            }
        }
        out
    }
}

/// `n` unique uniformly distributed keys in `[0, MAX_KEY]`, ascendingly biased
/// rejection-free construction: sample with replacement, then deduplicate by
/// mixing in a counter (key space is 2^64 so collisions are already rare).
fn unique_uniform_keys(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut used = std::collections::HashSet::with_capacity(n * 2);
    while keys.len() < n {
        let mut k = rng.gen_range(0..=MAX_KEY);
        while !used.insert(k) {
            k = k.wrapping_add(0x9e37_79b9_7f4a_7c15) & MAX_KEY;
        }
        keys.push(k);
    }
    keys
}

/// Approximate Zipf(s) sampler over `[0, n)` by inverse transform on the
/// truncated harmonic series (adequate for workload skew; not a statistics
/// library).
fn zipf_sample(n: u64, s: f64, rng: &mut StdRng) -> u64 {
    // Inverse-CDF via the integral approximation of the generalized harmonic
    // numbers: H(x) ~ (x^{1-s} - 1) / (1 - s).
    let h = |x: f64| ((x + 1.0).powf(1.0 - s) - 1.0) / (1.0 - s);
    let total = h(n as f64);
    let u: f64 = rng.gen_range(0.0..1.0) * total;
    // Invert: x = (u * (1-s) + 1)^{1/(1-s)} - 1.
    let x = (u * (1.0 - s) + 1.0).powf(1.0 / (1.0 - s)) - 1.0;
    (x.max(0.0) as u64).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::is_sorted;

    #[test]
    fn names_parse_back_to_their_generator() {
        for wl in Workload::ALL
            .into_iter()
            .chain(Workload::DUPLICATE_ADVERSARIES)
        {
            assert_eq!(Workload::parse(wl.name()), Some(wl));
        }
        assert_eq!(Workload::parse("gaussian"), None);
    }

    #[test]
    fn generators_produce_requested_length() {
        for wl in Workload::ALL
            .into_iter()
            .chain(Workload::DUPLICATE_ADVERSARIES)
        {
            for n in [0usize, 1, 2, 17, 256] {
                let v = wl.generate(n, 42);
                assert_eq!(v.len(), n, "{} length", wl.name());
            }
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for wl in Workload::ALL
            .into_iter()
            .chain(Workload::DUPLICATE_ADVERSARIES)
        {
            let a = wl.generate(100, 7);
            let b = wl.generate(100, 7);
            let c = wl.generate(100, 8);
            assert_eq!(a, b, "{} must be deterministic", wl.name());
            if wl != Workload::Sorted && wl != Workload::OrganPipe && wl != Workload::Reversed {
                assert_ne!(a, c, "{} should vary with seed", wl.name());
            }
        }
    }

    #[test]
    fn payloads_are_positions_and_records_unique() {
        for wl in Workload::ALL {
            let v = wl.generate(500, 3);
            for (i, r) in v.iter().enumerate() {
                assert_eq!(r.payload, i as u64);
            }
            let mut set: Vec<Record> = v.clone();
            set.sort_unstable();
            set.dedup();
            assert_eq!(set.len(), v.len(), "{} records must be unique", wl.name());
        }
    }

    #[test]
    fn sorted_workload_is_sorted_and_reversed_is_descending() {
        let s = Workload::Sorted.generate(200, 1);
        assert!(is_sorted(&s));
        let r = Workload::Reversed.generate(200, 1);
        assert!(r.windows(2).all(|w| w[0].key >= w[1].key));
    }

    #[test]
    fn few_distinct_has_few_distinct_keys() {
        let v = Workload::FewDistinct.generate(10_000, 5);
        let mut keys: Vec<u64> = v.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() <= 140, "expected ~sqrt(n)=100 distinct keys");
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let v = Workload::Zipf.generate(10_000, 5);
        let small = v.iter().filter(|r| r.key < 10).count();
        assert!(
            small > v.len() / 4,
            "zipf should concentrate mass on small keys, got {small}"
        );
    }

    #[test]
    fn organ_pipe_rises_then_falls() {
        let v = Workload::OrganPipe.generate(10, 0);
        let keys: Vec<u64> = v.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn all_identical_records_really_are_identical() {
        let v = Workload::AllIdentical.generate(500, 11);
        assert!(v.windows(2).all(|w| w[0] == w[1]));
        assert!(!v.is_empty() && v[0].key <= MAX_KEY);
        assert!(!Workload::AllIdentical.unique_records());
    }

    #[test]
    fn duplicate_heavy_is_mostly_duplicates() {
        let v = Workload::DuplicateHeavy.generate(1000, 11);
        let mut set = v.clone();
        set.sort_unstable();
        set.dedup();
        assert!(
            set.len() <= v.len() / 10,
            "expected <= n/10 distinct records, got {}",
            set.len()
        );
        assert!(!Workload::DuplicateHeavy.unique_records());
    }

    #[test]
    fn uniform_keys_stay_below_sentinel() {
        let v = Workload::UniformRandom.generate(1000, 9);
        assert!(v.iter().all(|r| r.key <= MAX_KEY));
    }
}

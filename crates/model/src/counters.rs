//! Read/write instrumentation counters.
//!
//! The paper's models charge every *write* `omega` and every *read* 1. To
//! measure algorithms rather than trust their analyses, every algorithm in
//! this reproduction routes element accesses through a [`MemCounter`], either
//! directly or via the counted containers defined here.
//!
//! Counters use `Cell<u64>` rather than atomics: all simulated executions are
//! deterministic single-threaded interpretations of the parallel algorithms
//! (the real multi-threaded executor in `asym-core::par` keeps per-thread
//! counters and merges them). This keeps the hot path to a single add.

use std::cell::Cell;
use std::rc::Rc;

/// Tally of primitive memory operations performed by an algorithm.
///
/// `MemCounter` is cheaply clonable (shared via `Rc`), so a machine simulator
/// and the algorithm running on it can both hold handles onto the same tally.
///
/// ```
/// use asym_model::MemCounter;
/// let c = MemCounter::new();
/// c.read();
/// c.add_writes(3);
/// assert_eq!(c.snapshot(), (1, 3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemCounter {
    inner: Rc<CounterInner>,
}

#[derive(Debug, Default)]
struct CounterInner {
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl MemCounter {
    /// A fresh counter with both tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` element reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        self.inner.reads.set(self.inner.reads.get() + n);
    }

    /// Record `n` element writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        self.inner.writes.set(self.inner.writes.get() + n);
    }

    /// Record one read.
    #[inline]
    pub fn read(&self) {
        self.add_reads(1);
    }

    /// Record one write.
    #[inline]
    pub fn write(&self) {
        self.add_writes(1);
    }

    /// Total reads recorded so far.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.inner.reads.get()
    }

    /// Total writes recorded so far.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.inner.writes.get()
    }

    /// Reset both tallies to zero.
    pub fn reset(&self) {
        self.inner.reads.set(0);
        self.inner.writes.set(0);
    }

    /// Snapshot `(reads, writes)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.reads(), self.writes())
    }

    /// Reads and writes performed since an earlier [`snapshot`](Self::snapshot).
    pub fn delta_since(&self, snap: (u64, u64)) -> (u64, u64) {
        (self.reads() - snap.0, self.writes() - snap.1)
    }

    /// Fold another counter's tallies into this one (used by the parallel
    /// executor when joining per-thread counters).
    pub fn absorb(&self, other: &MemCounter) {
        self.add_reads(other.reads());
        self.add_writes(other.writes());
    }
}

/// A single memory cell whose accesses are tallied on a [`MemCounter`].
#[derive(Clone, Debug)]
pub struct CountedCell<T> {
    value: T,
    counter: MemCounter,
}

impl<T: Copy> CountedCell<T> {
    /// Wrap `value`; the initial store is *not* charged (matching the paper's
    /// convention that the input already resides in memory).
    pub fn new(value: T, counter: MemCounter) -> Self {
        Self { value, counter }
    }

    /// Read the cell (charges one read).
    #[inline]
    pub fn get(&self) -> T {
        self.counter.read();
        self.value
    }

    /// Overwrite the cell (charges one write).
    #[inline]
    pub fn set(&mut self, value: T) {
        self.counter.write();
        self.value = value;
    }

    /// Peek without charging (for assertions and test oracles only).
    pub fn peek(&self) -> T {
        self.value
    }
}

/// An owned vector whose element accesses are tallied on a [`MemCounter`].
///
/// This is the workhorse container for the RAM/PRAM algorithms: index reads
/// charge one read, index writes charge one write, and `push` charges one
/// write (appending to the output array is a write of one record).
#[derive(Clone, Debug)]
pub struct CountedVec<T> {
    data: Vec<T>,
    counter: MemCounter,
}

impl<T: Copy> CountedVec<T> {
    /// Wrap an existing vector without charging for its contents.
    pub fn from_vec(data: Vec<T>, counter: MemCounter) -> Self {
        Self { data, counter }
    }

    /// An empty vector with reserved capacity (allocation is free; only
    /// element writes are charged).
    pub fn with_capacity(cap: usize, counter: MemCounter) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            counter,
        }
    }

    /// Number of elements (free: length is bookkeeping, not data).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty (free).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i` (charges one read).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.counter.read();
        self.data[i]
    }

    /// Write element `i` (charges one write).
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.counter.write();
        self.data[i] = v;
    }

    /// Append an element (charges one write).
    #[inline]
    pub fn push(&mut self, v: T) {
        self.counter.write();
        self.data.push(v);
    }

    /// Swap two elements (charges two reads and two writes).
    pub fn swap(&mut self, i: usize, j: usize) {
        self.counter.add_reads(2);
        self.counter.add_writes(2);
        self.data.swap(i, j);
    }

    /// The counter this vector charges to.
    pub fn counter(&self) -> &MemCounter {
        &self.counter
    }

    /// Uncharged view of the underlying data (test oracles only).
    pub fn peek_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume the wrapper, returning the underlying vector (free).
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

/// A borrowed slice with counted reads (used when an algorithm only needs
/// read access to its input).
#[derive(Debug)]
pub struct CountedSlice<'a, T> {
    data: &'a [T],
    counter: MemCounter,
}

impl<'a, T: Copy> CountedSlice<'a, T> {
    /// Wrap a borrowed slice.
    pub fn new(data: &'a [T], counter: MemCounter) -> Self {
        Self { data, counter }
    }

    /// Length (free).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty (free).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i` (charges one read).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.counter.read();
        self.data[i]
    }

    /// The counter this slice charges to.
    pub fn counter(&self) -> &MemCounter {
        &self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_tallies_and_resets() {
        let c = MemCounter::new();
        c.read();
        c.write();
        c.add_reads(4);
        c.add_writes(2);
        assert_eq!(c.reads(), 5);
        assert_eq!(c.writes(), 3);
        let snap = c.snapshot();
        c.read();
        assert_eq!(c.delta_since(snap), (1, 0));
        c.reset();
        assert_eq!(c.snapshot(), (0, 0));
    }

    #[test]
    fn counter_handles_share_one_tally() {
        let a = MemCounter::new();
        let b = a.clone();
        a.read();
        b.write();
        assert_eq!(a.snapshot(), (1, 1));
        assert_eq!(b.snapshot(), (1, 1));
    }

    #[test]
    fn absorb_merges_counts() {
        let a = MemCounter::new();
        let b = MemCounter::new();
        a.add_reads(3);
        b.add_writes(7);
        a.absorb(&b);
        assert_eq!(a.snapshot(), (3, 7));
    }

    #[test]
    fn counted_cell_charges_reads_and_writes() {
        let c = MemCounter::new();
        let mut cell = CountedCell::new(10u32, c.clone());
        assert_eq!(cell.get(), 10);
        cell.set(11);
        assert_eq!(cell.peek(), 11);
        assert_eq!(c.snapshot(), (1, 1));
    }

    #[test]
    fn counted_vec_charges_per_access() {
        let c = MemCounter::new();
        let mut v = CountedVec::from_vec(vec![1u64, 2, 3], c.clone());
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), 1);
        v.set(1, 9);
        v.push(4);
        assert_eq!(c.snapshot(), (1, 2));
        v.swap(0, 3);
        assert_eq!(c.snapshot(), (3, 4));
        assert_eq!(v.into_inner(), vec![4, 9, 3, 1]);
    }

    #[test]
    fn counted_slice_charges_reads_only() {
        let c = MemCounter::new();
        let data = [5u8, 6, 7];
        let s = CountedSlice::new(&data, c.clone());
        assert!(!s.is_empty());
        assert_eq!(s.get(2), 7);
        assert_eq!(s.counter().snapshot(), (1, 0));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let c = MemCounter::new();
        let v: CountedVec<u32> = CountedVec::with_capacity(16, c.clone());
        assert!(v.is_empty());
        assert_eq!(c.snapshot(), (0, 0));
    }
}

//! Plain-text table rendering for the experiment harness.
//!
//! Every experiment prints one or more tables shaped like the paper's bound
//! statements (columns for n, ω, k, measured reads/writes, formula values,
//! ratios). [`Table`] right-aligns numeric columns and keeps the output
//! stable so `bench_output.txt` diffs cleanly between runs.

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also what `Display` prints).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers, left-align text.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with 3 significant decimals for table cells.
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x.is_nan() {
        "nan".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x.is_nan() {
        "nan".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Format an integer count.
pub fn u(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "count"]);
        t.row(&["alpha".into(), "5".into()]);
        t.row(&["b".into(), "12345".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("12345"));
        assert!(s.contains("note: a note"));
        // Numeric column is right-aligned: "    5" under "12345".
        let lines: Vec<&str> = s.lines().collect();
        let five = lines.iter().find(|l| l.contains("alpha")).unwrap();
        assert!(five.ends_with('5'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(f3(f64::INFINITY), "inf");
        assert_eq!(f2(f64::NAN), "nan");
        assert_eq!(u(42), "42");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("d", &["c"]);
        t.row(&["1".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}

//! Small statistics helpers for checking empirical growth rates.
//!
//! Experiments verify the *shape* of the paper's bounds: e.g. that writes of
//! the tree sort grow linearly in n while a comparison sort's writes grow as
//! n log n. [`loglog_slope`] fits the empirical exponent on a log-log plot;
//! [`Summary`] aggregates repeated trials.

/// Mean of a sample (0 for an empty sample).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a sample.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median of a sample (0 for an empty sample).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)`: the empirical polynomial
/// exponent of y(x). Points with non-positive coordinates are skipped.
///
/// A measured exponent ~1.0 confirms linear growth, ~2.0 quadratic, etc.
/// Exponents for n log n data land slightly above 1 over practical ranges.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    linear_slope(&pts)
}

/// Least-squares slope of y against x.
pub fn linear_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// Aggregate of repeated trials of one measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of trials aggregated.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample median.
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample (all-zero summary for an empty sample).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        Summary {
            n: xs.len(),
            mean: mean(xs),
            median: median(xs),
            stddev: stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// log2 as f64 of a positive integer (0 maps to 0, convenient in ratios).
pub fn log2(x: u64) -> f64 {
    if x == 0 {
        0.0
    } else {
        (x as f64).log2()
    }
}

/// `log_base(x)` with both arguments as counts; clamps bases <= 1 to base 2 to
/// keep experiment formulas total.
pub fn log_base(base: f64, x: f64) -> f64 {
    let b = if base <= 1.0 + 1e-9 { 2.0 } else { base };
    x.max(1.0).ln() / b.ln()
}

/// Ceiling of `log_base(x)` as used in the paper's level-count formulas,
/// minimum 1 level.
pub fn ceil_log_base(base: f64, x: f64) -> u64 {
    log_base(base, x).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_stddev_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((stddev(&xs) - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn loglog_slope_recovers_exponents() {
        let quad: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&quad) - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_slope_of_nlogn_is_slightly_superlinear() {
        let pts: Vec<(f64, f64)> = (4..16)
            .map(|e| {
                let n = (1u64 << e) as f64;
                (n, n * n.log2())
            })
            .collect();
        let s = loglog_slope(&pts);
        assert!(s > 1.05 && s < 1.5, "slope {s}");
    }

    #[test]
    fn linear_slope_handles_degenerate_inputs() {
        assert_eq!(linear_slope(&[]), 0.0);
        assert_eq!(linear_slope(&[(1.0, 1.0)]), 0.0);
        assert_eq!(linear_slope(&[(2.0, 5.0), (2.0, 7.0)]), 0.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn log_helpers() {
        assert_eq!(log2(8), 3.0);
        assert_eq!(log2(0), 0.0);
        assert!((log_base(4.0, 16.0) - 2.0).abs() < 1e-12);
        assert_eq!(ceil_log_base(4.0, 17.0), 3);
        assert_eq!(ceil_log_base(4.0, 1.0), 1);
        // Degenerate base clamps instead of dividing by ln(1)=0.
        assert!(log_base(1.0, 8.0).is_finite());
    }
}

//! The record type being sorted.
//!
//! The paper sorts "n records each containing a key" and assumes keys are
//! unique ("a position index can always be added to make them unique"). A
//! [`Record`] is a `u64` key plus a `u64` payload; the standard workload
//! generators (`Workload::ALL`) mirror the paper's convention by making every
//! record distinct via the position index. The sorters themselves no longer
//! rely on it: duplicate records — equal key *and* payload — are handled
//! exactly by tagging each in-flight record with provenance (run index and
//! offset, or scan index) so comparisons stay strict; the duplicate-adversary
//! workloads (`Workload::DUPLICATE_ADVERSARIES`) exercise that path.

/// Largest key value generators will produce (reserving the top value lets
/// algorithms use `u64::MAX` as a +infinity sentinel).
pub const MAX_KEY: u64 = u64::MAX - 1;

/// A sortable record: an ordering key and an opaque payload.
///
/// `Record` is `Copy` and 16 bytes, so counted moves of records model what a
/// real sorter would move. Ordering is by key, then payload. Equal records
/// (same key and payload) are legal inputs everywhere: sorters that need a
/// strict total order add their own provenance tie-break internally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Record {
    /// The comparison key.
    pub key: u64,
    /// Payload carried alongside the key (e.g. the original index, so tests
    /// can verify stability-related properties and permutation preservation).
    pub payload: u64,
}

impl Record {
    /// A record with the given key and payload.
    #[inline]
    pub fn new(key: u64, payload: u64) -> Self {
        Self { key, payload }
    }

    /// A record carrying its own key as payload (convenient in tests).
    #[inline]
    pub fn keyed(key: u64) -> Self {
        Self { key, payload: key }
    }

    /// The +infinity sentinel: compares greater than every generated record.
    #[inline]
    pub fn max_sentinel() -> Self {
        Self {
            key: u64::MAX,
            payload: u64::MAX,
        }
    }

    /// The -infinity sentinel: compares less than every generated record.
    #[inline]
    pub fn min_sentinel() -> Self {
        Self { key: 0, payload: 0 }
    }
}

impl PartialOrd for Record {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.key, self.payload)
    }
}

/// Returns true iff `data` is sorted by the record ordering.
pub fn is_sorted(data: &[Record]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

/// Returns true iff `actual` is a permutation of `expected`.
///
/// O(n log n); used as the second half of the "sorting = sorted permutation of
/// the input" oracle in tests.
pub fn is_permutation(expected: &[Record], actual: &[Record]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut a = expected.to_vec();
    let mut b = actual.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// Panics with a readable diff if `output` is not the sorted permutation of
/// `input`. The standard oracle used by unit, property, and integration tests.
pub fn assert_sorted_permutation(input: &[Record], output: &[Record]) {
    assert!(
        is_sorted(output),
        "output is not sorted (first violation at {:?})",
        output
            .windows(2)
            .position(|w| w[0] > w[1])
            .map(|i| (i, output[i], output[i + 1]))
    );
    assert!(
        is_permutation(input, output),
        "output is not a permutation of the input (lengths {} vs {})",
        input.len(),
        output.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_key_then_payload() {
        let a = Record::new(1, 5);
        let b = Record::new(2, 0);
        let c = Record::new(1, 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn sentinels_bracket_generated_keys() {
        let lo = Record::min_sentinel();
        let hi = Record::max_sentinel();
        let mid = Record::new(MAX_KEY, 0);
        assert!(lo <= mid && mid < hi);
    }

    #[test]
    fn is_sorted_detects_order() {
        let sorted: Vec<Record> = (0..10).map(Record::keyed).collect();
        assert!(is_sorted(&sorted));
        let mut unsorted = sorted.clone();
        unsorted.swap(3, 7);
        assert!(!is_sorted(&unsorted));
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[Record::keyed(1)]));
    }

    #[test]
    fn is_permutation_detects_multiset_equality() {
        let a: Vec<Record> = (0..8).map(Record::keyed).collect();
        let mut b = a.clone();
        b.reverse();
        assert!(is_permutation(&a, &b));
        b[0] = Record::keyed(99);
        assert!(!is_permutation(&a, &b));
        assert!(!is_permutation(&a, &a[1..]));
    }

    #[test]
    fn oracle_accepts_correct_sort() {
        let input: Vec<Record> = [5u64, 3, 9, 1].iter().map(|&k| Record::keyed(k)).collect();
        let mut output = input.clone();
        output.sort();
        assert_sorted_permutation(&input, &output);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn oracle_rejects_unsorted() {
        let input: Vec<Record> = [2u64, 1].iter().map(|&k| Record::keyed(k)).collect();
        assert_sorted_permutation(&input, &input);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn oracle_rejects_wrong_multiset() {
        let input: Vec<Record> = [2u64, 1].iter().map(|&k| Record::keyed(k)).collect();
        let output: Vec<Record> = [1u64, 3].iter().map(|&k| Record::keyed(k)).collect();
        assert_sorted_permutation(&input, &output);
    }

    #[test]
    fn display_shows_key_and_payload() {
        assert_eq!(Record::new(4, 2).to_string(), "4#2");
    }
}

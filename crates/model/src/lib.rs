//! # asym-model — the asymmetric read/write cost model substrate
//!
//! This crate provides the shared vocabulary used by every machine model in the
//! reproduction of *Sorting with Asymmetric Read and Write Costs* (SPAA 2015):
//!
//! * [`CostModel`] — the single parameter of the paper's models: an integer
//!   charge `omega > 1` per write, with unit-cost reads.
//! * [`counters`] — cheap instrumentation counters ([`MemCounter`]) and counted
//!   memory cells so algorithms can tally the reads and writes they perform.
//! * [`record`] — the record type being sorted (a `u64` key plus payload).
//! * [`workload`] — deterministic input generators (uniform, sorted, reversed,
//!   nearly sorted, few-distinct, Zipf, organ pipe).
//! * [`stats`] — small statistics helpers (means, log-log slope fits) used when
//!   checking empirical growth rates against the paper's bounds.
//! * [`json`] — the dependency-free JSON parser/emitter shared by the bench
//!   reports, the sort-job wire codec, and the job server.
//! * [`table`] — a plain-text table builder used by the experiment harness.
//!
//! The crate is deliberately free of machine-specific logic: the External
//! Memory machine lives in `em-sim`, the ideal-cache simulator in `cache-sim`,
//! and the PRAM work-depth framework in `wd-sim`. All of them express their
//! tallies as [`CostReport`]s so experiments can compare across models.

pub mod cost;
pub mod counters;
pub mod json;
pub mod record;
pub mod stats;
pub mod table;
pub mod workload;

pub use cost::{CostModel, CostReport};
pub use counters::{CountedCell, CountedSlice, CountedVec, MemCounter};
pub use record::{Record, MAX_KEY};

/// Crate-wide result alias (used by substrates that can fault, e.g. when an
/// algorithm exceeds its leased primary memory).
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors surfaced by the simulators built on top of this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An algorithm attempted to hold more primary memory than the machine has.
    MemoryExceeded {
        /// Records currently leased.
        used: usize,
        /// Records requested on top of `used`.
        requested: usize,
        /// The machine's capacity (including any allowed slack).
        capacity: usize,
    },
    /// A block address was used after being freed or before being allocated.
    BadBlock(usize),
    /// An index was outside the bounds of a simulated array.
    OutOfBounds { index: usize, len: usize },
    /// Generic invariant violation with a description.
    Invariant(String),
    /// A real I/O operation failed (file-backed block stores only; the
    /// in-memory store never produces this). The underlying `std::io::Error`
    /// is flattened to its message so the error stays `Clone + PartialEq`.
    Io(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::MemoryExceeded {
                used,
                requested,
                capacity,
            } => write!(
                f,
                "primary memory exceeded: {used} leased + {requested} requested > {capacity}"
            ),
            ModelError::BadBlock(b) => write!(f, "invalid block address {b}"),
            ModelError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            ModelError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            ModelError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ModelError::MemoryExceeded {
            used: 10,
            requested: 5,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("5"));
        assert!(s.contains("12"));
        assert!(ModelError::BadBlock(7).to_string().contains('7'));
        assert!(ModelError::OutOfBounds { index: 3, len: 2 }
            .to_string()
            .contains("bounds"));
        assert!(ModelError::Invariant("x".into()).to_string().contains('x'));
        assert!(ModelError::Io("denied".into())
            .to_string()
            .contains("denied"));
    }
}

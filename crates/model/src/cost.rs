//! The asymmetric cost model and cost reports.
//!
//! All of the paper's machine models share one parameter: an integer `omega`
//! (written ω) such that a write costs ω and a read costs 1. [`CostModel`]
//! carries that parameter; [`CostReport`] is the standard summary every
//! simulator produces so experiments can tabulate and compare runs.

use crate::counters::MemCounter;

/// The read/write asymmetry parameter of every model in the paper.
///
/// ```
/// use asym_model::CostModel;
/// let pcm = CostModel::new(26); // projected PCM write/read latency ratio
/// assert_eq!(pcm.cost(100, 10), 100 + 26 * 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one write relative to one read (`omega > 1` in the paper;
    /// `omega = 1` gives back the classic symmetric model and is allowed here
    /// so baselines can be run in the same harness).
    pub omega: u64,
}

impl CostModel {
    /// A model charging `omega` per write.
    pub fn new(omega: u64) -> Self {
        assert!(omega >= 1, "omega must be at least 1");
        Self { omega }
    }

    /// The classic symmetric model (writes cost the same as reads).
    pub fn symmetric() -> Self {
        Self { omega: 1 }
    }

    /// Asymmetric cost of a tally: `reads + omega * writes`.
    #[inline]
    pub fn cost(&self, reads: u64, writes: u64) -> u64 {
        reads + self.omega * writes
    }

    /// Asymmetric cost of everything recorded on `counter`.
    pub fn cost_of(&self, counter: &MemCounter) -> u64 {
        self.cost(counter.reads(), counter.writes())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::symmetric()
    }
}

/// Summary of one measured execution: raw tallies plus the ω-weighted total.
///
/// Simulators with richer accounting (block transfers, cache misses, depth)
/// embed a `CostReport` for the common part and extend it with their own
/// fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Unit-cost operations (element reads or block reads, per model).
    pub reads: u64,
    /// ω-cost operations (element writes or block writes, per model).
    pub writes: u64,
    /// The ω used to weight `total`.
    pub omega: u64,
}

impl CostReport {
    /// Build a report from explicit tallies.
    pub fn new(reads: u64, writes: u64, omega: u64) -> Self {
        Self {
            reads,
            writes,
            omega,
        }
    }

    /// Build a report from a counter under `model`.
    pub fn from_counter(counter: &MemCounter, model: CostModel) -> Self {
        Self {
            reads: counter.reads(),
            writes: counter.writes(),
            omega: model.omega,
        }
    }

    /// The ω-weighted total cost `reads + omega * writes`.
    pub fn total(&self) -> u64 {
        self.reads + self.omega * self.writes
    }

    /// Reads per write; `inf` rendered as `f64::INFINITY` when writes = 0.
    pub fn read_write_ratio(&self) -> f64 {
        if self.writes == 0 {
            f64::INFINITY
        } else {
            self.reads as f64 / self.writes as f64
        }
    }

    /// Element-wise sum of two reports (their ω must agree).
    pub fn merged(&self, other: &CostReport) -> CostReport {
        assert_eq!(self.omega, other.omega, "cannot merge across omegas");
        CostReport {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            omega: self.omega,
        }
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} omega={} total={}",
            self.reads,
            self.writes,
            self.omega,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weighs_writes_by_omega() {
        let m = CostModel::new(8);
        assert_eq!(m.cost(10, 3), 10 + 24);
        let c = MemCounter::new();
        c.add_reads(5);
        c.add_writes(2);
        assert_eq!(m.cost_of(&c), 5 + 16);
    }

    #[test]
    fn symmetric_model_is_unit_weight() {
        let m = CostModel::symmetric();
        assert_eq!(m.omega, 1);
        assert_eq!(m.cost(7, 7), 14);
        assert_eq!(CostModel::default(), CostModel::symmetric());
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn zero_omega_rejected() {
        let _ = CostModel::new(0);
    }

    #[test]
    fn report_totals_and_ratio() {
        let r = CostReport::new(100, 10, 4);
        assert_eq!(r.total(), 140);
        assert!((r.read_write_ratio() - 10.0).abs() < 1e-12);
        let zero_writes = CostReport::new(5, 0, 4);
        assert!(zero_writes.read_write_ratio().is_infinite());
    }

    #[test]
    fn report_merge_sums_fields() {
        let a = CostReport::new(1, 2, 3);
        let b = CostReport::new(10, 20, 3);
        let m = a.merged(&b);
        assert_eq!((m.reads, m.writes, m.omega), (11, 22, 3));
    }

    #[test]
    #[should_panic(expected = "omegas")]
    fn report_merge_requires_same_omega() {
        let _ = CostReport::new(0, 0, 2).merged(&CostReport::new(0, 0, 3));
    }

    #[test]
    fn report_display_contains_fields() {
        let s = CostReport::new(3, 4, 5).to_string();
        assert!(s.contains("reads=3"));
        assert!(s.contains("writes=4"));
        assert!(s.contains("total=23"));
    }

    #[test]
    fn report_from_counter_copies_tallies() {
        let c = MemCounter::new();
        c.add_reads(9);
        c.add_writes(1);
        let r = CostReport::from_counter(&c, CostModel::new(6));
        assert_eq!((r.reads, r.writes, r.omega), (9, 1, 6));
    }
}

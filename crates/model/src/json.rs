//! Dependency-free JSON: a minimal value parser plus emission helpers.
//!
//! One JSON implementation serves the whole workspace — the bench-report
//! files (`asym-bench`), the sort-job wire codec (`asym_core::sort::wire`),
//! and the job-server front door (`asym-serve`) all speak the same dialect
//! through this module, so there is exactly one parser to keep correct and
//! no external dependency to vendor. The surface is deliberately small: a
//! [`Json`] tree with typed accessors for reading, and [`JsonObj`] /
//! [`JsonArr`] builders plus [`quote`] / [`number`] for writing.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no sign, fraction, or exponent),
    /// kept exact: `u64` payloads like record keys and seeds exceed `f64`'s
    /// 2^53 integer precision, and the wire codecs must round-trip them
    /// bit-for-bit.
    Int(u64),
    /// Any other number (integral readers round).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicate keys keep the first
    /// match on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing non-whitespace is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// The object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (exact integers included,
    /// rounded into `f64` range).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact integer value: [`Json::Int`] verbatim, or a [`Json::Num`]
    /// that happens to be a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (first match; `None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|obj| find(obj, key))
    }

    /// Serialize back to a JSON document. `parse(render(v)) == v` for every
    /// value — integers stay exact ([`Json::Int`] prints verbatim).
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Int(n) => n.to_string(),
            Json::Num(x) => number(*x),
            Json::Str(s) => quote(s),
            Json::Arr(items) => {
                let mut a = JsonArr::new();
                for v in items {
                    a.raw(&v.render());
                }
                a.finish()
            }
            Json::Obj(fields) => {
                let mut o = JsonObj::new();
                for (k, v) in fields {
                    o.raw(k, &v.render());
                }
                o.finish()
            }
        }
    }
}

/// Look a key up in an object's field list (first match).
pub fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A string field's value, cloned.
pub fn get_str(obj: &[(String, Json)], key: &str) -> Option<String> {
    find(obj, key).and_then(|v| v.as_str().map(str::to_owned))
}

/// A numeric field's value.
pub fn get_f64(obj: &[(String, Json)], key: &str) -> Option<f64> {
    find(obj, key).and_then(Json::as_f64)
}

/// A numeric field as `u64`: exact for integer literals, rounded for other
/// numbers (negative values read as 0).
pub fn get_u64(obj: &[(String, Json)], key: &str) -> Option<u64> {
    match find(obj, key)? {
        Json::Int(n) => Some(*n),
        Json::Num(x) => Some(x.round().max(0.0) as u64),
        _ => None,
    }
}

/// A numeric field, rounded to `usize`.
pub fn get_usize(obj: &[(String, Json)], key: &str) -> Option<usize> {
    get_u64(obj, key).map(|x| x as usize)
}

/// A boolean field's value.
pub fn get_bool(obj: &[(String, Json)], key: &str) -> Option<bool> {
    find(obj, key).and_then(Json::as_bool)
}

// ---- parser ----------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            _ => {
                // Re-borrow the full char (the input is valid UTF-8; multi-byte
                // chars only occur inside strings).
                let start = *pos - 1;
                let s = std::str::from_utf8(&b[start..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty string tail")?;
                *pos = start + ch.len_utf8();
                out.push(ch);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    // A bare digit run is kept exact (u64 keys exceed f64 precision); signed,
    // fractional, or exponent forms take the f64 path.
    if let Ok(n) = s.parse::<u64>() {
        return Ok(Json::Int(n));
    }
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at offset {start}"))
}

// ---- emission --------------------------------------------------------------

/// A JSON string literal with quote, backslash, newline, and control-byte
/// escaping.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (non-finite values degrade to 0, which JSON cannot
/// represent otherwise).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".into()
    }
}

/// Incremental single-line JSON object emitter.
///
/// ```
/// use asym_model::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "job-1").u64("reads", 42).bool("done", true);
/// assert_eq!(o.finish(), r#"{ "name": "job-1", "reads": 42, "done": true }"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.buf.is_empty() {
            self.buf.push_str("{ ");
        } else {
            self.buf.push_str(", ");
        }
        self.buf.push_str(&quote(key));
        self.buf.push_str(": ");
        &mut self.buf
    }

    /// Append a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let q = quote(value);
        self.key(key).push_str(&q);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key).push_str(&value.to_string());
        self
    }

    /// Append a float field (rendered via [`number`]).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let n = number(value);
        self.key(key).push_str(&n);
        self
    }

    /// Append a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key).push_str(if value { "true" } else { "false" });
        self
    }

    /// Append a field whose value is already-rendered JSON (a nested object,
    /// array, or literal).
    pub fn raw(&mut self, key: &str, rendered: &str) -> &mut Self {
        self.key(key).push_str(rendered);
        self
    }

    /// Close the object and return its rendering.
    pub fn finish(&mut self) -> String {
        if self.buf.is_empty() {
            return "{}".into();
        }
        let mut out = std::mem::take(&mut self.buf);
        out.push_str(" }");
        out
    }
}

/// Incremental single-line JSON array emitter (pre-rendered items).
#[derive(Debug, Default)]
pub struct JsonArr {
    buf: String,
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one already-rendered JSON value.
    pub fn raw(&mut self, rendered: &str) -> &mut Self {
        if self.buf.is_empty() {
            self.buf.push('[');
        } else {
            self.buf.push_str(", ");
        }
        self.buf.push_str(rendered);
        self
    }

    /// Close the array and return its rendering.
    pub fn finish(&mut self) -> String {
        if self.buf.is_empty() {
            return "[]".into();
        }
        let mut out = std::mem::take(&mut self.buf);
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scalar_zoo() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_with_accessors() {
        let v = Json::parse(r#"{ "a": [1, 2, {"b": true}], "c": "s" }"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("missing"), None);
        let obj = v.as_obj().unwrap();
        assert_eq!(get_str(obj, "c").as_deref(), Some("s"));
        assert_eq!(get_bool(obj, "c"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("x\ny"), "\"x\\ny\"");
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap(),
            Json::Str("a\"b\\c\nA".into())
        );
        let tricky = "keys \"with\" \\slashes\\ and\nnewlines\tand unicode é";
        assert_eq!(
            Json::parse(&quote(tricky)).unwrap(),
            Json::Str(tricky.into())
        );
    }

    #[test]
    fn integers_round_trip_exactly_beyond_f64_precision() {
        // u64::MAX - 1 is a legal record key; f64 would corrupt it.
        let big = u64::MAX - 1;
        let mut o = JsonObj::new();
        o.u64("key", big);
        let v = Json::parse(&o.finish()).unwrap();
        assert_eq!(v.get("key"), Some(&Json::Int(big)));
        assert_eq!(get_u64(v.as_obj().unwrap(), "key"), Some(big));
        assert_eq!(v.get("key").and_then(Json::as_u64), Some(big));
        // Fractional and signed forms still read through as_u64 only when
        // they are whole and non-negative.
        assert_eq!(Json::parse("2.0").unwrap().as_u64(), Some(2));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn render_is_a_parse_fixed_point() {
        let text = format!(
            r#"{{ "id": {}, "ok": true, "none": null, "name": "a\"b",
                 "xs": [1, 2.5, [], {{}}], "nested": {{ "w": -1.25 }} }}"#,
            u64::MAX - 1,
        );
        let v = Json::parse(&text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // And rendering the reparse reproduces the same document.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn numbers_render_finite() {
        assert_eq!(number(1.5), "1.500000");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }

    #[test]
    fn typed_getters_read_and_round() {
        let v = Json::parse(r#"{ "n": 3.6, "s": "x", "b": false }"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(get_u64(obj, "n"), Some(4));
        assert_eq!(get_usize(obj, "n"), Some(4));
        assert_eq!(get_f64(obj, "n"), Some(3.6));
        assert_eq!(get_bool(obj, "b"), Some(false));
        assert_eq!(get_str(obj, "n"), None, "type-mismatched reads are None");
        assert_eq!(get_u64(obj, "s"), None);
    }

    #[test]
    fn object_and_array_builders_emit_parsable_json() {
        let mut inner = JsonObj::new();
        inner.u64("reads", 10).f64("ratio", 2.5);
        let inner = inner.finish();
        let mut arr = JsonArr::new();
        arr.raw("1").raw(&quote("two"));
        let arr = arr.finish();
        let mut o = JsonObj::new();
        o.str("id", "a\"b")
            .bool("ok", true)
            .raw("stats", &inner)
            .raw("items", &arr);
        let text = o.finish();
        let v = Json::parse(&text).expect("builder output parses");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("stats").and_then(|s| s.get("reads")).unwrap(),
            &Json::Int(10)
        );
        assert_eq!(v.get("items").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(JsonArr::new().finish(), "[]");
    }
}

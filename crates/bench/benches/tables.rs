//! The experiment harness: regenerates every theorem-level table of the
//! reproduction (DESIGN.md §3, EXPERIMENTS.md).
//!
//! ```text
//! cargo bench -p asym-bench --bench tables                 # standard scale
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench tables
//! ASYM_BENCH_SCALE=full  cargo bench -p asym-bench --bench tables
//! ```

use asym_bench::{experiments, Scale};
use std::time::Instant;

fn main() {
    // `cargo bench` passes --bench; ignore all args.
    let scale = Scale::from_env();
    println!("# Sorting with Asymmetric Read and Write Costs — experiment tables");
    println!("# scale: {scale:?} (set ASYM_BENCH_SCALE=smoke|standard|full)\n");
    let overall = Instant::now();
    for e in experiments() {
        let start = Instant::now();
        println!("---------------------------------------------------------------");
        println!("{} — {}", e.id, e.claim);
        println!("---------------------------------------------------------------");
        let tables = (e.run)(scale);
        for t in tables {
            println!("{t}");
        }
        println!("[{} finished in {:.1?}]\n", e.id, start.elapsed());
    }
    println!("all experiments completed in {:.1?}", overall.elapsed());
}

//! The experiment harness: regenerates every theorem-level table of the
//! reproduction (DESIGN.md §3, EXPERIMENTS.md).
//!
//! ```text
//! cargo bench -p asym-bench --bench tables                 # standard scale
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench tables
//! ASYM_BENCH_SCALE=full  cargo bench -p asym-bench --bench tables
//! ASYM_BENCH_ONLY=E14 cargo bench -p asym-bench --bench tables   # one lane
//! ```
//!
//! `ASYM_BENCH_ONLY` takes a comma-separated list of experiment ids
//! (case-insensitive) and runs just those — the CI `kv-smoke` lane uses it
//! to run the E14 KV table without paying for the full sweep. An id that
//! matches nothing is an error, not a silent no-op run.

use asym_bench::{experiments, Scale};
use std::time::Instant;

fn main() {
    // `cargo bench` passes --bench; ignore all args.
    let scale = Scale::from_env();
    let only: Option<Vec<String>> = std::env::var("ASYM_BENCH_ONLY").ok().map(|v| {
        v.split(',')
            .map(|s| s.trim().to_ascii_uppercase())
            .collect()
    });
    println!("# Sorting with Asymmetric Read and Write Costs — experiment tables");
    println!("# scale: {scale:?} (set ASYM_BENCH_SCALE=smoke|standard|full)\n");
    let overall = Instant::now();
    let mut ran = 0usize;
    for e in experiments() {
        if only
            .as_ref()
            .is_some_and(|ids| !ids.iter().any(|id| id == e.id))
        {
            continue;
        }
        ran += 1;
        let start = Instant::now();
        println!("---------------------------------------------------------------");
        println!("{} — {}", e.id, e.claim);
        println!("---------------------------------------------------------------");
        let tables = (e.run)(scale);
        for t in tables {
            println!("{t}");
        }
        println!("[{} finished in {:.1?}]\n", e.id, start.elapsed());
    }
    assert!(
        ran > 0,
        "ASYM_BENCH_ONLY={:?} matched no experiment id",
        std::env::var("ASYM_BENCH_ONLY").unwrap_or_default()
    );
    println!("{ran} experiment(s) completed in {:.1?}", overall.elapsed());
}

//! Criterion wall-clock benchmarks of the *real* (non-simulated)
//! implementations: the RAM tree sort, the threaded sample sort, and the
//! std-library sort as the reference point. The simulated-model experiments
//! live in the `tables` bench; these numbers are about implementation
//! overhead, not model costs.

use asym_core::par::par_sample_sort;
use asym_core::ram::tree_sort::tree_sort;
use asym_model::workload::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort-wallclock");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[1usize << 14, 1 << 16] {
        let input = Workload::UniformRandom.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("std-sort", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                v.sort_unstable();
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("tree-sort", n), &input, |b, input| {
            b.iter(|| tree_sort(input))
        });
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("par-sample-sort-t{threads}"), n),
                &input,
                |b, input| b.iter(|| par_sample_sort(input, threads, 7)),
            );
        }
    }
    group.finish();
}

fn bench_pq(c: &mut Criterion) {
    use asym_core::ram::pq::RamPriorityQueue;
    use asym_model::MemCounter;
    let mut group = c.benchmark_group("pq-wallclock");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let n = 1usize << 14;
    let input = Workload::UniformRandom.generate(n, 2);
    group.bench_function("ram-pq-insert-drain", |b| {
        b.iter(|| {
            let mut pq = RamPriorityQueue::new(MemCounter::new());
            for &r in &input {
                pq.insert(r);
            }
            let mut out = Vec::with_capacity(n);
            while let Some(r) = pq.delete_min() {
                out.push(r);
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_pq);
criterion_main!(benches);

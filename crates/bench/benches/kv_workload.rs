//! kv-workload — the ω-aware LSM engine end to end, wall clock plus the
//! frozen modeled counts CI gates on.
//!
//! Replays the E14 op stream (80% puts, 10% deletes, 10% gets, fixed
//! xorshift seed) through real `asym-kv` engines across the `(style, T, ω)`
//! grid. Every compaction runs as an admitted sort-service job, so the
//! measured totals — engine flush/probe I/O merged with each job's stats —
//! exercise the memtable, the fence-pointer probes, the merge scheduler,
//! and the service submit path in one number per cell.
//!
//! ```text
//! cargo bench -p asym-bench --bench kv_workload              # + BENCH_kv.json
//! cargo bench -p asym-bench --bench kv_workload -- --json out.json
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench kv_workload
//! ```
//!
//! The modeled `(reads, writes, peak_memory)` in the report are
//! deterministic (pinned seed, pinned fan-in, backend-invariant stats), so
//! the committed `BENCH_kv.json` baseline is an exact-count regression gate
//! — `bench_check` fails CI on any drift — while wall clock gets the usual
//! tolerance.

use asym_bench::e14_kv::{measure, ops_for, KvMeasurement, OMEGAS, STYLE_POINTS};
use asym_bench::json::{json_path_from_args, BenchReport};
use asym_bench::Scale;
use criterion::{BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_env();
    // Default next to README.md (cargo runs benches from the package dir).
    let default_json = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kv.json");
    let json_path = json_path_from_args(std::env::args().skip(1), default_json);
    let ops = ops_for(scale);

    // Criterion wall-clock display (min/mean/max per cell), ω=8 column only
    // — the physical schedule is ω-invariant (pinned fan-in), so timing one
    // ω keeps the bench fast without losing coverage.
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("kv-workload");
        group
            .sample_size(scale.pick(3, 5, 5))
            .warm_up_time(Duration::from_millis(scale.pick(50, 300, 300)));
        for (style, t) in STYLE_POINTS {
            let id = format!("{}-t{t}", style.name());
            group.bench_with_input(BenchmarkId::new(id, ops), &(), |b, ()| {
                b.iter(|| measure(style, t, 8, ops))
            });
        }
        group.finish();
    }

    // One clean timed run per (style, T, ω) cell feeds the JSON report.
    let mut report = BenchReport::new("kv-workload", scale.name())
        .with_backend(asym_bench::backend_from_env().name());
    for omega in OMEGAS {
        for (style, t) in STYLE_POINTS {
            let start = Instant::now();
            let m: KvMeasurement = measure(style, t, omega, ops);
            let secs = start.elapsed().as_secs_f64();
            let id = format!("kv-{}-t{t}-omega{omega}", style.name());
            report.push_with_stats(id, m.ops, secs, m.stats);
        }
    }
    report.write_to(&json_path).expect("write bench json");
    println!("wrote bench report to {}", json_path.display());
    for e in report.entries() {
        println!(
            "{:<28} {:>8} ops in {:>9.4}s  ->  {:>10.0} ops/sec  (r={}, w={})",
            e.id, e.records, e.seconds, e.records_per_sec, e.reads, e.writes
        );
    }
}

//! sim-throughput — records/sec through the `EmMachine` simulator itself.
//!
//! Where the `tables` bench measures *modeled* transfer counts, this target
//! measures how fast the simulator executes them: the arena-backed disk and
//! buffer-reusing cursors are the hot path under every experiment table, so
//! their wall-clock throughput caps the problem sizes the k/ω sweeps can
//! tabulate. Workloads:
//!
//! * `raw-stream` — stage → `EmReader` → `EmWriter` copy (pure simulator
//!   overhead, no algorithm);
//! * `e3-mergesort-k{1,4,16}` — the Algorithm 2 mergesort (exercises the
//!   flat merge queue);
//! * `e5-samplesort-k4` — the §4.2 distribution sort (exercises the bucket
//!   writers).
//!
//! ```text
//! cargo bench -p asym-bench --bench sim_throughput              # + BENCH_sim.json
//! cargo bench -p asym-bench --bench sim_throughput -- --json out.json
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench sim_throughput
//! ```
//!
//! Each run emits a `BENCH_sim.json` bench report (see `asym_bench::json`)
//! with one records/sec entry per workload, which CI uploads as an artifact
//! so the perf trajectory of the simulator is tracked per commit.

use asym_bench::json::{json_path_from_args, BenchReport};
use asym_bench::Scale;
use asym_core::sort::{self, Algorithm, SortSpec};
use asym_model::workload::Workload;
use asym_model::Record;
use criterion::{BenchmarkId, Criterion};
use em_sim::{EmConfig, EmStats, EmVec, EmWriter};
use std::time::{Duration, Instant};

/// Machine geometry shared by every workload (matches the E3 tables).
const M: usize = 64;
const B: usize = 8;
const OMEGA: u64 = 8;

/// One simulator workload: stable id, the algorithm tag for the JSON
/// report (empty for non-sort workloads), records per run, and a runner
/// that executes one full pass over a fresh machine and returns its modeled
/// transfer stats (identical across backends by construction — the JSON
/// report freezes them so CI can diff against the committed baseline).
struct Case {
    id: &'static str,
    algorithm: &'static str,
    n: usize,
    run: Box<dyn Fn() -> EmStats>,
}

fn cases(scale: Scale) -> Vec<Case> {
    let n_raw = scale.pick(100_000usize, 2_000_000, 10_000_000);
    let n_sort = scale.pick(20_000usize, 200_000, 1_000_000);
    let mut cases = vec![raw_stream_case(n_raw)];
    for k in [1usize, 4, 16] {
        cases.push(mergesort_case(k, n_sort));
    }
    cases.push(samplesort_case(4, n_sort));
    cases
}

/// Stage n records and stream them reader → writer: the pure cursor path.
fn raw_stream_case(n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0x5EED);
    Case {
        id: "raw-stream",
        algorithm: "",
        n,
        run: Box::new(move || {
            let em = asym_bench::machine(EmConfig::new(M, B, OMEGA));
            let v = EmVec::stage(&em, &input);
            let mut w = EmWriter::new(&em).expect("writer lease");
            let mut r = v.reader(&em).expect("reader lease");
            while let Some(x) = r.next() {
                w.push(x);
            }
            drop(r);
            let out = w.finish();
            assert_eq!(out.len(), n);
            em.stats()
        }),
    }
}

/// The job description a sort case runs (backend from `ASYM_BENCH_BACKEND`,
/// seed matching the workload's so the splitter schedule is frozen).
fn sort_spec(algorithm: Algorithm, k: usize, seed: u64) -> SortSpec {
    asym_bench::sort_spec(algorithm, M, B, OMEGA, k, seed)
}

fn mergesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE3);
    let id: &'static str = match k {
        1 => "e3-mergesort-k1",
        4 => "e3-mergesort-k4",
        16 => "e3-mergesort-k16",
        _ => unreachable!("fixed k sweep"),
    };
    let spec = sort_spec(Algorithm::Mergesort, k, 0xE3);
    Case {
        id,
        algorithm: Algorithm::Mergesort.name(),
        n,
        run: Box::new(move || {
            let outcome = sort::run(&spec, &input).expect("mergesort");
            assert_eq!(outcome.output.len(), n);
            outcome.stats
        }),
    }
}

fn samplesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE5);
    let spec = sort_spec(Algorithm::Samplesort, k, 0xE5);
    Case {
        id: "e5-samplesort-k4",
        algorithm: Algorithm::Samplesort.name(),
        n,
        run: Box::new(move || {
            let outcome = sort::run(&spec, &input).expect("samplesort");
            assert_eq!(outcome.output.len(), n);
            outcome.stats
        }),
    }
}

fn main() {
    let scale = Scale::from_env();
    // Default to the workspace root (cargo runs benches from the package
    // dir), so `BENCH_sim.json` lands next to README.md unless overridden.
    let default_json = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let json_path = json_path_from_args(std::env::args().skip(1), default_json);
    let cases = cases(scale);

    // Criterion wall-clock display (min/mean/max per run).
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("sim-throughput");
        group
            .sample_size(scale.pick(3, 5, 5))
            .warm_up_time(Duration::from_millis(scale.pick(50, 300, 300)));
        for case in &cases {
            group.bench_with_input(BenchmarkId::new(case.id, case.n), &(), |b, ()| {
                b.iter(|| (case.run)())
            });
        }
        group.finish();
    }

    // One clean timed run per workload feeds the JSON report. The modeled
    // stats ride along so the CI regression gate can pin them exactly.
    let mut report = BenchReport::new("sim-throughput", scale.name())
        .with_backend(asym_bench::backend_from_env().name());
    for case in &cases {
        let start = Instant::now();
        let stats = (case.run)();
        let secs = start.elapsed().as_secs_f64();
        report.push_sort(case.id, case.algorithm, case.n as u64, secs, stats);
    }
    report.write_to(&json_path).expect("write bench json");
    println!("wrote bench report to {}", json_path.display());
    for e in report.entries() {
        println!(
            "{:<18} {:>10} records in {:>9.4}s  ->  {:>12.0} records/sec",
            e.id, e.records, e.seconds, e.records_per_sec
        );
    }
}

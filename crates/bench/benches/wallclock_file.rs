//! wallclock_file — wall-clock parity of the file-backed block device.
//!
//! The AEM model charges `1` per block read and `ω` per block write because
//! NVM-class devices behave that way. Every modeled experiment in this repo
//! runs the same transfer schedule regardless of backend — this bench runs
//! E3 (mergesort) and E5 (sample sort) on **both** the in-memory slab and
//! the file-backed [`em_sim::FileStore`], and prints measured seconds next
//! to the modeled `reads + ω·writes` charge, so the cost/time correlation
//! the paper predicts becomes an observable artifact:
//!
//! * across backends, modeled `(reads, writes)` are asserted identical
//!   (costs are backend-independent by construction);
//! * within the file backend, wall-clock time scales with the number of
//!   block transfers — the `sec/kio` column (seconds per thousand unit
//!   charges) should be roughly flat across workloads on one device.
//!
//! ```text
//! cargo bench -p asym-bench --bench wallclock_file
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench wallclock_file
//! cargo bench -p asym-bench --bench wallclock_file -- --json out.json
//! ```
//!
//! The optional JSON report (default `BENCH_wallclock_file.json`, not
//! committed) uses the same schema as `BENCH_sim.json`, tagged
//! `backend: "file"`, so runs can be diffed across machines.

use asym_bench::json::{json_path_from_args, BenchReport};
use asym_bench::Scale;
use asym_core::em::mergesort::mergesort_slack;
use asym_core::em::samplesort::samplesort_slack;
use asym_core::em::{aem_mergesort, aem_samplesort};
use asym_model::record::assert_sorted_permutation;
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{Backend, EmConfig, EmMachine, EmStats, EmVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Machine geometry shared by every workload (matches the E3 tables).
const M: usize = 64;
const B: usize = 8;
const OMEGA: u64 = 8;

/// One workload: a stable id and a runner returning the run's modeled stats
/// plus the measured seconds for the given backend. The runner times **only
/// the sort itself** — staging the input (uncharged setup) and the
/// correctness oracle (uncharged read-back + O(n log n) permutation check)
/// stay outside the timed window, so `seconds` covers exactly the modeled
/// transfer schedule that `reads + ω·writes` charges.
struct Case {
    id: &'static str,
    n: usize,
    run: Box<dyn Fn(Backend) -> (EmStats, f64)>,
}

fn mergesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE3);
    let id: &'static str = match k {
        1 => "e3-mergesort-k1",
        8 => "e3-mergesort-k8",
        _ => unreachable!("fixed k sweep"),
    };
    Case {
        id,
        n,
        run: Box::new(move |backend| {
            let cfg = EmConfig::new(M, B, OMEGA).with_slack(mergesort_slack(M, B, k));
            let em = EmMachine::with_backend(cfg, backend).expect("machine");
            let v = EmVec::stage(&em, &input);
            let start = Instant::now();
            let sorted = aem_mergesort(&em, v, k).expect("mergesort");
            let seconds = start.elapsed().as_secs_f64();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            (em.stats(), seconds)
        }),
    }
}

fn samplesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE5);
    Case {
        id: "e5-samplesort-k4",
        n,
        run: Box::new(move |backend| {
            let cfg = EmConfig::new(M, B, OMEGA).with_slack(samplesort_slack(M, B, k));
            let em = EmMachine::with_backend(cfg, backend).expect("machine");
            let v = EmVec::stage(&em, &input);
            let mut rng = StdRng::seed_from_u64(0xE5);
            let start = Instant::now();
            let sorted = aem_samplesort(&em, v, k, &mut rng).expect("samplesort");
            let seconds = start.elapsed().as_secs_f64();
            assert_sorted_permutation(&input, &sorted.read_all_uncharged(&em));
            (em.stats(), seconds)
        }),
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(10_000usize, 100_000, 400_000);
    let cases = [
        mergesort_case(1, n),
        mergesort_case(8, n),
        samplesort_case(4, n),
    ];

    let mut table = Table::new(
        format!(
            "wallclock_file: measured seconds vs modeled cost (M={M}, B={B}, omega={OMEGA}, n={n})"
        ),
        &[
            "workload",
            "backend",
            "reads",
            "writes",
            "cost R+wW",
            "seconds",
            "us/io",
            "file/mem",
        ],
    );
    let default_json = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wallclock_file.json"
    );
    let json_path = json_path_from_args(std::env::args().skip(1), default_json);
    let mut report = BenchReport::new("wallclock-file", scale.name()).with_backend("file");

    for case in &cases {
        let mut seconds = [0.0f64; 2];
        let mut stats = [EmStats::default(); 2];
        for (i, backend) in [Backend::Mem, Backend::File].into_iter().enumerate() {
            (stats[i], seconds[i]) = (case.run)(backend);
        }
        assert_eq!(
            stats[0], stats[1],
            "{}: modeled costs must not depend on the backend",
            case.id
        );
        let cost = stats[1].block_reads + OMEGA * stats[1].block_writes;
        for (i, backend) in [Backend::Mem, Backend::File].into_iter().enumerate() {
            table.row(&[
                case.id.into(),
                backend.name().into(),
                stats[i].block_reads.to_string(),
                stats[i].block_writes.to_string(),
                cost.to_string(),
                format!("{:.4}", seconds[i]),
                f2(seconds[i] * 1e6 / cost as f64),
                if backend == Backend::File {
                    f2(seconds[1] / seconds[0])
                } else {
                    "1.00".into()
                },
            ]);
        }
        report.push_with_stats(case.id, case.n as u64, seconds[1], stats[1]);
    }
    table.note("modeled (reads, writes) asserted identical across backends");
    table.note(
        "us/io = microseconds per unit of modeled charge; flat-ish across workloads on one device",
    );
    table
        .note("file/mem = wall-clock slowdown of real I/O vs the slab arena at equal modeled cost");
    print!("{table}");

    report.write_to(&json_path).expect("write bench json");
    println!("wrote bench report to {}", json_path.display());
}

//! wallclock_file — wall-clock parity of the file-backed block device.
//!
//! The AEM model charges `1` per block read and `ω` per block write because
//! NVM-class devices behave that way. Every modeled experiment in this repo
//! runs the same transfer schedule regardless of backend — this bench runs
//! E3 (mergesort) and E5 (sample sort) on **both** the in-memory slab and
//! the file-backed [`em_sim::FileStore`], and prints measured seconds next
//! to the modeled `reads + ω·writes` charge, so the cost/time correlation
//! the paper predicts becomes an observable artifact:
//!
//! * across backends, modeled `(reads, writes)` are asserted identical
//!   (costs are backend-independent by construction);
//! * within the file backend, wall-clock time scales with the number of
//!   block transfers — the `sec/kio` column (seconds per thousand unit
//!   charges) should be roughly flat across workloads on one device.
//!
//! ```text
//! cargo bench -p asym-bench --bench wallclock_file
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench wallclock_file
//! cargo bench -p asym-bench --bench wallclock_file -- --json out.json
//! ```
//!
//! The optional JSON report (default `BENCH_wallclock_file.json`, not
//! committed) uses the same schema as `BENCH_sim.json`, tagged
//! `backend: "file"`, so runs can be diffed across machines.

use asym_bench::json::{json_path_from_args, BenchReport};
use asym_bench::Scale;
use asym_core::sort::{self, Algorithm, SortSpec};
use asym_model::record::assert_sorted_permutation;
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{Backend, EmStats};
use std::time::Instant;

/// Machine geometry shared by every workload (matches the E3 tables).
const M: usize = 64;
const B: usize = 8;
const OMEGA: u64 = 8;

/// One workload: a stable id, the algorithm tag for the JSON report, and a
/// runner returning the run's modeled stats plus the measured seconds for
/// the given backend. The runner times the whole unified-API job — machine
/// construction, uncharged staging, the modeled transfer schedule, and the
/// uncharged gather. On the file backend the uncharged staging and gather
/// are real device I/O too (~2·n/B transfers on top of the modeled
/// schedule), so `seconds`, `us/io`, and `file/mem` measure the *job*, not
/// the modeled schedule alone — they overstate the per-modeled-transfer
/// device cost by that bounded fraction. The job shape is identical on
/// both backends, so ratios remain comparable across workloads and
/// commits; they are no longer a pure device-latency isolate.
struct Case {
    id: &'static str,
    algorithm: &'static str,
    n: usize,
    run: Box<dyn Fn(Backend) -> (EmStats, f64)>,
}

/// One timed registry run of `spec` over `input`.
fn timed_run(spec: &SortSpec, input: &[Record]) -> (EmStats, f64) {
    let start = Instant::now();
    let outcome = sort::run(spec, input).expect("sort");
    let seconds = start.elapsed().as_secs_f64();
    assert_sorted_permutation(input, &outcome.output);
    (outcome.stats, seconds)
}

fn spec_for(algorithm: Algorithm, k: usize, seed: u64, backend: Backend) -> SortSpec {
    SortSpec::builder(algorithm, M, B, OMEGA)
        .k(k)
        .seed(seed)
        .backend(backend)
        .build()
        .unwrap_or_else(|e| panic!("bench spec: {e}"))
}

fn mergesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE3);
    let id: &'static str = match k {
        1 => "e3-mergesort-k1",
        8 => "e3-mergesort-k8",
        _ => unreachable!("fixed k sweep"),
    };
    Case {
        id,
        algorithm: Algorithm::Mergesort.name(),
        n,
        run: Box::new(move |backend| {
            timed_run(&spec_for(Algorithm::Mergesort, k, 0xE3, backend), &input)
        }),
    }
}

fn samplesort_case(k: usize, n: usize) -> Case {
    let input: Vec<Record> = Workload::UniformRandom.generate(n, 0xE5);
    Case {
        id: "e5-samplesort-k4",
        algorithm: Algorithm::Samplesort.name(),
        n,
        run: Box::new(move |backend| {
            timed_run(&spec_for(Algorithm::Samplesort, k, 0xE5, backend), &input)
        }),
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(10_000usize, 100_000, 400_000);
    let cases = [
        mergesort_case(1, n),
        mergesort_case(8, n),
        samplesort_case(4, n),
    ];

    let mut table = Table::new(
        format!(
            "wallclock_file: measured seconds vs modeled cost (M={M}, B={B}, omega={OMEGA}, n={n})"
        ),
        &[
            "workload",
            "backend",
            "reads",
            "writes",
            "cost R+wW",
            "seconds",
            "us/io",
            "file/mem",
        ],
    );
    let default_json = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wallclock_file.json"
    );
    let json_path = json_path_from_args(std::env::args().skip(1), default_json);
    let mut report = BenchReport::new("wallclock-file", scale.name()).with_backend("file");

    for case in &cases {
        let mut seconds = [0.0f64; 2];
        let mut stats = [EmStats::default(); 2];
        for (i, backend) in [Backend::Mem, Backend::File].into_iter().enumerate() {
            (stats[i], seconds[i]) = (case.run)(backend);
        }
        assert_eq!(
            stats[0], stats[1],
            "{}: modeled costs must not depend on the backend",
            case.id
        );
        let cost = stats[1].block_reads + OMEGA * stats[1].block_writes;
        for (i, backend) in [Backend::Mem, Backend::File].into_iter().enumerate() {
            table.row(&[
                case.id.into(),
                backend.name().into(),
                stats[i].block_reads.to_string(),
                stats[i].block_writes.to_string(),
                cost.to_string(),
                format!("{:.4}", seconds[i]),
                f2(seconds[i] * 1e6 / cost as f64),
                if backend == Backend::File {
                    f2(seconds[1] / seconds[0])
                } else {
                    "1.00".into()
                },
            ]);
        }
        report.push_sort(case.id, case.algorithm, case.n as u64, seconds[1], stats[1]);
    }
    table.note("modeled (reads, writes) asserted identical across backends");
    table
        .note("us/io = microseconds of whole-job time per unit of modeled charge; flat-ish across");
    table.note(
        "workloads on one device (the job includes uncharged staging/gather, ~2n/B transfers)",
    );
    table.note("file/mem = wall-clock slowdown of the full file-backed job vs the slab arena");
    print!("{table}");

    report.write_to(&json_path).expect("write bench json");
    println!("wrote bench report to {}", json_path.display());
}

//! par-sort — throughput and modeled costs of the parallel AEM sample sort
//! across the lane sweep.
//!
//! One entry per (lanes, ω) configuration of experiment E13. The modeled
//! `(reads, writes, peak_memory)` ride along in the JSON report, so the CI
//! gate pins two things at once: the transfer schedule itself (any drift is
//! a model regression) and — because every lane count must report the same
//! write total as the one-lane serial schedule — the work-preservation
//! invariant of the parallel execution spine.
//!
//! ```text
//! cargo bench -p asym-bench --bench par_sort                 # + BENCH_par.json
//! cargo bench -p asym-bench --bench par_sort -- --json out.json
//! ASYM_BENCH_SCALE=smoke cargo bench -p asym-bench --bench par_sort
//! ```
//!
//! `ASYM_BENCH_BACKEND` selects the lanes' block stores (`mem` or `file`);
//! `ASYM_BENCH_THREADS` caps the lane sweep (the CI thread matrix).

use asym_bench::e13_par_sort;
use asym_bench::json::{json_path_from_args, BenchReport};
use asym_bench::Scale;
use asym_core::sort::Algorithm;
use criterion::{BenchmarkId, Criterion};
use std::time::{Duration, Instant};

/// The ω sweep: the write-asymmetric half of the E13 grid (the table also
/// tabulates ω ∈ {1, 2}; the JSON gate pins the costlier configurations).
const OMEGAS: [u64; 2] = [8, 32];

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let default_json = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    let json_path = json_path_from_args(std::env::args().skip(1), default_json);
    let lanes = e13_par_sort::lane_counts();
    // The input is generated once and each configuration's spec is built
    // before its timer starts. The steal-charging knob stays off here so
    // every lane count reports the same write total and the committed
    // baseline keeps re-proving work preservation on every CI run. Machine
    // construction happens inside the adapter, i.e. inside the timed
    // window: on the default mem backend (where the committed baseline and
    // the CI gate run) a fresh lane bank is a few arena headers, far below
    // the timer's noise floor; on ASYM_BENCH_BACKEND=file it additionally
    // creates one temp file per lane per run, so file-matrix numbers are
    // job-level timings (consistent with wallclock_file), not pure sort
    // kernels.
    let input = e13_par_sort::input_for(n);

    // Criterion wall-clock display (min/mean/max per configuration).
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("par-sort");
        group
            .sample_size(scale.pick(3, 5, 5))
            .warm_up_time(Duration::from_millis(scale.pick(50, 300, 300)));
        for &omega in &OMEGAS {
            for &p in &lanes {
                let spec = e13_par_sort::spec(omega, p, false);
                group.bench_with_input(
                    BenchmarkId::new(format!("e13-par-sort-w{omega}-l{p}"), n),
                    &(),
                    |b, ()| b.iter(|| e13_par_sort::run_spec(&spec, &input)),
                );
            }
        }
        group.finish();
    }

    // One clean timed run per configuration feeds the JSON report; modeled
    // stats ride along so the CI regression gate can pin them exactly.
    let mut report = BenchReport::new("par-sort", scale.name())
        .with_backend(asym_bench::backend_from_env().name());
    for &omega in &OMEGAS {
        for &p in &lanes {
            let spec = e13_par_sort::spec(omega, p, false);
            let start = Instant::now();
            let outcome = e13_par_sort::run_spec(&spec, &input);
            let secs = start.elapsed().as_secs_f64();
            report.push_sort(
                format!("e13-par-sort-w{omega}-l{p}"),
                Algorithm::ParSamplesort.name(),
                n as u64,
                secs,
                outcome.stats,
            );
        }
    }
    report.write_to(&json_path).expect("write bench json");
    println!("wrote bench report to {}", json_path.display());
    for e in report.entries() {
        println!(
            "{:<22} {:>10} records in {:>9.4}s  ->  {:>12.0} records/sec  (reads={}, writes={})",
            e.id, e.records, e.seconds, e.records_per_sec, e.reads, e.writes
        );
    }
}

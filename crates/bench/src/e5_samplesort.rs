//! E5 — Theorem 4.5: the AEM sample sort matches the mergesort's
//! asymptotics: O(kn/B · levels) reads, O(n/B · levels) writes. The table
//! mirrors E3's sweep and cross-checks the two algorithms' totals.

use crate::Scale;
use asym_core::em::{aem_mergesort, aem_samplesort, mergesort_slack, samplesort_slack};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmVec};
use rand::SeedableRng;

/// Run E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (64usize, 8usize);
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let input = Workload::UniformRandom.generate(n, 0xE5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE5);

    let mut t = Table::new(
        format!("E5: AEM sample sort vs mergesort (M={m}, B={b}, n={n})"),
        &[
            "omega",
            "k",
            "smp reads",
            "smp writes",
            "smp cost",
            "mrg cost",
            "smp/mrg",
            "vs classic",
        ],
    );
    for omega in [8u64, 16] {
        let mut classic = 0u64;
        for k in [1usize, 2, 4, 8] {
            let em =
                crate::machine(EmConfig::new(m, b, omega).with_slack(samplesort_slack(m, b, k)));
            let v = EmVec::stage(&em, &input);
            let sorted = aem_samplesort(&em, v, k, &mut rng).expect("sample sort");
            assert_eq!(sorted.len(), n);
            let s = em.stats();
            let smp_cost = em.io_cost();

            let em2 =
                crate::machine(EmConfig::new(m, b, omega).with_slack(mergesort_slack(m, b, k)));
            let v2 = EmVec::stage(&em2, &input);
            aem_mergesort(&em2, v2, k).expect("mergesort");
            let mrg_cost = em2.io_cost();

            if k == 1 {
                classic = smp_cost;
            }
            t.row(&[
                omega.to_string(),
                k.to_string(),
                s.block_reads.to_string(),
                s.block_writes.to_string(),
                smp_cost.to_string(),
                mrg_cost.to_string(),
                f2(smp_cost as f64 / mrg_cost as f64),
                f2(classic as f64 / smp_cost as f64),
            ]);
        }
    }
    t.note("smp/mrg stays O(1) across k: the two sorts share their asymptotics");
    vec![t]
}

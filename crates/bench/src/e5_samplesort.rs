//! E5 — Theorem 4.5: the AEM sample sort matches the mergesort's
//! asymptotics: O(kn/B · levels) reads, O(n/B · levels) writes. The table
//! mirrors E3's sweep and cross-checks the two algorithms' totals — both
//! now enumerated generically through the sorter registry rather than two
//! hard-coded call sites.

use crate::Scale;
use asym_core::sort::Algorithm;
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use asym_model::Record;

/// One registry run at the E5 geometry; returns (reads, writes, cost).
fn measure(algorithm: Algorithm, omega: u64, k: usize, input: &[Record]) -> (u64, u64, u64) {
    crate::measure_sort(&crate::sort_spec(algorithm, 64, 8, omega, k, 0xE5), input)
}

/// Run E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (64usize, 8usize);
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let input = Workload::UniformRandom.generate(n, 0xE5);

    let mut t = Table::new(
        format!("E5: AEM sample sort vs mergesort (M={m}, B={b}, n={n})"),
        &[
            "omega",
            "k",
            "smp reads",
            "smp writes",
            "smp cost",
            "mrg cost",
            "smp/mrg",
            "vs classic",
        ],
    );
    for omega in [8u64, 16] {
        let mut classic = 0u64;
        for k in [1usize, 2, 4, 8] {
            let (r, w, smp_cost) = measure(Algorithm::Samplesort, omega, k, &input);
            let (_, _, mrg_cost) = measure(Algorithm::Mergesort, omega, k, &input);
            if k == 1 {
                classic = smp_cost;
            }
            t.row(&[
                omega.to_string(),
                k.to_string(),
                r.to_string(),
                w.to_string(),
                smp_cost.to_string(),
                mrg_cost.to_string(),
                f2(smp_cost as f64 / mrg_cost as f64),
                f2(classic as f64 / smp_cost as f64),
            ]);
        }
    }
    t.note("smp/mrg stays O(1) across k: the two sorts share their asymptotics");
    t.note("splitter sampling reseeds per run (seed 0xE5), so every cell is reproducible alone");
    vec![t]
}

//! E3 — Theorem 4.3, Corollary 4.4 and Appendix A: the AEM mergesort's
//! measured transfers against the closed-form bounds, and the k sweep
//! showing the improvement region k/log k < ω/log(M/B) with its crossover.
//!
//! Runs go through the unified job API (`SortSpec` + the registry), so the
//! storage backend arrives via `SortSpec::from_env` like every consumer;
//! the pointer-placement ablation keeps its dedicated engine entry point
//! (`aem_mergesort_opts`), which the adapter wraps with default options.

use crate::Scale;
use asym_core::em::mergesort::{aem_mergesort_opts, mergesort_slack, MergeOpts};
use asym_core::sort::Algorithm;
use asym_model::stats::ceil_log_base;
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmVec};

/// Run one sort, returning (reads, writes, cost).
fn measure(
    m: usize,
    b: usize,
    omega: u64,
    k: usize,
    input: &[asym_model::Record],
) -> (u64, u64, u64) {
    let spec = crate::sort_spec(Algorithm::Mergesort, m, b, omega, k, 0xE3);
    crate::measure_sort(&spec, input)
}

/// Run E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (64usize, 8usize);
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let input = Workload::UniformRandom.generate(n, 0xE3);
    let blocks = n.div_ceil(b) as u64;

    // Table 1: Theorem 4.3 bound check at omega = 8.
    let omega = 8u64;
    let mut bounds = Table::new(
        format!("E3a: Theorem 4.3 bounds (M={m}, B={b}, n={n}, omega={omega})"),
        &[
            "k",
            "levels",
            "reads",
            "bound (k+1)(n/B)L",
            "writes",
            "bound (n/B)L",
            "reads/bound",
            "writes/bound",
        ],
    );
    for k in [1usize, 2, 4, 8] {
        let (r, w, _) = measure(m, b, omega, k, &input);
        let levels = ceil_log_base((k * m) as f64 / b as f64, blocks as f64);
        let rb = (k as u64 + 1) * blocks * levels;
        let wb = blocks * levels;
        bounds.row(&[
            k.to_string(),
            levels.to_string(),
            r.to_string(),
            rb.to_string(),
            w.to_string(),
            wb.to_string(),
            f2(r as f64 / rb as f64),
            f2(w as f64 / wb as f64),
        ]);
    }
    bounds.note("every measured count is <= its bound (ratios <= 1)");

    // Table 2: the Corollary 4.4 / Appendix A sweep across omega.
    let mut sweep = Table::new(
        format!("E3b: I/O cost R + omega*W vs k (M={m}, B={b}, n={n})"),
        &[
            "omega",
            "k",
            "reads",
            "writes",
            "cost",
            "vs classic",
            "in Cor4.4 region",
        ],
    );
    for omega in [4u64, 8, 16] {
        let classic = measure(m, b, omega, 1, &input).2;
        let threshold = omega as f64 / ((m / b) as f64).log2();
        for k in [1usize, 2, 4, 8, 16] {
            let (r, w, cost) = measure(m, b, omega, k, &input);
            let in_region = k == 1 || (k as f64) / (k as f64).log2() < threshold;
            sweep.row(&[
                omega.to_string(),
                k.to_string(),
                r.to_string(),
                w.to_string(),
                cost.to_string(),
                f2(classic as f64 / cost as f64),
                if in_region { "yes".into() } else { "no".into() },
            ]);
        }
    }
    sweep.note("'vs classic' > 1 marks k values beating the classic EM mergesort (k=1)");
    sweep.note("the winning k values sit inside the k/log k < omega/log(M/B) region");

    // Table 3: ablation — run pointers kept in secondary memory (the remark
    // after Lemma 4.1: "this will double the number of writes"). The
    // ablation knob lives on the engine, not the job spec, so this table
    // drives `aem_mergesort_opts` directly.
    let mut ablation = Table::new(
        format!("E3c: pointer-placement ablation (M={m}, B={b}, n={n}, omega=8)"),
        &[
            "k",
            "writes (ptrs in memory)",
            "writes (ptrs on disk)",
            "ratio",
        ],
    );
    for k in [2usize, 4, 8] {
        let (_, w_mem, _) = measure(m, b, 8, k, &input);
        let em = crate::machine(EmConfig::new(m, b, 8).with_slack(mergesort_slack(m, b, k)));
        let v = EmVec::stage(&em, &input);
        aem_mergesort_opts(
            &em,
            v,
            k,
            MergeOpts {
                pointers_on_disk: true,
            },
        )
        .expect("sort");
        let w_disk = em.stats().block_writes;
        ablation.row(&[
            k.to_string(),
            w_mem.to_string(),
            w_disk.to_string(),
            f2(w_disk as f64 / w_mem as f64),
        ]);
    }
    ablation.note("ratio ≈ 2, matching the paper's 'double the number of writes' remark");
    vec![bounds, sweep, ablation]
}

//! E10 — Theorem 5.2: the EM blocked matrix multiply does O(n³/(B√M))
//! reads but only O(n²/B) writes (each output tile written once).

use crate::Scale;
use asym_core::co::matmul::{mm_em_blocked, mm_naive};
use asym_model::table::{f2, Table};
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};
use rand::{Rng, SeedableRng};

/// Run E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (2048usize, 16usize);
    // Block-aligned tile dividing every n below (3 tiles of 16² cells = 768
    // cells resident, within M); misaligned tiles would double-write the
    // straddled C blocks.
    let tile = 16usize;
    let mut t = Table::new(
        format!("E10: EM blocked matmul (M={m} cells, B={b}, tile={tile}, omega=16)"),
        &[
            "n",
            "algorithm",
            "loads",
            "writebacks",
            "reads/(n^3/(B sqrt M))",
            "writes/(n^2/B)",
        ],
    );
    let sizes: &[usize] = match scale {
        Scale::Smoke => &[48],
        Scale::Standard => &[48, 96, 144],
        Scale::Full => &[48, 96, 144, 192],
    };
    for &n in sizes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let a_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let run = |blocked: bool| {
            let cfg = CacheConfig::new(m, b, 16);
            let tr = Tracker::new(cfg, PolicyChoice::Lru);
            let am = SimArray::from_vec(&tr, a_host.clone());
            let bm = SimArray::from_vec(&tr, b_host.clone());
            let mut cm = SimArray::filled(&tr, n * n, 0.0);
            if blocked {
                mm_em_blocked(&am, &bm, &mut cm, n, tile);
            } else {
                mm_naive(&am, &bm, &mut cm, n);
            }
            tr.flush();
            tr.stats()
        };
        let nf = n as f64;
        let read_unit = nf.powi(3) / (b as f64 * (m as f64).sqrt());
        let write_unit = nf * nf / b as f64;
        for (name, blocked) in [("naive", false), ("em-blocked", true)] {
            let s = run(blocked);
            t.row(&[
                n.to_string(),
                name.into(),
                s.loads.to_string(),
                s.writebacks.to_string(),
                f2(s.loads as f64 / read_unit),
                f2(s.writebacks as f64 / write_unit),
            ]);
        }
    }
    t.note("blocked: reads/(n^3/(B sqrt M)) and writes/(n^2/B) are flat constants (Thm 5.2)");
    t.note("naive: the read column explodes because B-column access thrashes");
    vec![t]
}

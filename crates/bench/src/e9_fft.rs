//! E9 — §5.2: the asymmetric six-step FFT does O((ωn/B)·log_{ωM}(ωn)) reads
//! and O((n/B)·log_{ωM}(ωn)) writes versus the standard cache-oblivious
//! FFT's O((n/B)·log_M n) of each.

use crate::Scale;
use asym_core::co::{fft, Cplx, FftVariant};
use asym_model::table::{f2, Table};
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};

/// Run E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (256usize, 8usize);
    let base = 64usize;
    let mut t = Table::new(
        format!("E9: six-step FFT I/O (M={m} cells, B={b}, base={base}, LRU)"),
        &[
            "n",
            "variant",
            "omega",
            "loads",
            "writebacks",
            "cost",
            "write saving",
        ],
    );
    let max_exp = scale.pick(12u32, 16, 18);
    for e in (12..=max_exp).step_by(2) {
        let n = 1usize << e;
        let sig: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let run = |variant: FftVariant, omega: usize| {
            let cfg = CacheConfig::new(m, b, omega as u64);
            let tr = Tracker::new(cfg, PolicyChoice::Lru);
            let mut a = SimArray::from_vec(&tr, sig.clone());
            fft(&mut a, 0, n, variant, omega, base);
            tr.flush();
            tr.stats()
        };
        let std = run(FftVariant::Standard, 1);
        t.row(&[
            n.to_string(),
            "standard".into(),
            "1".into(),
            std.loads.to_string(),
            std.writebacks.to_string(),
            std.cost(1).to_string(),
            "1.00".into(),
        ]);
        for omega in [4usize, 16] {
            let asym = run(FftVariant::Asymmetric, omega);
            t.row(&[
                n.to_string(),
                "asymmetric".into(),
                omega.to_string(),
                asym.loads.to_string(),
                asym.writebacks.to_string(),
                asym.cost(omega as u64).to_string(),
                f2(std.writebacks as f64 / asym.writebacks.max(1) as f64),
            ]);
        }
    }
    t.note("write saving = standard writebacks / asymmetric writebacks at the same n");
    t.note("the saving tracks the level-count ratio log_M(n) / log_{omega*M}(omega*n):");
    t.note("below the crossover (small n/M, equal level counts) the asymmetric variant's");
    t.note("extra row-decomposition passes make it LOSE — exactly what the theory predicts");
    vec![t]
}

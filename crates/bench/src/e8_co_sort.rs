//! E8 — Theorem 5.1 + Figure 1: the low-depth cache-oblivious sort does
//! O((ωn/B)·log_{ωM}(ωn)) reads and O((n/B)·log_{ωM}(ωn)) writes. Baselines:
//! the same algorithm at ω = 1 (the original BGS sort) and the classic
//! cache-oblivious mergesort. The Figure-1 table reports the measured stage
//! shape (√(nω) subarrays → √(n/ω) buckets → ω sub-buckets).

use crate::Scale;
use asym_core::co::{co_asym_sort, co_mergesort};
use asym_model::stats::log_base;
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};

/// Run E8.
pub fn run(scale: Scale) -> Vec<Table> {
    // A small cache makes the level counts genuinely differ across omega
    // (with M large relative to n both variants need the same number of
    // levels and the write counts tie).
    let (m, b) = (256usize, 16usize);
    let base = 128usize; // host-sort threshold, < M
    let n = 1usize << scale.pick(13u32, 16, 18);
    let input = Workload::UniformRandom.generate(n, 0xE8);

    let mut cost_table = Table::new(
        format!("E8a: CO sort I/O vs omega (M={m} cells, B={b}, n={n}, LRU)"),
        &[
            "algorithm",
            "omega",
            "loads",
            "writebacks",
            "cost",
            "BGS cost @ same omega",
            "saving",
            "writes/(n/B)/levels",
        ],
    );
    let run_sort = |omega: usize| {
        let cfg = CacheConfig::new(m, b, omega as u64);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, input.clone());
        let tel = co_asym_sort(&mut a, 0, n, omega, base);
        t.flush();
        assert!(a.peek_slice().windows(2).all(|w| w[0] <= w[1]));
        (t.stats(), tel)
    };
    let (bgs, bgs_tel) = run_sort(1);
    let mut tel_rows: Vec<(usize, asym_core::co::CoSortTelemetry)> = vec![(1, bgs_tel)];
    {
        let levels = log_base(m as f64, n as f64).max(1.0);
        cost_table.row(&[
            "BGS (baseline)".into(),
            "1".into(),
            bgs.loads.to_string(),
            bgs.writebacks.to_string(),
            bgs.cost(1).to_string(),
            bgs.cost(1).to_string(),
            "1.00".into(),
            f2(bgs.writebacks as f64 / (n as f64 / b as f64) / levels),
        ]);
    }
    for omega in [2usize, 4, 8, 16] {
        let (s, tel) = run_sort(omega);
        let levels = log_base((omega * m) as f64, (omega * n) as f64).max(1.0);
        let bgs_cost_here = bgs.loads + omega as u64 * bgs.writebacks;
        cost_table.row(&[
            "asymmetric".into(),
            omega.to_string(),
            s.loads.to_string(),
            s.writebacks.to_string(),
            s.cost(omega as u64).to_string(),
            bgs_cost_here.to_string(),
            f2(bgs_cost_here as f64 / s.cost(omega as u64) as f64),
            f2(s.writebacks as f64 / (n as f64 / b as f64) / levels),
        ]);
        tel_rows.push((omega, tel));
    }
    {
        let cfg = CacheConfig::new(m, b, 1);
        let t = Tracker::new(cfg, PolicyChoice::Lru);
        let mut a = SimArray::from_vec(&t, input.clone());
        co_mergesort(&mut a, 0, n);
        t.flush();
        let s = t.stats();
        cost_table.row(&[
            "co-mergesort".into(),
            "1".into(),
            s.loads.to_string(),
            s.writebacks.to_string(),
            s.cost(1).to_string(),
            "-".into(),
            "-".into(),
            f2(log_base(2.0, n as f64 / m as f64).max(1.0)),
        ]);
    }
    cost_table.note("writebacks shrink as omega grows (fewer levels); loads grow ~omega");
    cost_table.note("'saving' > 1: the omega-aware sort beats BGS under that omega's cost");
    cost_table.note("writes/(n/B)/levels ~ constant = the Theorem 5.1 write bound shape");

    let mut fig1 = Table::new(
        format!("E8b: Figure 1 stage shape at n={n}"),
        &[
            "omega",
            "subarrays (≈√(nω))",
            "buckets (≈√(n/ω))",
            "max bucket",
            "bucket bound 2√(nω)lg n",
            "max sub-bucket",
            "sub-bucket bound",
        ],
    );
    for (omega, tel) in tel_rows {
        let nf = n as f64;
        let b_bound = 2.0 * (nf * omega as f64).sqrt() * nf.log2();
        let s_bound = 4.0 * (nf / omega as f64).sqrt() * nf.log2();
        fig1.row(&[
            omega.to_string(),
            tel.subarrays.to_string(),
            tel.buckets.to_string(),
            tel.max_bucket.to_string(),
            (b_bound as u64).to_string(),
            tel.max_sub_bucket.to_string(),
            (s_bound as u64).to_string(),
        ]);
    }
    fig1.note("measured stage widths track the Figure 1 geometry; bounds hold w.h.p.");
    vec![cost_table, fig1]
}

//! E6 — Theorems 4.7 / 4.10: the buffer-tree priority queue supports
//! inserts and delete-mins at amortized O((k/B)(1 + log_{kM/B} n)) reads and
//! O((1/B)(1 + log_{kM/B} n)) writes, and heapsort through it matches the
//! other two AEM sorts asymptotically.

use crate::Scale;
use asym_core::em::pq::{pq_slack, AemPriorityQueue};
use asym_core::sort::Algorithm;
use asym_model::stats::log_base;
use asym_model::table::{f2, f3, Table};
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::EmConfig;
use rand::{Rng, SeedableRng};

/// One registry run at the E6 geometry; returns (reads, writes, cost).
fn measure(
    algorithm: Algorithm,
    m: usize,
    b: usize,
    k: usize,
    input: &[Record],
) -> (u64, u64, u64) {
    crate::measure_sort(&crate::sort_spec(algorithm, m, b, 8, k, 0xE6), input)
}

/// Run E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (32usize, 4usize);
    let n = scale.pick(3_000usize, 20_000, 60_000);

    // Table 1: amortized per-op costs, insert-all-delete-all and mixed.
    let mut per_op = Table::new(
        format!("E6a: amortized PQ cost per operation (M={m}, B={b}, n={n} ops each phase)"),
        &[
            "workload",
            "k",
            "reads/op",
            "writes/op",
            "formula r/op",
            "formula w/op",
        ],
    );
    for k in [1usize, 2, 4] {
        let levels = 1.0 + log_base((k * m) as f64 / b as f64, n as f64);
        // Phase A: n inserts then n delete-mins.
        {
            let em = crate::machine(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)));
            let mut pq = AemPriorityQueue::new(em.clone(), k).expect("pq");
            let input = Workload::UniformRandom.generate(n, 0xE6);
            for &r in &input {
                pq.insert(r).expect("insert");
            }
            while pq.delete_min().expect("dm").is_some() {}
            let s = em.stats();
            let ops = (2 * n) as f64;
            per_op.row(&[
                "bulk".into(),
                k.to_string(),
                f3(s.block_reads as f64 / ops),
                f3(s.block_writes as f64 / ops),
                f3(k as f64 / b as f64 * levels),
                f3(levels / b as f64),
            ]);
        }
        // Phase B: random 60/40 mix.
        {
            let em = crate::machine(EmConfig::new(m, b, 8).with_slack(pq_slack(m, b, k)));
            let mut pq = AemPriorityQueue::new(em.clone(), k).expect("pq");
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE6);
            let mut ops = 0u64;
            let mut uid = 0u64;
            while ops < 2 * n as u64 {
                if rng.gen_bool(0.6) || pq.is_empty() {
                    pq.insert(Record::new(rng.gen_range(0..10_000_000), uid))
                        .expect("insert");
                    uid += 1;
                } else {
                    pq.delete_min().expect("dm");
                }
                ops += 1;
            }
            let s = em.stats();
            per_op.row(&[
                "mixed".into(),
                k.to_string(),
                f3(s.block_reads as f64 / ops as f64),
                f3(s.block_writes as f64 / ops as f64),
                f3(k as f64 / b as f64 * levels),
                f3(levels / b as f64),
            ]);
        }
    }
    per_op.note(
        "formula columns omit the theorem's hidden constants; scaling in k and B is the claim",
    );

    // Table 2: heapsort totals vs mergesort (same asymptotics claim).
    let mut totals = Table::new(
        format!("E6b: heapsort vs mergesort totals (M={m}, B={b}, n={n}, omega=8)"),
        &[
            "k",
            "heap reads",
            "heap writes",
            "heap cost",
            "merge cost",
            "heap/merge",
        ],
    );
    let input = Workload::UniformRandom.generate(n, 0x6E);
    for k in [1usize, 2, 4] {
        let (heap_reads, heap_writes, heap_cost) = measure(Algorithm::Heapsort, m, b, k, &input);
        let (_, _, merge_cost) = measure(Algorithm::Mergesort, m, b, k, &input);
        totals.row(&[
            k.to_string(),
            heap_reads.to_string(),
            heap_writes.to_string(),
            heap_cost.to_string(),
            merge_cost.to_string(),
            f2(heap_cost as f64 / merge_cost as f64),
        ]);
    }
    totals.note("heap/merge is a bounded constant: the dynamic structure costs a constant factor");
    vec![per_op, totals]
}

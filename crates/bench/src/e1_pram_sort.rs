//! E1 — Theorem 3.2: the Asymmetric CRCW PRAM sample sort performs
//! O(n log n) reads, O(n) writes, and has O(ω log n) depth w.h.p. The first
//! table sweeps n at fixed ω; the second reports the per-step breakdown of
//! Algorithm 1 at the largest size; the third sweeps ω to show the depth
//! scaling.

use crate::Scale;
use asym_core::pram::pram_sample_sort;
use asym_model::table::{f2, f3, Table};
use asym_model::workload::Workload;
use rand::SeedableRng;

/// Run E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let omega = 8u64;
    let max_exp = scale.pick(12u32, 16, 18);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE1);

    let mut sweep = Table::new(
        format!("E1a: Algorithm 1 cost vs n (omega={omega}, step 6 enabled)"),
        &[
            "n",
            "reads/(n lg n)",
            "writes/n",
            "depth",
            "depth/(omega lg n)",
            "placement tries/n",
        ],
    );
    let mut last_report = None;
    for e in (10..=max_exp).step_by(2) {
        let n = 1usize << e;
        let input = Workload::UniformRandom.generate(n, e as u64);
        let (out, report) = pram_sample_sort(&input, omega, &mut rng, true);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let nf = n as f64;
        sweep.row(&[
            n.to_string(),
            f3(report.total.reads as f64 / (nf * nf.log2())),
            f3(report.total.writes as f64 / nf),
            report.total.depth.to_string(),
            f2(report.total.depth as f64 / (omega as f64 * nf.log2())),
            f2(report.placement_tries as f64 / nf),
        ]);
        last_report = Some((n, report));
    }
    sweep.note("writes/n flat + reads/(n lg n) flat = the Theorem 3.2 work bounds");
    sweep.note("depth/(omega lg n) grows ~log n via the substitute sample sorter (DESIGN.md)");

    let (n, report) = last_report.expect("at least one row");
    let mut steps = Table::new(
        format!("E1b: per-step breakdown at n={n}"),
        &["step", "reads/n", "writes/n", "depth"],
    );
    for (name, c) in &report.steps {
        steps.row(&[
            name.to_string(),
            f3(c.reads as f64 / n as f64),
            f3(c.writes as f64 / n as f64),
            c.depth.to_string(),
        ]);
    }
    steps.row(&[
        "TOTAL".into(),
        f3(report.total.reads as f64 / n as f64),
        f3(report.total.writes as f64 / n as f64),
        report.total.depth.to_string(),
    ]);

    let mut omegas = Table::new(
        "E1c: depth scaling with omega (fixed n)",
        &[
            "omega",
            "depth",
            "depth/omega",
            "buckets",
            "max final bucket",
        ],
    );
    let n = 1usize << scale.pick(11, 14, 16);
    let input = Workload::UniformRandom.generate(n, 3);
    for w in [2u64, 4, 8, 16, 32] {
        let (_, r) = pram_sample_sort(&input, w, &mut rng, true);
        omegas.row(&[
            w.to_string(),
            r.total.depth.to_string(),
            f2(r.total.depth as f64 / w as f64),
            r.buckets.to_string(),
            r.max_final_bucket.to_string(),
        ]);
    }
    omegas.note("depth/omega stabilizing = the O(omega log n) claim's omega factor");
    vec![sweep, steps, omegas]
}

//! E14 (E-KV) — the read-cost/write-cost frontier of the ω-aware LSM
//! engine, measured end to end through `asym-kv` with every compaction
//! running as an admitted sort-service job.
//!
//! The policy model (`asym_kv::policy`) predicts that leveling pays ~T/2
//! rewrites per level for cheap one-probe-per-level lookups while tiering
//! writes each record once per level but probes up to T runs per level —
//! so under the AEM objective `reads + ω·writes` the optimum slides from
//! leveling toward tiering (with a growing size ratio) as ω grows. E14
//! replays one fixed update-heavy stream through real engines across the
//! `(style, T, ω)` grid and tabulates the *measured* totals: engine I/O
//! (flushes + probes) merged with every compaction job's measured stats.
//!
//! Three claims are asserted, not just printed:
//!
//! 1. tiering's physical write total is at or below leveling's at every
//!    `(T, ω)` cell, strictly below once T > 2 builds real levels;
//! 2. the ω-weighted cost gap between the styles widens as ω grows —
//!    the frontier claim, now on measured counts rather than the model;
//! 3. every compaction was admitted with its measured stats inside the
//!    `predict()` envelope (the same bound the differential suite pins).
//!
//! The compaction fan-in is pinned (`sort_k`) so physical counts are
//! ω-invariant and the ω sweep isolates pure cost weighting; backends
//! follow `ASYM_BENCH_BACKEND` like every AEM experiment.

use crate::Scale;
use asym_kv::{AsymKv, CompactionStyle, KvConfig, Policy};
use asym_model::table::{f2, Table};
use em_sim::EmStats;

/// The deterministic seed of the E14 op stream.
const SEED: u64 = 0xE14;

/// The `(style, T)` grid every ω is measured at.
pub const STYLE_POINTS: [(CompactionStyle, usize); 6] = [
    (CompactionStyle::Leveling, 2),
    (CompactionStyle::Leveling, 4),
    (CompactionStyle::Leveling, 8),
    (CompactionStyle::Tiering, 2),
    (CompactionStyle::Tiering, 4),
    (CompactionStyle::Tiering, 8),
];

/// The ω sweep (the paper's read/write asymmetry range).
pub const OMEGAS: [u64; 3] = [1, 8, 32];

/// Operations per engine run at each scale.
pub fn ops_for(scale: Scale) -> u64 {
    scale.pick(2_000, 12_000, 60_000)
}

/// One measured engine run: totals across the engine machine and every
/// compaction job, plus the audit trail the envelope assertion walks.
pub struct KvMeasurement {
    /// Engine stats merged with all compaction-job stats.
    pub stats: EmStats,
    /// `reads + ω·writes` over those totals.
    pub cost: u64,
    /// Operations applied.
    pub ops: u64,
    /// Compactions the engine submitted (all admitted, by construction —
    /// a rejection is an error, not a skip).
    pub compactions: usize,
}

/// Build the E14 engine: small geometry so the stream builds several
/// levels, fan-in pinned so counts are ω-invariant, backend from the
/// environment.
fn engine(style: CompactionStyle, t: usize, omega: u64) -> AsymKv {
    let mut cfg = KvConfig::new(omega);
    cfg.m = 1024;
    cfg.b = 32;
    cfg.memtable_cap = 128;
    cfg.policy = Policy::fixed(style, t);
    cfg.sort_k = Some(4);
    let cfg = cfg
        .from_env()
        .unwrap_or_else(|e| panic!("E14 backend: {e}"));
    AsymKv::new(cfg).unwrap_or_else(|e| panic!("E14 engine: {e}"))
}

/// Replay the fixed stream (80% puts, 10% deletes, 10% gets over a large
/// key space) through one `(style, T, ω)` engine and return the measured
/// totals. Shared with the `kv_workload` bench target so the table and
/// `BENCH_kv.json` freeze the same numbers.
pub fn measure(style: CompactionStyle, t: usize, omega: u64, ops: u64) -> KvMeasurement {
    let mut kv = engine(style, t, omega);
    let mut x = SEED;
    for _ in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 100_000;
        match x % 10 {
            0 => kv.delete(key).expect("delete"),
            1 => {
                let _ = kv.get(key).expect("get");
            }
            _ => kv.put(key, x).expect("put"),
        }
    }
    kv.flush().expect("final flush");
    for c in kv.compactions() {
        assert!(
            c.stats.block_reads <= c.predicted.reads
                && c.stats.block_writes <= c.predicted.writes
                && c.stats.peak_memory <= c.predicted.peak_memory,
            "{}/t={t}/omega={omega}: compaction outside its predict() envelope: {c:?}",
            style.name()
        );
    }
    KvMeasurement {
        stats: kv.total_stats(),
        cost: kv.total_cost(),
        ops,
        compactions: kv.compactions().len(),
    }
}

/// Run E14.
pub fn run(scale: Scale) -> Vec<Table> {
    let ops = ops_for(scale);

    let mut frontier = Table::new(
        format!("E14: measured LSM frontier, reads + w*writes ({ops} ops, M=1024, B=32, C=128)"),
        &[
            "omega", "style", "T", "reads", "writes", "cost", "cost/op", "jobs",
        ],
    );
    // gaps[t] = ω-weighted (leveling − tiering) cost at that T, per ω.
    let mut gaps: Vec<(u64, usize, i128)> = Vec::new();
    for omega in OMEGAS {
        let mut by_point = Vec::new();
        for (style, t) in STYLE_POINTS {
            let m = measure(style, t, omega, ops);
            frontier.row(&[
                omega.to_string(),
                style.name().to_string(),
                t.to_string(),
                m.stats.block_reads.to_string(),
                m.stats.block_writes.to_string(),
                m.cost.to_string(),
                f2(m.cost as f64 / m.ops as f64),
                m.compactions.to_string(),
            ]);
            by_point.push((style, t, m));
        }
        for &(_, t, ref lvl) in by_point.iter().filter(|p| p.0 == CompactionStyle::Leveling) {
            let tier = &by_point
                .iter()
                .find(|p| p.0 == CompactionStyle::Tiering && p.1 == t)
                .expect("grid is symmetric")
                .2;
            // Claim 1: tiering never writes more; strictly less once T > 2
            // makes leveling's per-level rewrites real.
            assert!(
                tier.stats.block_writes <= lvl.stats.block_writes,
                "omega={omega}, T={t}: tiering wrote {} > leveling {}",
                tier.stats.block_writes,
                lvl.stats.block_writes
            );
            if t > 2 {
                assert!(
                    tier.stats.block_writes < lvl.stats.block_writes,
                    "omega={omega}, T={t}: tiering must strictly out-write leveling"
                );
                gaps.push((omega, t, lvl.cost as i128 - tier.cost as i128));
            }
        }
    }
    // Claim 2: at each T the weighted gap widens monotonically with ω.
    for t in [4usize, 8] {
        let series: Vec<i128> = OMEGAS
            .iter()
            .map(|&omega| {
                gaps.iter()
                    .find(|g| g.0 == omega && g.1 == t)
                    .expect("gap measured")
                    .2
            })
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] > w[0],
                "T={t}: weighted leveling-tiering gap must widen with omega, got {series:?}"
            );
        }
    }
    frontier.note("reads/writes = engine (flushes + fence-pointer probes) + all compaction jobs");
    frontier.note("every compaction ran as an admitted sort-service job, stats within predict()");
    frontier
        .note("fan-in pinned (k=4) so physical counts are omega-invariant; cost reweights them");
    frontier
        .note("tiering writes <= leveling at every cell (strict for T>2); gap widens with omega");

    let mut policy = Table::new(
        "E14: omega-aware policy choice (Policy::for_omega, 90% updates, N=1M, C=1024, B=64)"
            .to_string(),
        &["omega", "style", "T", "modeled cost/op"],
    );
    for omega in [1u64, 2, 4, 8, 16, 32] {
        let p = Policy::for_omega(omega);
        let inputs = asym_kv::PolicyInputs {
            omega,
            read_fraction: 0.1,
            data_records: 1 << 20,
            memtable_records: 1 << 10,
            block_records: 64,
        };
        let cost = asym_kv::modeled_cost(p.style, p.t, &inputs).per_op(&inputs);
        policy.row(&[
            omega.to_string(),
            p.style.name().to_string(),
            p.t.to_string(),
            f2(cost),
        ]);
    }
    policy.note("the closed-form chooser: crossover style and size ratio shift with omega");
    vec![frontier, policy]
}

//! E12 (extension) — the §2 scheduler bounds. The private-cache bound
//! `Qp ≤ Q1 + O(p·D·M/B)` rests on "#steals = O(pD) w.h.p." under
//! randomized work stealing; the simulation executes fork-join trees shaped
//! like the parallel mergesort and measures steals against p·D.

use crate::Scale;
use asym_model::stats::{mean, Summary};
use asym_model::table::{f2, Table};
use rand::SeedableRng;
use wd_sim::sched::simulate_pdf;
use wd_sim::{simulate_work_stealing, Task};

/// Run E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let leaves = scale.pick(128usize, 512, 2048);
    let leaf_work = 64u64;
    let task = Task::balanced(leaves, leaf_work, 2);
    let d = task.depth();
    let w = task.work();
    let trials = scale.pick(3u64, 8, 16);

    let mut t = Table::new(
        format!("E12: work stealing on a mergesort-shaped DAG (work={w}, depth={d})"),
        &[
            "p",
            "mean steals",
            "max steals",
            "steals/(p*D)",
            "mean time",
            "greedy bound W/p+D",
            "utilization",
        ],
    );
    for p in [2usize, 4, 8, 16, 32] {
        let mut steals = Vec::new();
        let mut times = Vec::new();
        let mut utils = Vec::new();
        for seed in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 7919 + p as u64);
            let s = simulate_work_stealing(&task, p, &mut rng);
            steals.push(s.steals as f64);
            times.push(s.time as f64);
            utils.push(s.utilization(p));
        }
        let st = Summary::of(&steals);
        t.row(&[
            p.to_string(),
            f2(st.mean),
            f2(st.max),
            format!("{:.3}", st.mean / (p as f64 * d as f64)),
            f2(mean(&times)),
            (w / p as u64 + d).to_string(),
            f2(mean(&utils)),
        ]);
    }
    t.note("steals/(p*D) bounded by a small constant = the O(pD) steal bound");
    t.note("with 2M/B misses charged per steal this gives Qp <= Q1 + O(p*D*M/B)");

    // The PDF (shared-cache) half: premature work bounded by ~p*D, which is
    // why a shared cache of M + p*B*D suffices for Qp <= Q1.
    let mut pdf = Table::new(
        format!("E12b: parallel-depth-first schedule (work={w}, depth={d})"),
        &[
            "p",
            "time",
            "max premature leaves",
            "p*D bound",
            "premature/(p*D)",
        ],
    );
    for p in [2usize, 4, 8, 16, 32] {
        let s = simulate_pdf(&task, p);
        pdf.row(&[
            p.to_string(),
            s.time.to_string(),
            s.max_premature.to_string(),
            (p as u64 * d).to_string(),
            format!("{:.3}", s.max_premature as f64 / (p as f64 * d as f64)),
        ]);
    }
    pdf.note("premature leaves <= p*D = the shared cache needs only M + p*B*D extra room");
    vec![t, pdf]
}

//! bench_check — the CI bench-regression gate.
//!
//! Compares a fresh bench report against the committed baseline and exits
//! non-zero on drift:
//!
//! ```text
//! cargo run -p asym-bench --bin bench_check -- \
//!     --baseline BENCH_sim.json --fresh BENCH_fresh.json [--tolerance 0.25]
//! ```
//!
//! Modeled `(reads, writes, peak_memory)` counts must match the baseline
//! exactly (they are deterministic — any change is a model regression);
//! wall-clock throughput may regress up to `tolerance` (default 25%) before
//! the gate trips. See `asym_bench::json::compare_reports` for the rules.

use asym_bench::json::{compare_reports, BenchReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--fresh" => fresh = Some(PathBuf::from(value("--fresh")?)),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline <path> is required")?,
        fresh: fresh.ok_or("--fresh <path> is required")?,
        tolerance,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_check: {e}");
            eprintln!("usage: bench_check --baseline <json> --fresh <json> [--tolerance 0.25]");
            return ExitCode::from(2);
        }
    };
    let load = |path: &PathBuf| match BenchReport::read_from(path) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("bench_check: {e}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (load(&args.baseline), load(&args.fresh)) else {
        return ExitCode::from(2);
    };
    let violations = compare_reports(&baseline, &fresh, args.tolerance);
    if violations.is_empty() {
        println!(
            "bench_check: OK — {} entries match the baseline (scale={}, backend={}, tolerance={:.0}%)",
            fresh.entries().len(),
            fresh.scale(),
            fresh.backend(),
            100.0 * args.tolerance
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_check: {} violation(s) against {}:",
            violations.len(),
            args.baseline.display()
        );
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

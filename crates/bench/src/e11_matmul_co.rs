//! E11 — Theorem 5.3: the ω²-way cache-oblivious multiply with sequential
//! accumulation writes a factor ~log ω less (ω-weighted) than the 4-way
//! recursion, in expectation over the randomized first round.

use crate::Scale;
use asym_core::co::matmul::{mm_co_4way, mm_co_asym};
use asym_model::stats::mean;
use asym_model::table::{f2, Table};
use cache_sim::{CacheConfig, PolicyChoice, SimArray, Tracker};
use rand::{Rng, SeedableRng};

/// Run E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let (m, b) = (2048usize, 16usize);
    let n = scale.pick(64usize, 128, 256);
    let omega = 16usize;
    let seeds = scale.pick(2u64, 5, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE11);
    let a_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b_host: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();

    type MmFn<'a> = &'a dyn Fn(&SimArray<f64>, &SimArray<f64>, &mut SimArray<f64>);
    let measure = |f: MmFn| {
        let cfg = CacheConfig::new(m, b, omega as u64);
        let tr = Tracker::new(cfg, PolicyChoice::Lru);
        let am = SimArray::from_vec(&tr, a_host.clone());
        let bm = SimArray::from_vec(&tr, b_host.clone());
        let mut cm = SimArray::filled(&tr, n * n, 0.0);
        f(&am, &bm, &mut cm);
        tr.flush();
        tr.stats()
    };

    let mut t = Table::new(
        format!("E11: CO matmul variants (n={n}, M={m} cells, B={b}, omega={omega})"),
        &[
            "algorithm",
            "loads",
            "writebacks",
            "cost",
            "write saving vs 4-way",
        ],
    );
    let s4 = measure(&|a, bm, c| mm_co_4way(a, bm, c, n));
    t.row(&[
        "co-4way (baseline)".into(),
        s4.loads.to_string(),
        s4.writebacks.to_string(),
        s4.cost(omega as u64).to_string(),
        "1.00".into(),
    ]);
    let det = measure(&|a, bm, c| mm_co_asym(a, bm, c, n, omega, None));
    t.row(&[
        "co-asym deterministic".into(),
        det.loads.to_string(),
        det.writebacks.to_string(),
        det.cost(omega as u64).to_string(),
        f2(s4.writebacks as f64 / det.writebacks.max(1) as f64),
    ]);
    // Randomized first round: mean over seeds (the theorem's expectation).
    let mut loads = Vec::new();
    let mut wbs = Vec::new();
    let mut costs = Vec::new();
    for seed in 0..seeds {
        let s = measure(&|a, bm, c| {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            mm_co_asym(a, bm, c, n, omega, Some(&mut r))
        });
        loads.push(s.loads as f64);
        wbs.push(s.writebacks as f64);
        costs.push(s.cost(omega as u64) as f64);
    }
    t.row(&[
        format!("co-asym randomized (mean of {seeds})"),
        (mean(&loads) as u64).to_string(),
        (mean(&wbs) as u64).to_string(),
        (mean(&costs) as u64).to_string(),
        f2(s4.writebacks as f64 / mean(&wbs).max(1.0)),
    ]);
    t.note(format!(
        "log2(omega) = {}: the expected write saving the theorem predicts (up to constants)",
        (omega as f64).log2()
    ));
    vec![t]
}

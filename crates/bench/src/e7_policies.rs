//! E7 — Lemma 2.1: the read-write LRU policy (split pools) with pools of
//! size M_L is competitive with the ideal cache of size M_I < M_L. The
//! ideal is bracketed by offline Belady MIN (classic and clean-first).
//! Traces come from real algorithm runs; plain LRU is included to show why
//! the split policy is needed under asymmetry.

use crate::Scale;
use asym_core::co::{co_asym_sort, co_mergesort, fft, Cplx, FftVariant};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use cache_sim::{simulate_min, CacheConfig, MinVariant, PolicyChoice, SimArray, Tracker};

fn record_trace(name: &str, n: usize, scale: Scale) -> (String, Vec<(u32, bool)>) {
    let n = scale.pick(n / 4, n, 2 * n);
    let cfg = CacheConfig::new(64, 8, 8);
    let t = Tracker::new(cfg, PolicyChoice::Record);
    match name {
        "co-sort" => {
            let input = Workload::UniformRandom.generate(n, 0xE7);
            let mut a = SimArray::from_vec(&t, input);
            co_asym_sort(&mut a, 0, n, 8, 64);
        }
        "mergesort" => {
            let input = Workload::Reversed.generate(n, 0xE7);
            let mut a = SimArray::from_vec(&t, input);
            co_mergesort(&mut a, 0, n);
        }
        "fft" => {
            let sig: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
            let mut a = SimArray::from_vec(&t, sig);
            fft(&mut a, 0, n, FftVariant::Asymmetric, 8, 32);
        }
        _ => unreachable!(),
    }
    (format!("{name}(n={n})"), t.take_trace())
}

fn replay(
    policy: PolicyChoice,
    blocks: usize,
    b: usize,
    trace: &[(u32, bool)],
) -> cache_sim::CacheStats {
    let t = Tracker::new(CacheConfig::new(blocks * b, b, 8), policy);
    for &(blk, w) in trace {
        t.access(blk as usize * b, w);
    }
    t.flush();
    t.stats()
}

/// Run E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let omega = 8u64;
    let m_i = 8usize; // ideal-cache capacity in blocks
    let m_l = 2 * m_i; // per-pool capacity of the online policies
    let b = 8usize;
    let mut t = Table::new(
        format!("E7: policy costs on real traces (omega={omega}, M_I={m_i} blocks, M_L={m_l})"),
        &[
            "trace",
            "MIN cost",
            "MIN-clean cost",
            "RW-LRU cost",
            "LRU cost",
            "RW-LRU/MIN",
            "LRU/MIN",
        ],
    );
    for name in ["co-sort", "mergesort", "fft"] {
        let (label, trace) = record_trace(name, 4096, scale);
        let min = simulate_min(&trace, m_i, MinVariant::Classic).cost(omega);
        let min_clean = simulate_min(&trace, m_i, MinVariant::CleanFirst).cost(omega);
        let rw = replay(PolicyChoice::RwLru, m_l, b, &trace).cost(omega);
        let lru = replay(PolicyChoice::Lru, m_l, b, &trace).cost(omega);
        let denom = min.min(min_clean).max(1);
        t.row(&[
            label,
            min.to_string(),
            min_clean.to_string(),
            rw.to_string(),
            lru.to_string(),
            f2(rw as f64 / denom as f64),
            f2(lru as f64 / denom as f64),
        ]);
    }
    t.note("Lemma 2.1 predicts RW-LRU/MIN <= M_L/(M_L - M_I) = 2 plus lower-order terms");
    t.note("MIN-clean < MIN on write-heavy traces shows the asymmetric ideal differs from Belady");

    // Ablation: how should a fixed budget of 2*M_L blocks be split between
    // the read and write pools? The paper uses equal pools; sweep the ratio.
    let mut split = Table::new(
        format!(
            "E7b: pool-split ablation at total {} blocks (omega={omega})",
            2 * m_l
        ),
        &["trace", "1:7", "1:3", "1:1", "3:1", "7:1"],
    );
    for name in ["co-sort", "mergesort", "fft"] {
        let (label, trace) = record_trace(name, 4096, scale);
        let mut cells = vec![label];
        for (r, w) in [(2usize, 14usize), (4, 12), (8, 8), (12, 4), (14, 2)] {
            let mut cache = cache_sim::policy::RwLruCache::with_pools(r * m_l / 8, w * m_l / 8);
            for &(blk, is_w) in &trace {
                cache.access(blk, is_w);
            }
            cache.flush();
            cells.push(cache.stats().cost(omega).to_string());
        }
        split.row(&cells);
    }
    split.note("columns are read:write pool ratios. Extra write-pool room helps modestly");
    split.note("(dirty evictions cost omega) while starving the write pool is catastrophic;");
    split.note("the paper's equal split is within a few percent of the best ratio");
    vec![t, split]
}

//! # asym-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md §3 (E0–E14); each reproduces one
//! theorem, lemma, or figure of the paper as a measured table. The
//! `tables` bench target (`cargo bench -p asym-bench --bench tables`) runs
//! them all and prints the tables that EXPERIMENTS.md catalogs.
//!
//! Scale is controlled by `ASYM_BENCH_SCALE`:
//! * `smoke` — seconds-fast sanity sizes;
//! * `standard` (default) — the sizes recorded in EXPERIMENTS.md;
//! * `full` — larger sweeps for sharper asymptotics.
//!
//! The storage backend of the AEM experiments (E3–E6) is controlled by
//! `ASYM_BENCH_BACKEND`:
//! * `mem` (default) — the zero-alloc slab arena;
//! * `file` — a real temp file, so the modeled transfer schedule is executed
//!   as actual `std::fs` I/O.
//!
//! Modeled `(reads, writes, peak_memory)` are identical across backends by
//! construction; the backend matrix in CI proves the tables don't silently
//! depend on the in-memory store.

use asym_core::sort::{Algorithm, SortSpec};
use asym_model::table::Table;
use asym_model::Record;
use em_sim::{Backend, EmConfig, EmMachine};

pub mod json;

pub mod e0_ram_sort;
pub mod e10_matmul_em;
pub mod e11_matmul_co;
pub mod e12_scheduler;
pub mod e13_par_sort;
pub mod e14_kv;
pub mod e1_pram_sort;
pub mod e2_partition;
pub mod e3_mergesort;
pub mod e4_selection;
pub mod e5_samplesort;
pub mod e6_heapsort;
pub mod e7_policies;
pub mod e8_co_sort;
pub mod e9_fft;

/// Experiment sweep sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast sanity sizes (CI).
    Smoke,
    /// The sizes recorded in EXPERIMENTS.md.
    Standard,
    /// Larger sweeps for sharper asymptotics.
    Full,
}

impl Scale {
    /// Read `ASYM_BENCH_SCALE` (default: standard).
    pub fn from_env() -> Scale {
        match std::env::var("ASYM_BENCH_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Pick a value by scale.
    pub fn pick<T: Copy>(&self, smoke: T, standard: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Standard => standard,
            Scale::Full => full,
        }
    }

    /// The scale's lowercase name (as accepted by `ASYM_BENCH_SCALE`).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Standard => "standard",
            Scale::Full => "full",
        }
    }
}

/// The storage backend selected by `ASYM_BENCH_BACKEND` (default: `mem`).
///
/// One of two env readers the whole harness uses (the other is
/// [`thread_cap_from_env`]); both route through the typed parsers in
/// `asym_core::sort` — the single place `ASYM_BENCH_*` values are
/// interpreted. Panics on an unrecognized value so a typo can't silently
/// fall back to the in-memory store in a backend-matrix CI run.
pub fn backend_from_env() -> Backend {
    asym_core::sort::env_backend()
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or_default()
}

/// The lane cap selected by `ASYM_BENCH_THREADS` (`None` = uncapped).
///
/// Panics on an unparsable value — like the backend selector, a typo must
/// not silently run the full sweep in a thread-matrix CI job.
pub fn thread_cap_from_env() -> Option<usize> {
    asym_core::sort::env_thread_cap().unwrap_or_else(|e| panic!("{e}"))
}

/// Build an [`EmMachine`] on the backend selected by `ASYM_BENCH_BACKEND`.
///
/// Every AEM experiment constructs its machines through this helper, so one
/// environment variable swaps the whole harness between the slab arena and
/// the file-backed block device. Panics if the file backend cannot create
/// its temp file — an experiment silently measuring the wrong backend would
/// be worse than a crash.
pub fn machine(cfg: EmConfig) -> EmMachine {
    EmMachine::with_backend(cfg, backend_from_env()).expect("create bench machine backend")
}

/// Build a sort-job description on the env-selected backend — the one
/// spec-construction path the sort experiments and bench targets share
/// (experiments with extra knobs, like E13's lanes and steal charging,
/// compose `SortSpec::builder` directly). Panics on an unparsable
/// `ASYM_BENCH_*` value or an invalid spec, like [`machine`] — a harness
/// typo must crash, not silently measure the wrong configuration.
pub fn sort_spec(
    algorithm: Algorithm,
    m: usize,
    b: usize,
    omega: u64,
    k: usize,
    seed: u64,
) -> SortSpec {
    SortSpec::builder(algorithm, m, b, omega)
        .k(k)
        .seed(seed)
        .from_env()
        .unwrap_or_else(|e| panic!("{e}"))
        .build()
        .unwrap_or_else(|e| panic!("{algorithm} bench spec: {e}"))
}

/// Run `spec` through the sorter registry, assert record conservation, and
/// return the three numbers every sort table tabulates:
/// `(reads, writes, io_cost)`.
pub fn measure_sort(spec: &SortSpec, input: &[Record]) -> (u64, u64, u64) {
    let outcome = asym_core::sort::run(spec, input).expect("sort");
    assert_eq!(outcome.output.len(), input.len());
    (
        outcome.stats.block_reads,
        outcome.stats.block_writes,
        outcome.io_cost(),
    )
}

/// An experiment: an id, the paper claim it reproduces, and a runner.
pub struct Experiment {
    /// Identifier (E0..E14).
    pub id: &'static str,
    /// The theorem / lemma / figure being reproduced.
    pub claim: &'static str,
    /// Produce the result tables.
    pub run: fn(Scale) -> Vec<Table>,
}

/// Every experiment, in presentation order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E0",
            claim: "§3 RAM: tree sort = O(n log n) reads, O(n) writes",
            run: e0_ram_sort::run,
        },
        Experiment {
            id: "E1",
            claim: "Theorem 3.2: PRAM sample sort, O(n) writes, O(ω log n) depth",
            run: e1_pram_sort::run,
        },
        Experiment {
            id: "E2",
            claim: "Lemma 3.1: m^(1/3) buckets, max bucket < m^(2/3) log m",
            run: e2_partition::run,
        },
        Experiment {
            id: "E3",
            claim: "Theorem 4.3 + Corollary 4.4 + Appendix A: AEM mergesort",
            run: e3_mergesort::run,
        },
        Experiment {
            id: "E4",
            claim: "Lemma 4.2: selection-sort base case exact bounds",
            run: e4_selection::run,
        },
        Experiment {
            id: "E5",
            claim: "Theorem 4.5: AEM sample sort",
            run: e5_samplesort::run,
        },
        Experiment {
            id: "E6",
            claim: "Theorems 4.7/4.10: buffer-tree priority queue + heapsort",
            run: e6_heapsort::run,
        },
        Experiment {
            id: "E7",
            claim: "Lemma 2.1: read-write LRU vs the ideal-cache bracket",
            run: e7_policies::run,
        },
        Experiment {
            id: "E8",
            claim: "Theorem 5.1 + Figure 1: cache-oblivious sort",
            run: e8_co_sort::run,
        },
        Experiment {
            id: "E9",
            claim: "§5.2: cache-oblivious FFT",
            run: e9_fft::run,
        },
        Experiment {
            id: "E10",
            claim: "Theorem 5.2: EM blocked matrix multiply",
            run: e10_matmul_em::run,
        },
        Experiment {
            id: "E11",
            claim: "Theorem 5.3: ω²-way cache-oblivious matrix multiply",
            run: e11_matmul_co::run,
        },
        Experiment {
            id: "E12",
            claim: "§2 scheduler bounds: steals = O(pD) under work stealing",
            run: e12_scheduler::run,
        },
        Experiment {
            id: "E13",
            claim: "§4–§5 parallel sort: lane-sharded AEM machine preserves write totals",
            run: e13_par_sort::run,
        },
        Experiment {
            id: "E14",
            claim: "E-KV: omega-aware LSM frontier, compactions as admitted sort jobs",
            run: e14_kv::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults_to_standard() {
        assert_eq!(Scale::Standard.pick(1, 2, 3), 2);
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn every_experiment_runs_at_smoke_scale() {
        for e in experiments() {
            let tables = (e.run)(Scale::Smoke);
            assert!(!tables.is_empty(), "{} produced no tables", e.id);
            for t in &tables {
                assert!(!t.is_empty(), "{} produced an empty table", e.id);
            }
        }
    }
}

//! E13 (extension) — the parallel asymmetric sort end-to-end: the modeled
//! parallel sample sort (`asym-core::par`) on a sharded `ParMachine`, with
//! per-lane cost charging, span from the `wd-sim` cost algebra, and a
//! simulated work-stealing execution of the phase DAG.
//!
//! The claim under test is *work preservation*: the merged write total
//! across lanes must equal the one-lane (serial-schedule) write total for
//! every lane count — write-efficiency survives parallelization — while
//! the span and the simulated execution time shrink. The lane sweep honors
//! `ASYM_BENCH_THREADS` (a cap, for the CI thread matrix) and the machines
//! honor `ASYM_BENCH_BACKEND` like every other AEM experiment.

use crate::Scale;
use asym_core::par::{par_aem_sample_sort, par_samplesort_slack, ParSortRun};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use asym_model::Record;
use em_sim::{EmConfig, ParMachine};

/// Machine geometry shared with the E3/E5 sweeps.
const M: usize = 64;
const B: usize = 8;
const K: usize = 2;

/// The lane counts of the sweep, capped by `ASYM_BENCH_THREADS` if set.
///
/// Panics on an unparsable value — like the backend selector, a typo must
/// not silently run the full sweep in a thread-matrix CI job.
pub fn lane_counts() -> Vec<usize> {
    let cap = match std::env::var("ASYM_BENCH_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("ASYM_BENCH_THREADS={v:?}: expected a lane count"))
            .max(1),
        Err(_) => usize::MAX,
    };
    [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&p| p <= cap)
        .collect()
}

/// Build the sharded machine E13 runs on (backend from `ASYM_BENCH_BACKEND`).
pub fn machine(omega: u64, lanes: usize) -> ParMachine {
    let cfg = EmConfig::new(M, B, omega).with_slack(par_samplesort_slack(M, B, K));
    ParMachine::with_backend(cfg, lanes, crate::backend_from_env()).expect("par machine backend")
}

/// The deterministic E13 input at size `n` (generate once, outside any
/// timed region — the `par_sort` bench measures the sort, not the setup).
pub fn input_for(n: usize) -> Vec<Record> {
    Workload::UniformRandom.generate(n, 0xE13)
}

/// One measured run (shared with the `par_sort` bench target). Resets the
/// machine's counters first, so the run's merged stats are per-run even
/// when the machine is reused across bench iterations (runs leave the
/// stores clean, so reuse is sound).
pub fn run_on(par: &ParMachine, input: &[Record]) -> ParSortRun {
    par.reset_stats();
    let run = par_aem_sample_sort(par, input, K, 0xE13).expect("par sample sort");
    assert_eq!(run.output.len(), input.len());
    assert_eq!(par.live_blocks(), 0, "run must leave the stores clean");
    run
}

/// Run E13.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let lanes = lane_counts();
    let input = input_for(n);

    let mut t = Table::new(
        format!("E13: parallel AEM sample sort (M={M}, B={B}, k={K}, n={n})"),
        &[
            "omega", "lanes", "reads", "writes", "span", "work", "sim time", "speedup", "steals",
        ],
    );
    for omega in [1u64, 2, 8, 32] {
        let mut serial_writes = 0u64;
        let mut serial_time = 0u64;
        for &p in &lanes {
            let run = run_on(&machine(omega, p), &input);
            let s = run.merged;
            if p == 1 {
                serial_writes = s.block_writes;
                serial_time = run.sched.time;
            }
            // Work preservation: the parallel schedule must not write more
            // than the serial one — the tentpole invariant, asserted here so
            // the tables can't silently drift.
            assert_eq!(
                s.block_writes, serial_writes,
                "omega={omega}, lanes={p}: parallel schedule changed the write total"
            );
            t.row(&[
                omega.to_string(),
                p.to_string(),
                s.block_reads.to_string(),
                s.block_writes.to_string(),
                run.cost.depth.to_string(),
                run.cost.work(omega).to_string(),
                run.sched.time.to_string(),
                f2(serial_time as f64 / run.sched.time as f64),
                run.sched.steals.to_string(),
            ]);
        }
    }
    t.note("writes are identical across lane counts = the schedule preserves write-efficiency");
    t.note("span = omega-weighted critical path from the wd-sim cost algebra");
    t.note("sim time/steals = randomized work stealing over the measured phase DAG");
    t.note("exchange is the paper's block-aligned owner-writes-once idealization (in-flight");
    t.note("records are uncharged host traffic; see par::aem_sample_sort model idealizations)");
    vec![t]
}

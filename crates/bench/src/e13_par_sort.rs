//! E13 (extension) — the parallel asymmetric sort end-to-end through the
//! unified job API: a `SortSpec` per (ω, lanes) cell, run by the registered
//! `par-aem-samplesort` sorter, with per-lane cost charging, span from the
//! `wd-sim` cost algebra, and a simulated work-stealing execution of the
//! phase DAG.
//!
//! The claim under test is *work preservation*: the merged write total
//! across lanes must equal the one-lane (serial-schedule) write total for
//! every lane count — write-efficiency survives parallelization — while
//! the span and the simulated execution time shrink. The table additionally
//! enables the spec's steal-charging knob, so the §2 cache warm-up charge
//! (`O(M/B)` per steal, `Qp ≤ Q1 + O(p·D·M/B)`) appears as its own column:
//! the *base* counts stay schedule-invariant, the warm-up is the measured
//! price of the stealing schedule on a private-cache machine. The lane
//! sweep honors `ASYM_BENCH_THREADS` (a cap, for the CI thread matrix) and
//! the machines honor `ASYM_BENCH_BACKEND` like every other AEM experiment
//! (both absorbed by `SortSpec::from_env`).

use crate::Scale;
use asym_core::sort::{self, Algorithm, SortOutcome, SortSpec};
use asym_model::table::{f2, Table};
use asym_model::workload::Workload;
use asym_model::Record;

/// Machine geometry shared with the E3/E5 sweeps.
const M: usize = 64;
const B: usize = 8;
const K: usize = 2;

/// The deterministic seed every E13 spec carries (sampling + scheduler).
const SEED: u64 = 0xE13;

/// The lane counts of the sweep, capped by `ASYM_BENCH_THREADS` if set.
pub fn lane_counts() -> Vec<usize> {
    let cap = crate::thread_cap_from_env().unwrap_or(usize::MAX);
    [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&p| p <= cap)
        .collect()
}

/// The job description E13 runs in one cell (backend from
/// `ASYM_BENCH_BACKEND`; `steal_charge` toggles the §2 warm-up accounting).
pub fn spec(omega: u64, lanes: usize, steal_charge: bool) -> SortSpec {
    SortSpec::builder(Algorithm::ParSamplesort, M, B, omega)
        .k(K)
        .lanes(lanes)
        .seed(SEED)
        .steal_charge(steal_charge)
        .from_env()
        .unwrap_or_else(|e| panic!("{e}"))
        .build()
        .unwrap_or_else(|e| panic!("E13 spec: {e}"))
}

/// The deterministic E13 input at size `n` (generate once, outside any
/// timed region — the `par_sort` bench measures the sort, not the setup).
pub fn input_for(n: usize) -> Vec<Record> {
    Workload::UniformRandom.generate(n, SEED)
}

/// One measured run (shared with the `par_sort` bench target): dispatch the
/// spec through the registry and sanity-check the outcome shape.
pub fn run_spec(spec: &SortSpec, input: &[Record]) -> SortOutcome {
    let outcome = sort::run(spec, input).expect("par sample sort");
    assert_eq!(outcome.output.len(), input.len());
    assert!(
        outcome.parallel.is_some(),
        "parallel runs carry lane detail"
    );
    outcome
}

/// Run E13.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(4_000usize, 40_000, 200_000);
    let lanes = lane_counts();
    let input = input_for(n);

    let mut t = Table::new(
        format!("E13: parallel AEM sample sort (M={M}, B={B}, k={K}, n={n})"),
        &[
            "omega",
            "lanes",
            "reads",
            "writes",
            "span",
            "work",
            "sim time",
            "speedup",
            "steals",
            "warmup I/O",
        ],
    );
    for omega in [1u64, 2, 8, 32] {
        let mut serial_writes = 0u64;
        let mut serial_time = 0u64;
        for &p in &lanes {
            let outcome = run_spec(&spec(omega, p, true), &input);
            let base = outcome.base_stats();
            let par = outcome.parallel.as_ref().expect("parallel detail");
            if p == 1 {
                serial_writes = base.block_writes;
                serial_time = par.sched.time;
            }
            // Work preservation: the parallel schedule must not write more
            // than the serial one — the tentpole invariant, asserted here so
            // the tables can't silently drift. The steal warm-up rides in
            // its own column, so the base counts stay schedule-invariant.
            assert_eq!(
                base.block_writes, serial_writes,
                "omega={omega}, lanes={p}: parallel schedule changed the write total"
            );
            let warmup_io = par.steal_warmup.block_reads + omega * par.steal_warmup.block_writes;
            t.row(&[
                omega.to_string(),
                p.to_string(),
                base.block_reads.to_string(),
                base.block_writes.to_string(),
                par.cost.depth.to_string(),
                par.cost.work(omega).to_string(),
                par.sched.time.to_string(),
                f2(serial_time as f64 / par.sched.time as f64),
                par.sched.steals.to_string(),
                warmup_io.to_string(),
            ]);
        }
    }
    t.note("writes are identical across lane counts = the schedule preserves write-efficiency");
    t.note("span = omega-weighted critical path from the wd-sim cost algebra (incl. warm-up)");
    t.note("sim time/steals = randomized work stealing over the measured phase DAG");
    t.note("warmup I/O = the §2 per-steal O(M/B) cache charge (Qp <= Q1 + O(p*D*M/B)),");
    t.note("folded into lane stats by the spec's steal_charge knob; reads/writes are the base");
    t.note("exchange is the paper's block-aligned owner-writes-once idealization (in-flight");
    t.note("records are uncharged host traffic; see par::aem_sample_sort model idealizations)");
    vec![t]
}

//! Minimal JSON bench-report emitter (no external dependencies).
//!
//! Perf-trajectory tracking writes one `BENCH_*.json` file per bench target
//! so successive runs (locally or as CI artifacts) can be diffed and
//! plotted. The format is deliberately flat:
//!
//! ```json
//! {
//!   "name": "sim-throughput",
//!   "scale": "smoke",
//!   "entries": [
//!     { "id": "raw-stream", "records": 50000, "seconds": 0.0042,
//!       "records_per_sec": 11904761.9 }
//!   ]
//! }
//! ```
//!
//! Bench binaries accept `--json <path>` (after `cargo bench ... --`) to
//! choose the output file; see [`json_path_from_args`].

use std::io::Write;
use std::path::{Path, PathBuf};

/// One measured workload.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Stable workload identifier (e.g. `e3-mergesort-k4`).
    pub id: String,
    /// Records processed by one run.
    pub records: u64,
    /// Wall-clock seconds for one run.
    pub seconds: f64,
    /// Throughput: `records / seconds`.
    pub records_per_sec: f64,
}

/// A bench report: a named set of throughput measurements at one scale.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    name: String,
    scale: String,
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for bench target `name` at `scale`.
    pub fn new(name: impl Into<String>, scale: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            scale: scale.into(),
            entries: Vec::new(),
        }
    }

    /// Record one measurement (throughput is derived).
    pub fn push(&mut self, id: impl Into<String>, records: u64, seconds: f64) {
        let records_per_sec = if seconds > 0.0 {
            records as f64 / seconds
        } else {
            0.0
        };
        self.entries.push(BenchEntry {
            id: id.into(),
            records,
            seconds,
            records_per_sec,
        });
    }

    /// The measurements recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Render the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", quote(&self.name)));
        out.push_str(&format!("  \"scale\": {},\n", quote(&self.scale)));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"id\": {}, \"records\": {}, \"seconds\": {}, \"records_per_sec\": {} }}{}\n",
                quote(&e.id),
                e.records,
                number(e.seconds),
                number(e.records_per_sec),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON document to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// JSON string literal (the ids and names used here never need exotic
/// escapes, but quote and backslash are handled for safety).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (non-finite values degrade to 0, which JSON cannot
/// represent otherwise).
fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".into()
    }
}

/// Scan CLI args for `--json <path>` (cargo passes everything after `--` to
/// the bench binary). Returns `default` when the flag is absent.
pub fn json_path_from_args(args: impl Iterator<Item = String>, default: &str) -> PathBuf {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        }
    }
    PathBuf::from(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_flat_json() {
        let mut r = BenchReport::new("sim-throughput", "smoke");
        r.push("raw-stream", 1000, 0.5);
        r.push("e3-mergesort-k1", 2000, 0.0);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"sim-throughput\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"id\": \"raw-stream\""));
        assert!(json.contains("\"records_per_sec\": 2000.000000"));
        // Zero-duration run degrades to zero throughput, not inf/NaN.
        assert!(json.contains("\"records_per_sec\": 0.000000"));
        // Exactly one comma between the two entries.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn json_flag_is_parsed_with_default_fallback() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            json_path_from_args(
                args(&["--bench", "--json", "out.json"]).into_iter(),
                "d.json"
            ),
            PathBuf::from("out.json")
        );
        assert_eq!(
            json_path_from_args(args(&["--bench"]).into_iter(), "d.json"),
            PathBuf::from("d.json")
        );
        assert_eq!(
            json_path_from_args(args(&["--json"]).into_iter(), "d.json"),
            PathBuf::from("d.json")
        );
    }

    #[test]
    fn write_to_creates_the_file() {
        let mut r = BenchReport::new("t", "smoke");
        r.push("case", 10, 0.1);
        let path = std::env::temp_dir().join("asym_bench_json_test.json");
        r.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, r.to_json());
        let _ = std::fs::remove_file(&path);
    }
}

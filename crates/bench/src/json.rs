//! Bench-report JSON: emitter, parser, and the regression checker, built on
//! the workspace-shared [`asym_model::json`] codec (no external
//! dependencies).
//!
//! Perf-trajectory tracking writes one `BENCH_*.json` file per bench target
//! so successive runs (locally or as CI artifacts) can be diffed and
//! plotted, and so CI can gate on drift against the committed baseline. The
//! format is deliberately flat:
//!
//! ```json
//! {
//!   "name": "sim-throughput",
//!   "scale": "smoke",
//!   "backend": "mem",
//!   "entries": [
//!     { "id": "e3-mergesort-k4", "algorithm": "aem-mergesort",
//!       "records": 50000, "seconds": 0.0042,
//!       "records_per_sec": 11904761.9,
//!       "reads": 6250, "writes": 6250, "peak_memory": 16 }
//!   ]
//! }
//! ```
//!
//! `algorithm` is the `Sorter::name` of the unified sort API's adapter that
//! produced the entry (empty for workloads that are not sort jobs); the
//! checker flags an entry whose algorithm silently changed.
//!
//! `reads` / `writes` / `peak_memory` are the *modeled* [`EmStats`] of the
//! run — deterministic for a fixed workload and machine geometry, so the
//! checker ([`compare_reports`]) treats any change as a hard failure (a model
//! regression, not noise), while wall-clock throughput gets a tolerance.
//!
//! Bench binaries accept `--json <path>` (after `cargo bench ... --`) to
//! choose the output file; see [`json_path_from_args`]. The `bench_check`
//! bin (`cargo run -p asym-bench --bin bench_check`) wires
//! [`compare_reports`] into CI.

use asym_model::json::{find, get_f64, get_str, get_u64, number, quote, Json};
use em_sim::EmStats;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One measured workload.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Stable workload identifier (e.g. `e3-mergesort-k4`).
    pub id: String,
    /// The `Sorter::name` of the algorithm the workload ran through the
    /// unified sort API (empty for non-sort workloads like `raw-stream`).
    pub algorithm: String,
    /// Records processed by one run.
    pub records: u64,
    /// Wall-clock seconds for one run.
    pub seconds: f64,
    /// Throughput: `records / seconds`.
    pub records_per_sec: f64,
    /// Modeled block reads of the run (0 when the workload reported none).
    pub reads: u64,
    /// Modeled block writes of the run.
    pub writes: u64,
    /// Modeled peak primary-memory lease, in records.
    pub peak_memory: u64,
}

/// A bench report: a named set of throughput measurements at one scale, on
/// one storage backend.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    name: String,
    scale: String,
    backend: String,
    entries: Vec<BenchEntry>,
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new("", "")
    }
}

impl BenchReport {
    /// An empty report for bench target `name` at `scale`, on the default
    /// `mem` backend (see [`BenchReport::with_backend`]).
    pub fn new(name: impl Into<String>, scale: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            scale: scale.into(),
            backend: "mem".into(),
            entries: Vec::new(),
        }
    }

    /// Tag the report with the storage backend the measurements ran on.
    pub fn with_backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = backend.into();
        self
    }

    /// The scale this report was measured at.
    pub fn scale(&self) -> &str {
        &self.scale
    }

    /// The storage backend this report was measured on.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Record one measurement with no modeled stats (throughput is derived).
    pub fn push(&mut self, id: impl Into<String>, records: u64, seconds: f64) {
        self.push_with_stats(id, records, seconds, EmStats::default());
    }

    /// Record one measurement plus the modeled transfer stats of the run
    /// (no algorithm tag — for workloads that are not sort jobs).
    pub fn push_with_stats(
        &mut self,
        id: impl Into<String>,
        records: u64,
        seconds: f64,
        stats: EmStats,
    ) {
        self.push_sort(id, "", records, seconds, stats);
    }

    /// Record one sort-job measurement: stats plus the `Sorter::name` of
    /// the algorithm that produced them.
    pub fn push_sort(
        &mut self,
        id: impl Into<String>,
        algorithm: impl Into<String>,
        records: u64,
        seconds: f64,
        stats: EmStats,
    ) {
        let records_per_sec = if seconds > 0.0 {
            records as f64 / seconds
        } else {
            0.0
        };
        self.entries.push(BenchEntry {
            id: id.into(),
            algorithm: algorithm.into(),
            records,
            seconds,
            records_per_sec,
            reads: stats.block_reads,
            writes: stats.block_writes,
            peak_memory: stats.peak_memory as u64,
        });
    }

    /// The measurements recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Render the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", quote(&self.name)));
        out.push_str(&format!("  \"scale\": {},\n", quote(&self.scale)));
        out.push_str(&format!("  \"backend\": {},\n", quote(&self.backend)));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"id\": {}, \"algorithm\": {}, \"records\": {}, \"seconds\": {}, \
                 \"records_per_sec\": {}, \"reads\": {}, \"writes\": {}, \"peak_memory\": {} }}{}\n",
                quote(&e.id),
                quote(&e.algorithm),
                e.records,
                number(e.seconds),
                number(e.records_per_sec),
                e.reads,
                e.writes,
                e.peak_memory,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON document to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Parse a report back from its JSON rendering. Tolerates reports written
    /// before a field existed (`backend` defaults to `mem`, `algorithm` to
    /// empty, modeled stats to zero) so freshly-gated code can still read
    /// older committed baselines.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let mut report = BenchReport::new(
            get_str(obj, "name").unwrap_or_default(),
            get_str(obj, "scale").unwrap_or_default(),
        )
        .with_backend(get_str(obj, "backend").unwrap_or_else(|| "mem".into()));
        let entries = find(obj, "entries")
            .and_then(Json::as_arr)
            .ok_or("missing \"entries\" array")?;
        for e in entries {
            let eo = e.as_obj().ok_or("entry must be an object")?;
            report.entries.push(BenchEntry {
                id: get_str(eo, "id").ok_or("entry missing \"id\"")?,
                algorithm: get_str(eo, "algorithm").unwrap_or_default(),
                records: get_u64(eo, "records").ok_or("entry missing \"records\"")?,
                seconds: get_f64(eo, "seconds").ok_or("entry missing \"seconds\"")?,
                records_per_sec: get_f64(eo, "records_per_sec")
                    .ok_or("entry missing \"records_per_sec\"")?,
                reads: get_u64(eo, "reads").unwrap_or(0),
                writes: get_u64(eo, "writes").unwrap_or(0),
                peak_memory: get_u64(eo, "peak_memory").unwrap_or(0),
            });
        }
        Ok(report)
    }

    /// Read and parse a report file.
    pub fn read_from(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Compare a fresh bench report against the committed baseline.
///
/// Returns one human-readable violation per finding (empty = gate passes):
///
/// * scale or backend mismatch — the reports are not comparable at all;
/// * an entry present on one side only — the workload set drifted without a
///   baseline regeneration;
/// * differing `records` or modeled `(reads, writes, peak_memory)` — modeled
///   costs are deterministic, so **any** change is a model regression;
/// * throughput below `(1 - tolerance) ×` baseline — a wall-clock regression
///   beyond noise (`tolerance` is a fraction, e.g. `0.25`).
pub fn compare_reports(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.scale != fresh.scale {
        violations.push(format!(
            "scale mismatch: baseline {:?} vs fresh {:?} (run the bench at the baseline's scale)",
            baseline.scale, fresh.scale
        ));
        return violations;
    }
    if baseline.backend != fresh.backend {
        violations.push(format!(
            "backend mismatch: baseline {:?} vs fresh {:?}",
            baseline.backend, fresh.backend
        ));
        return violations;
    }
    for b in &baseline.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.id == b.id) else {
            violations.push(format!("{}: missing from the fresh run", b.id));
            continue;
        };
        if f.records != b.records {
            violations.push(format!(
                "{}: records changed {} -> {}",
                b.id, b.records, f.records
            ));
            continue;
        }
        // A workload silently switching algorithms is a harness regression
        // even when the counts happen to agree. Baselines written before
        // the field existed carry "" and are not compared.
        if !b.algorithm.is_empty() && f.algorithm != b.algorithm {
            violations.push(format!(
                "{}: algorithm changed {:?} -> {:?}",
                b.id, b.algorithm, f.algorithm
            ));
        }
        for (what, was, now) in [
            ("reads", b.reads, f.reads),
            ("writes", b.writes, f.writes),
            ("peak_memory", b.peak_memory, f.peak_memory),
        ] {
            if was != now {
                violations.push(format!(
                    "{}: modeled {what} changed {was} -> {now} (model regression)",
                    b.id
                ));
            }
        }
        let floor = b.records_per_sec * (1.0 - tolerance);
        if b.records_per_sec > 0.0 && f.records_per_sec < floor {
            violations.push(format!(
                "{}: throughput regressed {:.0} -> {:.0} records/sec ({:+.1}%, tolerance {:.0}%)",
                b.id,
                b.records_per_sec,
                f.records_per_sec,
                100.0 * (f.records_per_sec / b.records_per_sec - 1.0),
                100.0 * tolerance
            ));
        }
    }
    for f in &fresh.entries {
        if !baseline.entries.iter().any(|b| b.id == f.id) {
            violations.push(format!(
                "{}: not in the baseline (regenerate the committed BENCH json)",
                f.id
            ));
        }
    }
    violations
}

/// Scan CLI args for `--json <path>` (cargo passes everything after `--` to
/// the bench binary). Returns `default` when the flag is absent.
pub fn json_path_from_args(args: impl Iterator<Item = String>, default: &str) -> PathBuf {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                return PathBuf::from(p);
            }
        }
    }
    PathBuf::from(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(r: u64, w: u64, peak: usize) -> EmStats {
        EmStats {
            block_reads: r,
            block_writes: w,
            peak_memory: peak,
        }
    }

    #[test]
    fn report_renders_valid_flat_json() {
        let mut r = BenchReport::new("sim-throughput", "smoke");
        r.push_with_stats("raw-stream", 1000, 0.5, stats(125, 125, 16));
        r.push("e3-mergesort-k1", 2000, 0.0);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"sim-throughput\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"backend\": \"mem\""));
        assert!(json.contains("\"id\": \"raw-stream\""));
        assert!(json.contains("\"records_per_sec\": 2000.000000"));
        assert!(json.contains("\"reads\": 125"));
        assert!(json.contains("\"peak_memory\": 16"));
        // Zero-duration run degrades to zero throughput, not inf/NaN.
        assert!(json.contains("\"records_per_sec\": 0.000000"));
        // Exactly one comma between the two entries.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn report_roundtrips_through_the_parser() {
        let mut r = BenchReport::new("sim-throughput", "standard").with_backend("file");
        r.push_with_stats("raw-stream", 2_000_000, 0.052, stats(250_000, 250_000, 16));
        r.push_with_stats("e3-mergesort-k4", 200_000, 0.078, stats(637, 250, 72));
        let parsed = BenchReport::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed.name, r.name);
        assert_eq!(parsed.scale(), "standard");
        assert_eq!(parsed.backend(), "file");
        assert_eq!(parsed.entries().len(), 2);
        assert_eq!(parsed.entries()[0].reads, 250_000);
        assert_eq!(parsed.entries()[1].peak_memory, 72);
        assert!((parsed.entries()[0].seconds - 0.052).abs() < 1e-9);
    }

    #[test]
    fn parser_tolerates_pre_stats_reports() {
        let old = r#"{
  "name": "sim-throughput",
  "scale": "standard",
  "entries": [
    { "id": "raw-stream", "records": 100, "seconds": 0.5, "records_per_sec": 200.0 }
  ]
}"#;
        let parsed = BenchReport::from_json(old).expect("parse");
        assert_eq!(parsed.backend(), "mem");
        assert_eq!(parsed.entries()[0].reads, 0);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("[]").is_err());
        assert!(BenchReport::from_json("{\"name\": \"x\"}").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let mut r = BenchReport::new("t", "smoke");
        r.push_with_stats("a", 100, 0.1, stats(10, 10, 8));
        assert!(compare_reports(&r, &r.clone(), 0.25).is_empty());
    }

    #[test]
    fn algorithm_field_roundtrips_and_gates() {
        let mut base = BenchReport::new("t", "smoke");
        base.push_sort("e3", "aem-mergesort", 100, 0.1, stats(10, 10, 8));
        let json = base.to_json();
        assert!(json.contains("\"algorithm\": \"aem-mergesort\""));
        let parsed = BenchReport::from_json(&json).expect("parse");
        assert_eq!(parsed.entries()[0].algorithm, "aem-mergesort");

        // Same counts, different algorithm: the gate trips.
        let mut fresh = BenchReport::new("t", "smoke");
        fresh.push_sort("e3", "aem-samplesort", 100, 0.1, stats(10, 10, 8));
        let v = compare_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("algorithm changed"), "{v:?}");

        // A pre-field baseline ("" algorithm) does not gate.
        let mut old = BenchReport::new("t", "smoke");
        old.push_with_stats("e3", 100, 0.1, stats(10, 10, 8));
        assert!(compare_reports(&old, &fresh, 0.25).is_empty());
    }

    #[test]
    fn modeled_cost_drift_is_a_hard_failure() {
        let mut base = BenchReport::new("t", "smoke");
        base.push_with_stats("a", 100, 0.1, stats(10, 10, 8));
        let mut fresh = BenchReport::new("t", "smoke");
        fresh.push_with_stats("a", 100, 0.1, stats(10, 11, 8));
        let v = compare_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("writes changed 10 -> 11"), "{v:?}");
    }

    #[test]
    fn throughput_tolerance_is_applied() {
        let mut base = BenchReport::new("t", "smoke");
        base.push_with_stats("a", 1000, 1.0, stats(1, 1, 1)); // 1000 rec/s
        let mut ok = BenchReport::new("t", "smoke");
        ok.push_with_stats("a", 1000, 1.3, stats(1, 1, 1)); // ~769 rec/s, -23%
        assert!(compare_reports(&base, &ok, 0.25).is_empty());
        let mut slow = BenchReport::new("t", "smoke");
        slow.push_with_stats("a", 1000, 1.5, stats(1, 1, 1)); // ~667 rec/s, -33%
        let v = compare_reports(&base, &slow, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("throughput regressed"), "{v:?}");
    }

    #[test]
    fn entry_set_drift_and_scale_mismatch_are_caught() {
        let mut base = BenchReport::new("t", "smoke");
        base.push("a", 100, 0.1);
        base.push("gone", 100, 0.1);
        let mut fresh = BenchReport::new("t", "smoke");
        fresh.push("a", 100, 0.1);
        fresh.push("new", 100, 0.1);
        let v = compare_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("gone: missing")));
        assert!(v.iter().any(|m| m.contains("new: not in the baseline")));

        let other_scale = BenchReport::new("t", "standard");
        let v = compare_reports(&base, &other_scale, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("scale mismatch"));

        let other_backend = BenchReport::new("t", "smoke").with_backend("file");
        let v = compare_reports(&base, &other_backend, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("backend mismatch"));
    }

    #[test]
    fn records_change_short_circuits_stat_noise() {
        let mut base = BenchReport::new("t", "smoke");
        base.push_with_stats("a", 100, 0.1, stats(10, 10, 8));
        let mut fresh = BenchReport::new("t", "smoke");
        fresh.push_with_stats("a", 200, 0.1, stats(20, 20, 8));
        let v = compare_reports(&base, &fresh, 0.25);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("records changed 100 -> 200"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("x\ny"), "\"x\\ny\"");
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap(),
            Json::Str("a\"b\\c\nA".into())
        );
    }

    #[test]
    fn json_flag_is_parsed_with_default_fallback() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            json_path_from_args(
                args(&["--bench", "--json", "out.json"]).into_iter(),
                "d.json"
            ),
            PathBuf::from("out.json")
        );
        assert_eq!(
            json_path_from_args(args(&["--bench"]).into_iter(), "d.json"),
            PathBuf::from("d.json")
        );
        assert_eq!(
            json_path_from_args(args(&["--json"]).into_iter(), "d.json"),
            PathBuf::from("d.json")
        );
    }

    #[test]
    fn write_to_creates_the_file() {
        let mut r = BenchReport::new("t", "smoke");
        r.push("case", 10, 0.1);
        let path = std::env::temp_dir().join("asym_bench_json_test.json");
        r.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, r.to_json());
        assert_eq!(BenchReport::read_from(&path).unwrap(), r);
        let _ = std::fs::remove_file(&path);
    }
}

//! E0 — §3 on the Asymmetric RAM: sorting by balanced-tree insertion does
//! O(n log n) reads but only O(n) writes; a conventional sort writes
//! Θ(n log n). The table shows writes/n flat for the tree sort and growing
//! by ~1 per doubling for the baseline, plus the ω-weighted cost ratio.

use crate::Scale;
use asym_core::ram::pq::{BinaryHeapBaseline, RamPriorityQueue};
use asym_core::ram::tree_sort::{mergesort_baseline, tree_sort_with_counter};
use asym_model::stats::loglog_slope;
use asym_model::table::{f2, f3, Table};
use asym_model::workload::Workload;
use asym_model::{CostModel, MemCounter};

/// Run E0.
pub fn run(scale: Scale) -> Vec<Table> {
    let max_exp = scale.pick(12u32, 17, 19);
    let omega = 16u64;
    let model = CostModel::new(omega);

    let mut sort_table = Table::new(
        format!("E0a: tree sort vs mergesort, uniform keys, omega={omega}"),
        &[
            "n",
            "tree reads/(n lg n)",
            "tree writes/n",
            "merge writes/n",
            "tree cost",
            "merge cost",
            "speedup",
        ],
    );
    let mut tree_writes: Vec<(f64, f64)> = Vec::new();
    for e in (10..=max_exp).step_by(2) {
        let n = 1usize << e;
        let input = Workload::UniformRandom.generate(n, e as u64);
        let ct = MemCounter::new();
        tree_sort_with_counter(&input, &ct);
        let cb = MemCounter::new();
        mergesort_baseline(&input, &cb);
        let nf = n as f64;
        tree_writes.push((nf, ct.writes() as f64));
        sort_table.row(&[
            n.to_string(),
            f3(ct.reads() as f64 / (nf * nf.log2())),
            f3(ct.writes() as f64 / nf),
            f3(cb.writes() as f64 / nf),
            model.cost_of(&ct).to_string(),
            model.cost_of(&cb).to_string(),
            f2(model.cost_of(&cb) as f64 / model.cost_of(&ct) as f64),
        ]);
    }
    sort_table.note(format!(
        "empirical write exponent (log-log slope): {:.3} — the O(n) claim",
        loglog_slope(&tree_writes)
    ));

    let mut pq_table = Table::new(
        "E0b: write-efficient priority queue vs binary heap (n inserts + n delete-mins)",
        &[
            "n",
            "tree writes/op",
            "heap writes/op",
            "tree reads/op",
            "heap reads/op",
        ],
    );
    for e in [10u32, scale.pick(12, 14, 16)] {
        let n = 1usize << e;
        let input = Workload::UniformRandom.generate(n, 7);
        let ct = MemCounter::new();
        let mut pq = RamPriorityQueue::new(ct.clone());
        for &r in &input {
            pq.insert(r);
        }
        while pq.delete_min().is_some() {}
        let ch = MemCounter::new();
        let mut heap = BinaryHeapBaseline::new(ch.clone());
        for &r in &input {
            heap.insert(r);
        }
        while heap.delete_min().is_some() {}
        let ops = (2 * n) as f64;
        pq_table.row(&[
            n.to_string(),
            f3(ct.writes() as f64 / ops),
            f3(ch.writes() as f64 / ops),
            f3(ct.reads() as f64 / ops),
            f3(ch.reads() as f64 / ops),
        ]);
    }
    pq_table.note("tree writes/op stays O(1); heap writes/op grows with lg n");
    vec![sort_table, pq_table]
}

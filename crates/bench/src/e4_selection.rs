//! E4 — Lemma 4.2: the k-pass selection sort base case uses at most
//! ⌈n/M⌉·⌈n/B⌉ ≤ k⌈n/B⌉ reads and exactly ⌈n/B⌉ writes. Checked as exact
//! inequalities across machine shapes.

use crate::Scale;
use asym_core::em::selection_sort;
use asym_model::table::Table;
use asym_model::workload::Workload;
use em_sim::{EmConfig, EmVec};

/// Run E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E4: Lemma 4.2 exact bounds (reads <= passes*(n/B), writes == n/B)",
        &[
            "M",
            "B",
            "n",
            "passes",
            "reads",
            "read bound",
            "writes",
            "exact?",
        ],
    );
    let shapes: &[(usize, usize)] = &[(32, 4), (64, 8), (128, 16), (256, 16)];
    let factor = scale.pick(2usize, 5, 9);
    for &(m, b) in shapes {
        for mult in 1..=factor {
            let n = mult * m - mult; // deliberately unaligned
            let em = crate::machine(EmConfig::new(m, b, 8).with_slack(2 * b));
            let input = Workload::Reversed.generate(n, 0xE4);
            let v = EmVec::stage(&em, &input);
            em.reset_stats();
            let sorted = selection_sort(&em, &v, mult).expect("sort");
            assert_eq!(sorted.len(), n);
            let s = em.stats();
            let blocks = n.div_ceil(b) as u64;
            let passes = n.div_ceil(m) as u64;
            let ok = s.block_reads <= passes * blocks && s.block_writes == blocks;
            assert!(ok, "bound violated at M={m} B={b} n={n}");
            t.row(&[
                m.to_string(),
                b.to_string(),
                n.to_string(),
                passes.to_string(),
                s.block_reads.to_string(),
                (passes * blocks).to_string(),
                s.block_writes.to_string(),
                "yes".into(),
            ]);
        }
    }
    t.note("'exact?' asserts the lemma inequalities, not just the O-shape");
    vec![t]
}

//! E2 — Lemma 3.1: m records split into ⌈m^{1/3}⌉ ordered buckets with max
//! bucket < m^{2/3} log m, in O(m log m) reads and O(m) writes.

use crate::Scale;
use asym_core::pram::lemma31_partition;
use asym_model::table::{f3, Table};
use asym_model::workload::Workload;

/// Run E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let omega = 8u64;
    let max_exp = scale.pick(12u32, 16, 18);
    let mut t = Table::new(
        "E2: Lemma 3.1 partition quality and cost",
        &[
            "m",
            "buckets",
            "max bucket",
            "bound m^(2/3) lg m",
            "headroom",
            "reads/(m lg m)",
            "writes/m",
        ],
    );
    for e in (9..=max_exp).step_by(3) {
        let m = 1usize << e;
        let input = Workload::UniformRandom.generate(m, e as u64);
        let (buckets, cost, stats) = lemma31_partition(&input, omega);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), m);
        let mf = m as f64;
        t.row(&[
            m.to_string(),
            stats.buckets.to_string(),
            stats.max_bucket.to_string(),
            stats.bound.to_string(),
            f3(stats.bound as f64 / stats.max_bucket.max(1) as f64),
            f3(cost.reads as f64 / (mf * mf.log2())),
            f3(cost.writes as f64 / mf),
        ]);
    }
    t.note("headroom > 1 on every row = the lemma's bucket-size guarantee holds");
    vec![t]
}

//! Differential suite: `asym-kv` against an in-RAM `BTreeMap` reference.
//!
//! Randomized put/overwrite/delete/get/scan streams must produce
//! byte-identical answers from the LSM engine and the reference map, on
//! whichever backend `ASYM_BENCH_BACKEND` selects (the CI `kv-smoke`
//! matrix runs mem and file), under both compaction styles. Along the
//! way, every compaction the engine ran must have been admitted through
//! the sort service with its measured `EmStats` inside the `predict()`
//! envelope — the same bound `tests/predict_bounds.rs` pins for direct
//! sorts, here re-checked at the system boundary.

use asym_kv::{AsymKv, CompactionService, CompactionStyle, KvConfig, Policy};
use asym_serve::{serve, ServiceConfig, SortService};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn small_cfg(style: CompactionStyle, t: usize, omega: u64) -> KvConfig {
    let mut cfg = KvConfig::new(omega);
    cfg.m = 64;
    cfg.b = 4;
    cfg.memtable_cap = 8; // tiny: compactions fire constantly
    cfg.policy = Policy::fixed(style, t);
    cfg.from_env().expect("valid backend env")
}

/// Check every compaction's measured stats against its admission-time
/// prediction (reads/writes are envelopes, peak memory is a hard bound).
fn assert_envelopes(kv: &AsymKv, label: &str) {
    for c in kv.compactions() {
        assert!(
            c.stats.block_reads <= c.predicted.reads,
            "{label}: reads {} > predicted {} in {c:?}",
            c.stats.block_reads,
            c.predicted.reads
        );
        assert!(
            c.stats.block_writes <= c.predicted.writes,
            "{label}: writes {} > predicted {} in {c:?}",
            c.stats.block_writes,
            c.predicted.writes
        );
        assert!(
            c.stats.peak_memory <= c.predicted.peak_memory,
            "{label}: peak {} > predicted {} in {c:?}",
            c.stats.peak_memory,
            c.predicted.peak_memory
        );
    }
}

/// Apply one encoded op to both stores, comparing answers as we go.
fn apply(kv: &mut AsymKv, model: &mut BTreeMap<u64, u64>, op: u8, key: u64, value: u64) {
    match op {
        0 | 1 => {
            kv.put(key, value).expect("put");
            model.insert(key, value);
        }
        2 => {
            kv.delete(key).expect("delete");
            model.remove(&key);
        }
        3 => {
            assert_eq!(kv.get(key).expect("get"), model.get(&key).copied());
        }
        _ => {
            // Scan a window around the key.
            let hi = key.saturating_add(8);
            let got = kv.scan(key, hi).expect("scan");
            let want: Vec<(u64, u64)> = model.range(key..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_matches_btreemap(
        ops in prop::collection::vec((0u8..5, 0u64..48, 0u64..1_000_000), 1..300),
        style_pick in 0u8..2,
        t in 2usize..4,
    ) {
        let style = if style_pick == 0 {
            CompactionStyle::Leveling
        } else {
            CompactionStyle::Tiering
        };
        let mut kv = AsymKv::new(small_cfg(style, t, 8)).expect("engine");
        let mut model = BTreeMap::new();
        for &(op, key, value) in &ops {
            apply(&mut kv, &mut model, op, key, value);
        }
        // Final sweep: every answer byte-identical.
        for key in 0..48u64 {
            prop_assert_eq!(kv.get(key).expect("get"), model.get(&key).copied());
        }
        let got = kv.scan(0, u64::MAX - 1).expect("scan");
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want, "full scans must agree");
        assert_envelopes(&kv, style.name());
    }
}

#[test]
fn long_stream_compacts_within_envelopes_under_both_styles() {
    for (style, t) in [
        (CompactionStyle::Leveling, 2),
        (CompactionStyle::Leveling, 4),
        (CompactionStyle::Tiering, 2),
        (CompactionStyle::Tiering, 4),
    ] {
        for omega in [1, 8, 32] {
            let mut kv = AsymKv::new(small_cfg(style, t, omega)).expect("engine");
            let mut model = BTreeMap::new();
            let mut x = 0x2026_u64;
            for _ in 0..1_500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = x % 97;
                match x % 7 {
                    0 => {
                        kv.delete(key).expect("delete");
                        model.remove(&key);
                    }
                    1..=4 => {
                        kv.put(key, x).expect("put");
                        model.insert(key, x);
                    }
                    _ => {
                        assert_eq!(kv.get(key).expect("get"), model.get(&key).copied())
                    }
                }
            }
            let label = format!("{}/t={t}/omega={omega}", style.name());
            assert!(!kv.compactions().is_empty(), "{label}: stream must compact");
            assert_envelopes(&kv, &label);
            let got = kv.scan(0, u64::MAX - 1).expect("scan");
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "{label}");
        }
    }
}

/// The HTTP flag: the same engine pointed at a real sort server over
/// loopback must agree answer-for-answer and stat-for-stat with the
/// embedded-service engine — compactions ride `POST /jobs` and the
/// `GET /jobs/<id>/wait` long-poll through the existing wire codecs.
#[test]
fn http_compactions_match_in_process() {
    let dir = std::env::temp_dir().join(format!("asym-kv-http-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("server dir");
    let service = SortService::start(ServiceConfig::new(1, 64 << 20, dir)).expect("service");
    let mut server = serve(service, "127.0.0.1:0").expect("bind loopback");

    let cfg = || small_cfg(CompactionStyle::Tiering, 2, 8);
    let mut local = AsymKv::new(cfg()).expect("local engine");
    let mut remote =
        AsymKv::with_service(cfg(), CompactionService::http(server.addr())).expect("http engine");
    assert_eq!(remote.service_name(), "http");

    let mut x = 7_u64;
    for _ in 0..400 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 53;
        match x % 5 {
            0 => {
                local.delete(key).expect("delete");
                remote.delete(key).expect("delete");
            }
            _ => {
                local.put(key, x).expect("put");
                remote.put(key, x).expect("put");
            }
        }
    }
    assert!(
        !remote.compactions().is_empty(),
        "compactions must have crossed the wire"
    );
    for key in 0..53u64 {
        assert_eq!(
            local.get(key).expect("get"),
            remote.get(key).expect("get"),
            "key {key}"
        );
    }
    assert_eq!(
        local.scan(0, u64::MAX - 1).expect("scan"),
        remote.scan(0, u64::MAX - 1).expect("scan")
    );
    // Same spec, same inputs, same deterministic sorter: the jobs' measured
    // stats must be identical transport to transport.
    assert_eq!(local.compactions().len(), remote.compactions().len());
    for (a, b) in local.compactions().iter().zip(remote.compactions()) {
        assert_eq!(a.stats, b.stats, "modeled I/O is transport-invariant");
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.input_records, b.input_records);
        assert_eq!(a.output_records, b.output_records);
    }
    assert_eq!(
        local.total_stats(),
        remote.total_stats(),
        "engine + compaction totals agree"
    );
    assert_envelopes(&remote, "http");
    server.shutdown();
}

/// Checkpointed compactions: with `checkpoint_compactions` on, every
/// compaction runs through the service's staged path (resumable manifests
/// in the WAL) — and the store's answers are byte-identical to the plain
/// engine's, with measured stats still inside the (staged) admission
/// envelope. The modeled cost of the staged path differs from the
/// single-shot path by design, so only answers are compared across the
/// two engines, not totals.
#[test]
fn checkpointed_compactions_answer_identically() {
    let mut plain = AsymKv::new(small_cfg(CompactionStyle::Leveling, 2, 8)).expect("engine");
    let mut staged_cfg = small_cfg(CompactionStyle::Leveling, 2, 8);
    staged_cfg.checkpoint_compactions = true;
    let mut staged = AsymKv::new(staged_cfg).expect("engine");
    let mut model = BTreeMap::new();

    let mut x = 0xC0FFEE_u64;
    for _ in 0..1_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 71;
        match x % 6 {
            0 => {
                plain.delete(key).expect("delete");
                staged.delete(key).expect("delete");
                model.remove(&key);
            }
            _ => {
                plain.put(key, x).expect("put");
                staged.put(key, x).expect("put");
                model.insert(key, x);
            }
        }
    }
    assert!(
        !staged.compactions().is_empty(),
        "the stream must have compacted through the staged path"
    );
    for key in 0..71u64 {
        let want = model.get(&key).copied();
        assert_eq!(plain.get(key).expect("get"), want, "plain, key {key}");
        assert_eq!(staged.get(key).expect("get"), want, "staged, key {key}");
    }
    assert_eq!(
        plain.scan(0, u64::MAX - 1).expect("scan"),
        staged.scan(0, u64::MAX - 1).expect("scan"),
        "checkpointing compactions must not change a single answer"
    );
    // Same merges, same records in, same records out — phase boundaries
    // are invisible to the merged output.
    assert_eq!(plain.compactions().len(), staged.compactions().len());
    for (a, b) in plain.compactions().iter().zip(staged.compactions()) {
        assert_eq!(a.input_records, b.input_records);
        assert_eq!(a.output_records, b.output_records);
    }
    assert_envelopes(&staged, "checkpointed");
}

/// A compaction bigger than the service budget must surface as a typed
/// rejection, not a hang or a silent skip.
#[test]
fn oversized_compactions_are_rejected_with_both_sides() {
    let mut cfg = small_cfg(CompactionStyle::Tiering, 2, 8);
    cfg.service_budget_bytes = 16; // nothing fits
    let mut kv = AsymKv::new(cfg).expect("engine");
    let mut err = None;
    for i in 0..64u64 {
        if let Err(e) = kv.put(i, i) {
            err = Some(e);
            break;
        }
    }
    match err {
        Some(asym_kv::KvError::CompactionRejected {
            predicted,
            available,
        }) => {
            assert!(predicted > 16, "predicted {predicted} B cannot fit");
            assert!(available <= 16);
        }
        other => panic!("expected CompactionRejected, got {other:?}"),
    }
}

//! Flat-store baselines for the LSM engine (and the `kv_store` example):
//! a sorted array with counted record moves, and the one shared
//! binary-search charging rule.
//!
//! The rule ([`binary_search_reads`]): searching `len` sorted records
//! costs `ilog2(len) + 1` reads — and **0 when `len == 0`**, because a
//! search that inspects nothing reads nothing. The old in-example store
//! charged `(len.max(1)).ilog2() + 1`, i.e. 1 read on an empty store,
//! inconsistently with the rb-tree dictionary (which descends zero nodes
//! and charges zero). Every probe path in this crate — this baseline and
//! the engine's block-granular run probes — now follows the
//! charge-what-you-touch rule.

use asym_model::MemCounter;

/// Reads charged for one binary search over `len` sorted records:
/// `ilog2(len) + 1` probes, except an empty store costs nothing.
pub fn binary_search_reads(len: usize) -> u64 {
    if len == 0 {
        0
    } else {
        u64::from(len.ilog2()) + 1
    }
}

/// Sorted-array store with counted record moves — the "just keep it
/// compact" strawman from §3's dictionary discussion: O(log n) read
/// probes but Θ(n) record moves per update, which an ω-weighted memory
/// punishes.
pub struct SortedArrayStore {
    data: Vec<(u64, u64)>,
    counter: MemCounter,
}

impl SortedArrayStore {
    /// An empty store charging to `counter`.
    pub fn new(counter: MemCounter) -> Self {
        Self {
            data: Vec::new(),
            counter,
        }
    }

    /// Records currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert or overwrite; an insert shifts the tail, one move per
    /// record.
    pub fn put(&mut self, k: u64, v: u64) {
        self.counter.add_reads(binary_search_reads(self.data.len()));
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        if pos < self.data.len() && self.data[pos].0 == k {
            self.counter.write();
            self.data[pos].1 = v;
        } else {
            let moved = (self.data.len() - pos) as u64;
            self.counter.add_reads(moved);
            self.counter.add_writes(moved + 1);
            self.data.insert(pos, (k, v));
        }
    }

    /// Point lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        self.counter.add_reads(binary_search_reads(self.data.len()));
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        (pos < self.data.len() && self.data[pos].0 == k).then(|| self.data[pos].1)
    }

    /// Remove; compacting the tail moves every later record once.
    pub fn delete(&mut self, k: u64) -> bool {
        self.counter.add_reads(binary_search_reads(self.data.len()));
        let pos = self.data.partition_point(|&(dk, _)| dk < k);
        if pos < self.data.len() && self.data[pos].0 == k {
            let moved = (self.data.len() - pos - 1) as u64;
            self.counter.add_reads(moved);
            self.counter.add_writes(moved);
            self.data.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_probes_cost_nothing() {
        assert_eq!(binary_search_reads(0), 0, "nothing inspected, nothing read");
        assert_eq!(binary_search_reads(1), 1);
        assert_eq!(binary_search_reads(2), 2);
        assert_eq!(binary_search_reads(1024), 11);

        let counter = MemCounter::new();
        let store = SortedArrayStore::new(counter.clone());
        assert_eq!(store.get(7), None);
        assert_eq!(
            (counter.reads(), counter.writes()),
            (0, 0),
            "the old example charged 1 read here"
        );
    }

    #[test]
    fn matches_a_btreemap_reference() {
        let counter = MemCounter::new();
        let mut store = SortedArrayStore::new(counter.clone());
        let mut reference = std::collections::BTreeMap::new();
        let mut x = 9_u64;
        for _ in 0..2_000 {
            // xorshift stream keeps the test dependency-free.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 97;
            match x % 5 {
                0 => assert_eq!(store.delete(k), reference.remove(&k).is_some()),
                1 | 2 => {
                    store.put(k, x);
                    reference.insert(k, x);
                }
                _ => assert_eq!(store.get(k), reference.get(&k).copied()),
            }
        }
        assert_eq!(store.len(), reference.len());
        assert!(counter.reads() > 0 && counter.writes() > 0);
    }
}

//! The LSM engine: a bounded memtable over
//! [`BlockStore`](em_sim::BlockStore)-backed sorted runs, with every merge
//! submitted to the sort service as a priced job.
//!
//! # Data layout
//!
//! User data is `(key, value)` pairs of `u64`s. The engine assigns each
//! update a globally monotonic sequence number and stores index entries as
//! the workspace's fixed 16-byte [`Record`]s — `key` is the user key,
//! `payload` is the sequence number — so runs sort on the existing
//! machinery unchanged (the sorters also handle duplicate records exactly,
//! but sequence numbers keep index entries distinct anyway, which the
//! engine itself relies on for seqno-indexed value-log lookups). Values
//! (and tombstones) live in an in-memory value log
//! indexed by sequence number; within any set of entries for one key, the
//! largest sequence number is the live one.
//!
//! # What gets charged where
//!
//! The engine owns an [`EmMachine`] and follows the workspace contract:
//! costs are charged *before* the store is touched, so `EmStats` are
//! backend-invariant.
//!
//! - The memtable is primary memory: it holds a permanent lease of
//!   `memtable_cap` records and its probes are free.
//! - A flush writes `ceil(n/B)` blocks through a charged [`EmWriter`].
//! - A point lookup keeps per-block *fence pointers* (each block's first
//!   key) in primary memory, the snippets' standard assumption: fences
//!   pick the single candidate block per overlapping run, and reading
//!   that block is one charged read. Runs skipped by their min/max fences
//!   — and the empty engine — charge exactly 0, the unified
//!   charge-what-you-touch rule the old `examples/kv_store.rs` baseline
//!   got wrong (it charged `ilog2(max(1, len))+1` even on an empty store;
//!   see [`crate::baseline`]).
//! - A **compaction's I/O is the sort job's**: the engine gathers run
//!   contents uncharged, ships them inline to `asym-serve`, and installs
//!   the returned output uncharged. The job stages, sorts, and charges the
//!   merge's reads and writes on its own machine, and those measured
//!   [`EmStats`] come back in the job telemetry — double-charging the same
//!   transfer on two machines would count the merge twice. Engine-side
//!   totals live in [`AsymKv::total_stats`]: engine stats merged with
//!   every compaction job's stats.

use crate::policy::{CompactionStyle, Policy};
use crate::submit::CompactionService;
use crate::KvError;
use asym_core::sort::{Algorithm, CostEstimate, SortSpec};
use asym_model::{Record, MAX_KEY};
use asym_serve::{JobId, JobRequest};
use em_sim::{Backend, EmConfig, EmMachine, EmStats, EmVec, EmWriter, MemLease};
use std::collections::BTreeMap;

/// Engine geometry and policy. `m`/`b`/`omega` define the AEM machine the
/// runs live on *and* the [`SortSpec`] every compaction job is built from,
/// so the engine and its jobs price I/O identically.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Primary memory in records (must hold the memtable plus one block).
    pub m: usize,
    /// Block size in records.
    pub b: usize,
    /// Write cost multiplier.
    pub omega: u64,
    /// Records buffered in the memtable before a flush.
    pub memtable_cap: usize,
    /// Compaction policy (style + size ratio).
    pub policy: Policy,
    /// Storage backend for the runs and the compaction jobs.
    pub backend: Backend,
    /// Admission budget handed to the embedded service (summed predicted
    /// peak bytes in flight).
    pub service_budget_bytes: u64,
    /// Merge fan-in for compaction jobs; `None` derives `k = min(ω, M/B)`
    /// (the paper's ω-balanced choice, clamped to the geometry).
    pub sort_k: Option<usize>,
    /// Route compactions through the service's checkpointed (staged)
    /// execution path: every completed phase lands in the WAL as a
    /// resumable manifest, so a crashed compaction never re-pays its
    /// ω-weighted writes. Off by default — the staged path's modeled
    /// costs include the per-phase envelope, so benchmarks pinning exact
    /// counts should leave this off.
    pub checkpoint_compactions: bool,
}

impl KvConfig {
    /// Defaults for a given ω: 4096-record primary memory, 64-record
    /// blocks, 1024-record memtable, and the ω-aware policy from
    /// [`Policy::for_omega`].
    pub fn new(omega: u64) -> KvConfig {
        KvConfig {
            m: 4096,
            b: 64,
            omega,
            memtable_cap: 1024,
            policy: Policy::for_omega(omega),
            backend: Backend::Mem,
            service_budget_bytes: 64 << 20,
            sort_k: None,
            checkpoint_compactions: false,
        }
    }

    /// Absorb `ASYM_BENCH_BACKEND` (the CI matrix knob), if set.
    pub fn from_env(mut self) -> Result<KvConfig, KvError> {
        if let Some(backend) = asym_core::sort::env_backend().map_err(KvError::Spec)? {
            self.backend = backend;
        }
        Ok(self)
    }

    /// Override the policy, fluently.
    pub fn policy(mut self, policy: Policy) -> KvConfig {
        self.policy = policy;
        self
    }

    fn validate(&self) -> Result<(), KvError> {
        if self.b == 0 || self.m == 0 || self.omega == 0 {
            return Err(KvError::Config("m, b, omega must be positive".into()));
        }
        if self.memtable_cap == 0 {
            return Err(KvError::Config("memtable capacity must be positive".into()));
        }
        if self.memtable_cap + self.b > self.m {
            return Err(KvError::Config(format!(
                "memtable ({}) plus one block ({}) must fit primary memory ({})",
                self.memtable_cap, self.b, self.m
            )));
        }
        if self.policy.t < 2 {
            return Err(KvError::Config("size ratio must be at least 2".into()));
        }
        Ok(())
    }
}

/// One immutable sorted run: its records on disk plus in-memory fences.
struct Run {
    vec: EmVec,
    /// Smallest / largest user key in the run, so a lookup skips
    /// non-overlapping runs without I/O.
    min: u64,
    max: u64,
    /// First key of each block — the in-RAM fence pointers that pick the
    /// one candidate block per probe.
    fences: Vec<u64>,
}

impl Run {
    /// Wrap sorted `records` already staged as `vec`, deriving fences at
    /// block size `b`.
    fn new(vec: EmVec, records: &[Record], b: usize) -> Run {
        debug_assert!(!records.is_empty());
        Run {
            min: records.first().expect("non-empty").key,
            max: records.last().expect("non-empty").key,
            fences: records.chunks(b).map(|c| c[0].key).collect(),
            vec,
        }
    }
}

/// One compaction, as priced and as measured — the admission audit trail
/// the differential suite checks envelope-by-envelope.
#[derive(Clone, Debug)]
pub struct CompactionRecord {
    /// The service-assigned job id.
    pub job_id: JobId,
    /// Source level of the merge.
    pub level: usize,
    /// Records shipped to the sort job.
    pub input_records: usize,
    /// Records installed after collapsing versions and dropping bottom
    /// tombstones.
    pub output_records: usize,
    /// `predict()` at admission: the envelope.
    pub predicted: CostEstimate,
    /// The job's measured stats, from its telemetry.
    pub stats: EmStats,
}

/// The ω-aware LSM engine. See the module docs for layout and charging.
pub struct AsymKv {
    cfg: KvConfig,
    machine: EmMachine,
    /// Key → sequence number of the latest update. Lives inside the
    /// permanent primary-memory lease below.
    memtable: BTreeMap<u64, u64>,
    _memtable_lease: MemLease,
    /// Sequence → value (`None` = tombstone), append-only.
    values: Vec<Option<u64>>,
    /// `levels[i]` = runs at level i, oldest first.
    levels: Vec<Vec<Run>>,
    service: CompactionService,
    compactions: Vec<CompactionRecord>,
}

impl AsymKv {
    /// Open an engine with an embedded, single-worker sort service.
    pub fn new(cfg: KvConfig) -> Result<AsymKv, KvError> {
        let service = CompactionService::in_process(cfg.service_budget_bytes)?;
        AsymKv::with_service(cfg, service)
    }

    /// Open an engine whose compactions go to `service` — in particular
    /// [`CompactionService::http`] for a remote sort server.
    pub fn with_service(cfg: KvConfig, service: CompactionService) -> Result<AsymKv, KvError> {
        cfg.validate()?;
        let machine = EmMachine::with_backend(EmConfig::new(cfg.m, cfg.b, cfg.omega), cfg.backend)
            .map_err(KvError::Model)?;
        let lease = machine.lease(cfg.memtable_cap).map_err(KvError::Model)?;
        Ok(AsymKv {
            cfg,
            machine,
            memtable: BTreeMap::new(),
            _memtable_lease: lease,
            values: Vec::new(),
            levels: Vec::new(),
            service,
            compactions: Vec::new(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Insert or overwrite. May flush and cascade compactions.
    pub fn put(&mut self, key: u64, value: u64) -> Result<(), KvError> {
        self.write(key, Some(value))
    }

    /// Delete (records a tombstone; absent keys still get one, since an
    /// older run may hold the key). May flush and cascade compactions.
    pub fn delete(&mut self, key: u64) -> Result<(), KvError> {
        self.write(key, None)
    }

    fn write(&mut self, key: u64, value: Option<u64>) -> Result<(), KvError> {
        if key > MAX_KEY {
            return Err(KvError::KeyOutOfRange(key));
        }
        let seq = self.values.len() as u64;
        self.values.push(value);
        self.memtable.insert(key, seq);
        if self.memtable.len() >= self.cfg.memtable_cap {
            self.flush()?;
        }
        Ok(())
    }

    /// Point lookup: memtable first (free — primary memory), then runs
    /// newest-to-oldest with charged block-granular binary searches. The
    /// first version found wins; a tombstone answers `None` definitively.
    pub fn get(&self, key: u64) -> Result<Option<u64>, KvError> {
        if key > MAX_KEY {
            return Err(KvError::KeyOutOfRange(key));
        }
        if let Some(&seq) = self.memtable.get(&key) {
            return Ok(self.values[seq as usize]);
        }
        for level in &self.levels {
            for run in level.iter().rev() {
                if key < run.min || key > run.max {
                    continue;
                }
                if let Some(seq) = self.probe_run(run, key)? {
                    return Ok(self.values[seq as usize]);
                }
            }
        }
        Ok(None)
    }

    /// Range scan over `[lo, hi]`, merged across the memtable and every
    /// overlapping run (newest version per key, tombstones elided),
    /// returned in key order.
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>, KvError> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let mut best: BTreeMap<u64, u64> = BTreeMap::new();
        let mut fold = |key: u64, seq: u64| {
            let e = best.entry(key).or_insert(seq);
            *e = (*e).max(seq);
        };
        for (&key, &seq) in self.memtable.range(lo..=hi) {
            fold(key, seq);
        }
        for level in &self.levels {
            for run in level {
                self.scan_run(run, lo, hi, &mut fold)?;
            }
        }
        Ok(best
            .into_iter()
            .filter_map(|(key, seq)| self.values[seq as usize].map(|v| (key, v)))
            .collect())
    }

    /// Force the memtable down to level 0 (and run any due compactions).
    /// A no-op when the memtable is empty.
    pub fn flush(&mut self) -> Result<(), KvError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let records: Vec<Record> = self
            .memtable
            .iter()
            .map(|(&key, &seq)| Record::new(key, seq))
            .collect();
        let mut writer = EmWriter::new(&self.machine).map_err(KvError::Model)?;
        writer.extend(records.iter().copied());
        let run = Run::new(writer.finish(), &records, self.cfg.b);
        self.level_mut(0).push(run);
        self.memtable.clear();
        self.maybe_compact()
    }

    /// Engine-side modeled I/O (flushes + probes; compactions excluded —
    /// they are the jobs').
    pub fn engine_stats(&self) -> EmStats {
        self.machine.stats()
    }

    /// Every compaction this engine has run, in order.
    pub fn compactions(&self) -> &[CompactionRecord] {
        &self.compactions
    }

    /// Engine stats merged with every compaction job's measured stats:
    /// the total modeled I/O of the workload.
    pub fn total_stats(&self) -> EmStats {
        EmStats::merge_all(
            std::iter::once(self.engine_stats()).chain(self.compactions.iter().map(|c| c.stats)),
        )
    }

    /// The AEM objective over [`AsymKv::total_stats`]:
    /// `reads + ω·writes`.
    pub fn total_cost(&self) -> u64 {
        let s = self.total_stats();
        s.block_reads + self.cfg.omega * s.block_writes
    }

    /// Records resident in the memtable right now.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Runs per level, shallow to deep (diagnostics and tests).
    pub fn run_counts(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Which transport compactions use ("in-process" or "http").
    pub fn service_name(&self) -> &'static str {
        self.service.name()
    }

    // -- internals ----------------------------------------------------------

    fn level_mut(&mut self, i: usize) -> &mut Vec<Run> {
        while self.levels.len() <= i {
            self.levels.push(Vec::new());
        }
        &mut self.levels[i]
    }

    /// Leveling capacity of level `i`: `memtable_cap · T^(i+1)`.
    fn capacity(&self, i: usize) -> usize {
        self.cfg
            .memtable_cap
            .saturating_mul(self.cfg.policy.t.saturating_pow(i as u32 + 1))
    }

    fn maybe_compact(&mut self) -> Result<(), KvError> {
        match self.cfg.policy.style {
            CompactionStyle::Tiering => {
                let t = self.cfg.policy.t;
                let mut i = 0;
                while i < self.levels.len() {
                    if self.levels[i].len() >= t {
                        let runs = std::mem::take(&mut self.levels[i]);
                        if let Some(run) = self.merge_runs(i, runs, i + 1)? {
                            self.level_mut(i + 1).push(run);
                        }
                    }
                    i += 1;
                }
            }
            CompactionStyle::Leveling => {
                let mut i = 0;
                while i < self.levels.len() {
                    // Absorb a freshly flushed (or spilled-into) multi-run
                    // level back to one run.
                    if self.levels[i].len() > 1 {
                        let runs = std::mem::take(&mut self.levels[i]);
                        if let Some(run) = self.merge_runs(i, runs, i)? {
                            self.levels[i].push(run);
                        }
                    }
                    // Spill an over-capacity run down, merging with the
                    // next level's resident run (the T× rewrite that makes
                    // leveling write-expensive).
                    let len = self.levels[i].first().map_or(0, |r| r.vec.len());
                    if len > self.capacity(i) {
                        let mut runs = std::mem::take(&mut self.levels[i]);
                        self.level_mut(i + 1);
                        runs.extend(std::mem::take(&mut self.levels[i + 1]));
                        if let Some(run) = self.merge_runs(i, runs, i + 1)? {
                            self.levels[i + 1].push(run);
                        }
                    }
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Merge `runs` via one submitted sort job; the result (if any) is
    /// destined for `into_level`, which decides tombstone garbage
    /// collection.
    fn merge_runs(
        &mut self,
        source_level: usize,
        runs: Vec<Run>,
        into_level: usize,
    ) -> Result<Option<Run>, KvError> {
        // Gather uncharged: the job stages this same data and charges the
        // merge's reads itself (module docs, "what gets charged where").
        let mut input = Vec::new();
        for run in &runs {
            input.extend(run.vec.read_all_uncharged(&self.machine));
        }
        for run in runs {
            run.vec.free(&self.machine);
        }
        if input.is_empty() {
            return Ok(None);
        }
        let input_records = input.len();
        let request = JobRequest::inline(self.compaction_spec()?, input)
            .checkpointed(self.cfg.checkpoint_compactions);
        let predicted = request.predict();
        let result = self.service.submit_and_wait(request)?;

        // Newest version per key wins (sorted by (key, seq), so the last
        // entry of each key group is the newest). Tombstones are dropped
        // only when nothing older can exist at or below the destination —
        // under tiering the destination level may still hold older runs,
        // and GC'ing a tombstone above those would resurrect the key.
        let is_bottom = self
            .levels
            .get(into_level..)
            .is_none_or(|deeper| deeper.iter().all(Vec::is_empty));
        let mut merged: Vec<Record> = Vec::with_capacity(result.outcome.output.len());
        for r in result.outcome.output.iter().copied() {
            if merged.last().is_some_and(|m| m.key == r.key) {
                merged.pop();
            }
            merged.push(r);
        }
        if is_bottom {
            merged.retain(|r| self.values[r.payload as usize].is_some());
        }
        self.compactions.push(CompactionRecord {
            job_id: result.id,
            level: source_level,
            input_records,
            output_records: merged.len(),
            predicted,
            stats: result.outcome.stats,
        });
        if merged.is_empty() {
            return Ok(None);
        }
        // Install uncharged: the job already charged the merged output's
        // writes when its sort emitted these records.
        Ok(Some(Run::new(
            EmVec::stage(&self.machine, &merged),
            &merged,
            self.cfg.b,
        )))
    }

    /// The job description every compaction submits: the engine's own
    /// geometry, mergesort, fan-in `k = min(ω, M/B)` unless pinned.
    fn compaction_spec(&self) -> Result<SortSpec, KvError> {
        let k = self.cfg.sort_k.unwrap_or_else(|| {
            (self.cfg.omega as usize).clamp(1, (self.cfg.m / self.cfg.b).max(1))
        });
        SortSpec::builder(Algorithm::Mergesort, self.cfg.m, self.cfg.b, self.cfg.omega)
            .k(k)
            .backend(self.cfg.backend)
            .build()
            .map_err(KvError::Spec)
    }

    /// Probe one run for `key`: the in-RAM fences pick the single block
    /// that could hold it; reading that block is the one charged read. A
    /// run skipped by its min/max fences costs 0.
    fn probe_run(&self, run: &Run, key: u64) -> Result<Option<u64>, KvError> {
        // Last fence at or below the key names the candidate block; the
        // caller already checked key >= run.min == fences[0].
        let idx = run.fences.partition_point(|&f| f <= key).saturating_sub(1);
        let _lease = self.machine.lease(self.cfg.b).map_err(KvError::Model)?;
        let mut buf = Vec::with_capacity(self.cfg.b);
        self.machine
            .read_block_into(run.vec.block_ids()[idx], &mut buf)
            .map_err(KvError::Model)?;
        let pos = buf.partition_point(|r| r.key < key);
        Ok(buf.get(pos).filter(|r| r.key == key).map(|r| r.payload))
    }

    /// Feed `fold` every `(key, seq)` of `run` within `[lo, hi]`: fences
    /// pick the first overlapping block for free, then each overlapping
    /// block is one charged sequential read.
    fn scan_run(
        &self,
        run: &Run,
        lo: u64,
        hi: u64,
        fold: &mut impl FnMut(u64, u64),
    ) -> Result<(), KvError> {
        if run.max < lo || run.min > hi {
            return Ok(());
        }
        let _lease = self.machine.lease(self.cfg.b).map_err(KvError::Model)?;
        let mut buf = Vec::with_capacity(self.cfg.b);
        let ids = run.vec.block_ids();
        let start = run.fences.partition_point(|&f| f <= lo).saturating_sub(1);
        for id in &ids[start..] {
            self.machine
                .read_block_into(*id, &mut buf)
                .map_err(KvError::Model)?;
            if buf.first().is_some_and(|rec| rec.key > hi) {
                break;
            }
            for rec in buf.iter().filter(|rec| rec.key >= lo && rec.key <= hi) {
                fold(rec.key, rec.payload);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CompactionStyle;

    fn tiny(style: CompactionStyle, t: usize, omega: u64) -> AsymKv {
        let mut cfg = KvConfig::new(omega);
        cfg.m = 64;
        cfg.b = 4;
        cfg.memtable_cap = 8;
        cfg.policy = Policy::fixed(style, t);
        AsymKv::new(cfg).expect("engine")
    }

    #[test]
    fn put_get_roundtrip_across_flushes_and_compactions() {
        for style in [CompactionStyle::Leveling, CompactionStyle::Tiering] {
            let mut kv = tiny(style, 2, 8);
            for i in 0..200u64 {
                kv.put(i % 50, i).expect("put");
            }
            assert!(
                !kv.compactions().is_empty(),
                "{}: 25 flushes must compact",
                style.name()
            );
            for key in 0..50u64 {
                // Last write of key k was at i = 150 + k.
                assert_eq!(
                    kv.get(key).expect("get"),
                    Some(150 + key),
                    "{}",
                    style.name()
                );
            }
            assert_eq!(kv.get(777).expect("get"), None);
        }
    }

    #[test]
    fn tombstones_shadow_older_versions_and_gc_at_the_bottom() {
        let mut kv = tiny(CompactionStyle::Tiering, 2, 8);
        kv.put(1, 10).unwrap();
        kv.put(2, 20).unwrap();
        kv.flush().unwrap();
        kv.delete(1).unwrap();
        assert_eq!(kv.get(1).unwrap(), None, "memtable tombstone shadows run");
        kv.flush().unwrap();
        assert_eq!(kv.get(1).unwrap(), None, "flushed tombstone still shadows");
        assert_eq!(kv.get(2).unwrap(), Some(20));
        // Force merges until the tombstone reaches the bottom.
        for i in 100..130u64 {
            kv.put(i, i).unwrap();
        }
        kv.flush().unwrap();
        let total: usize = kv.scan(0, u64::MAX - 1).unwrap().len();
        assert!(!kv.scan(0, 5).unwrap().iter().any(|&(k, _)| k == 1));
        assert!(
            total >= 31,
            "key 2 plus the 30 fillers survive, got {total}"
        );
    }

    #[test]
    fn empty_engine_charges_nothing_for_misses() {
        let kv = tiny(CompactionStyle::Leveling, 2, 8);
        assert_eq!(kv.get(42).unwrap(), None);
        let stats = kv.engine_stats();
        assert_eq!(stats.block_reads, 0, "no runs, no reads — the unified rule");
        assert_eq!(stats.block_writes, 0);
    }

    #[test]
    fn every_compaction_is_admitted_and_within_envelope() {
        let mut kv = tiny(CompactionStyle::Tiering, 3, 16);
        for i in 0..500u64 {
            kv.put(i * 7 % 97, i).unwrap();
        }
        kv.flush().unwrap();
        assert!(kv.compactions().len() >= 2);
        for c in kv.compactions() {
            assert!(c.stats.block_reads <= c.predicted.reads, "{c:?}");
            assert!(c.stats.block_writes <= c.predicted.writes, "{c:?}");
            assert!(c.stats.peak_memory <= c.predicted.peak_memory, "{c:?}");
            assert!(c.input_records > 0);
        }
    }

    #[test]
    fn leveling_keeps_one_run_per_level() {
        let mut kv = tiny(CompactionStyle::Leveling, 2, 8);
        for i in 0..400u64 {
            kv.put(i, i).unwrap();
        }
        kv.flush().unwrap();
        for (i, &count) in kv.run_counts().iter().enumerate() {
            assert!(count <= 1, "level {i} has {count} runs under leveling");
        }
    }

    #[test]
    fn tiering_bounds_runs_per_level() {
        let t = 3;
        let mut kv = tiny(CompactionStyle::Tiering, t, 8);
        for i in 0..600u64 {
            kv.put(i, i).unwrap();
        }
        kv.flush().unwrap();
        for (i, &count) in kv.run_counts().iter().enumerate() {
            assert!(count < t, "level {i} has {count} >= T={t} runs");
        }
    }

    #[test]
    fn scans_merge_across_sources_in_key_order() {
        let mut kv = tiny(CompactionStyle::Tiering, 2, 8);
        for i in 0..60u64 {
            kv.put(i, i * 2).unwrap();
        }
        kv.put(5, 999).unwrap(); // overwrite, memtable-resident
        kv.delete(6).unwrap();
        let got = kv.scan(3, 8).unwrap();
        assert_eq!(got, vec![(3, 6), (4, 8), (5, 999), (7, 14), (8, 16)]);
    }

    #[test]
    fn out_of_range_keys_are_rejected() {
        let mut kv = tiny(CompactionStyle::Leveling, 2, 8);
        assert!(matches!(
            kv.put(u64::MAX, 1),
            Err(KvError::KeyOutOfRange(_))
        ));
        assert!(matches!(kv.get(u64::MAX), Err(KvError::KeyOutOfRange(_))));
    }

    #[test]
    fn config_validation_is_typed() {
        let mut cfg = KvConfig::new(8);
        cfg.memtable_cap = cfg.m; // no room for the probe block
        assert!(matches!(AsymKv::new(cfg), Err(KvError::Config(_))));
        let mut cfg = KvConfig::new(8);
        cfg.policy = Policy {
            style: CompactionStyle::Leveling,
            t: 1,
        };
        assert!(matches!(AsymKv::new(cfg), Err(KvError::Config(_))));
    }
}

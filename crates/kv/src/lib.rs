//! `asym-kv`: an ω-aware LSM key-value engine — the sort service's first
//! real consumer.
//!
//! The paper's motivating hardware (NVM main memory, writes ω× reads)
//! meets its most natural workload: a log-structured KV store. Updates
//! land in a bounded in-memory memtable; flushes produce immutable sorted
//! runs on the same [`BlockStore`](em_sim::BlockStore)-backed machinery
//! the sorters use; and **every compaction is a sort job**: a sorted-run
//! merge is packaged as a [`SortSpec`](asym_core::sort::SortSpec) job,
//! priced by `predict()` at admission, and run by `asym-serve` — an
//! embedded [`SortService`](asym_serve::SortService) by default, or a
//! real HTTP sort server via [`CompactionService::http`].
//!
//! The compaction *policy* is where ω bites: [`policy`] reproduces the
//! CS265/RocksDB leveling-vs-tiering cost models under the asymmetric
//! objective `reads + ω·writes` and picks the style and size ratio T as a
//! function of ω ([`Policy::for_omega`]). The E-KV bench table measures
//! the same frontier end to end through this engine.
//!
//! ```
//! use asym_kv::{AsymKv, KvConfig};
//!
//! let mut kv = AsymKv::new(KvConfig::new(8)).expect("engine");
//! for i in 0..3_000u64 {
//!     kv.put(i, i * 2).expect("put");
//! }
//! kv.delete(7).expect("delete");
//! assert_eq!(kv.get(8).expect("get"), Some(16));
//! assert_eq!(kv.get(7).expect("get"), None);
//! assert!(!kv.compactions().is_empty(), "merges ran as service jobs");
//! # for c in kv.compactions() {
//! #     assert!(c.stats.block_reads <= c.predicted.reads);
//! # }
//! ```

pub mod baseline;
pub mod engine;
pub mod policy;
pub mod submit;

pub use engine::{AsymKv, CompactionRecord, KvConfig};
pub use policy::{choose, modeled_cost, CompactionStyle, Policy, PolicyInputs};
pub use submit::{CompactionService, JobResult};

/// Everything that can go wrong operating the engine.
#[derive(Debug)]
pub enum KvError {
    /// Keys must stay at or below [`asym_model::MAX_KEY`] (`u64::MAX` is
    /// the record sentinel).
    KeyOutOfRange(u64),
    /// Rejected engine geometry (e.g. a memtable that cannot fit primary
    /// memory alongside a probe block).
    Config(String),
    /// Building the compaction [`SortSpec`](asym_core::sort::SortSpec)
    /// failed.
    Spec(asym_core::sort::SpecError),
    /// The engine's own machine refused an operation (I/O fault, memory
    /// over-lease).
    Model(asym_model::ModelError),
    /// The service's admission control turned a compaction away: its
    /// predicted peak bytes exceed the available budget.
    CompactionRejected {
        /// The compaction job's predicted peak bytes.
        predicted: u64,
        /// Budget minus bytes currently in flight.
        available: u64,
    },
    /// Transport or job failure talking to the sort service.
    Service(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::KeyOutOfRange(k) => write!(f, "key {k} exceeds MAX_KEY"),
            KvError::Config(m) => write!(f, "config: {m}"),
            KvError::Spec(e) => write!(f, "compaction spec: {e}"),
            KvError::Model(e) => write!(f, "machine: {e}"),
            KvError::CompactionRejected {
                predicted,
                available,
            } => write!(
                f,
                "compaction rejected: predicted peak {predicted} B exceeds available {available} B"
            ),
            KvError::Service(m) => write!(f, "service: {m}"),
        }
    }
}

impl std::error::Error for KvError {}

//! ω-aware compaction policy: leveling vs tiering and the size ratio T,
//! chosen by minimizing the modeled per-operation cost `reads + ω·writes`.
//!
//! This is the write-asymmetric analogue of the two LSM cost models in
//! SNIPPETS.md — the CS265 `worst_case.py` leveling-vs-tiering worst-case
//! model and the RocksDB `read_exp.py` size-ratio sweeps — with the
//! symmetric I/O count replaced by the AEM charge (reads cost 1, writes
//! cost ω). With `L = ceil(log_T(N/C))` levels over `N` resident records,
//! a `C`-record memtable, and `B`-record blocks:
//!
//! - **Leveling** keeps one run per level. A record is rewritten ~T/2
//!   times before its level fills, so an update costs `L·T/2` record
//!   moves (reads *and* writes, `1/B` blocks each); a point lookup probes
//!   one run per level — one block read each, because per-block fence
//!   pointers live in primary memory (the snippets' assumption, and how
//!   [`AsymKv`](crate::AsymKv) actually probes).
//! - **Tiering** keeps up to T runs per level. A record is written once
//!   per level (`L` moves), but a lookup probes every run: `T·L` block
//!   reads worst case.
//!
//! As ω grows the write term dominates and the optimum slides toward
//! tiering with a larger T (fewer levels → fewer rewrites), exactly the
//! frontier the E-KV experiment table measures end to end.

/// How runs are arranged and merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionStyle {
    /// One run per level; merges fold level `i` into level `i+1`'s run.
    Leveling,
    /// Up to T runs per level; a full level merges into one new run on
    /// level `i+1`.
    Tiering,
}

impl CompactionStyle {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CompactionStyle::Leveling => "leveling",
            CompactionStyle::Tiering => "tiering",
        }
    }
}

/// A concrete compaction policy: the style plus the size ratio T between
/// adjacent levels (T ≥ 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Leveling or tiering.
    pub style: CompactionStyle,
    /// Size ratio between adjacent levels (and the tiering runs-per-level
    /// trigger).
    pub t: usize,
}

/// The workload/geometry parameters the closed-form cost model needs.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInputs {
    /// Write cost multiplier (reads cost 1).
    pub omega: u64,
    /// Fraction of operations that are point lookups, in `[0, 1]`.
    pub read_fraction: f64,
    /// Expected resident records (N).
    pub data_records: usize,
    /// Memtable capacity in records (C).
    pub memtable_records: usize,
    /// Block size in records (B).
    pub block_records: usize,
}

impl PolicyInputs {
    /// A balanced (half lookups) workload over the given geometry.
    pub fn balanced(omega: u64, data_records: usize, memtable_records: usize, b: usize) -> Self {
        PolicyInputs {
            omega,
            read_fraction: 0.5,
            data_records,
            memtable_records,
            block_records: b,
        }
    }

    /// Levels needed to hold N records at size ratio `t` (≥ 1).
    fn levels(&self, t: usize) -> f64 {
        let ratio = (self.data_records.max(1) as f64) / (self.memtable_records.max(1) as f64);
        (ratio.ln() / (t as f64).ln()).ceil().max(1.0)
    }
}

/// Modeled per-operation block I/O for one `(style, T)` point.
#[derive(Clone, Copy, Debug)]
pub struct ModeledCost {
    /// Block reads per point lookup.
    pub reads_per_get: f64,
    /// Block reads per update (compaction's share, amortized).
    pub reads_per_put: f64,
    /// Block writes per update (compaction's share, amortized).
    pub writes_per_put: f64,
}

impl ModeledCost {
    /// The AEM objective for a mixed workload: lookups pay reads at 1,
    /// updates pay compaction reads at 1 and writes at ω.
    pub fn per_op(&self, inputs: &PolicyInputs) -> f64 {
        let rf = inputs.read_fraction.clamp(0.0, 1.0);
        let update = self.reads_per_put + inputs.omega as f64 * self.writes_per_put;
        rf * self.reads_per_get + (1.0 - rf) * update
    }
}

/// Evaluate the closed-form model at one `(style, T)` point.
pub fn modeled_cost(style: CompactionStyle, t: usize, inputs: &PolicyInputs) -> ModeledCost {
    assert!(t >= 2, "size ratio must be at least 2");
    let levels = inputs.levels(t);
    let b = inputs.block_records as f64;
    match style {
        CompactionStyle::Leveling => {
            // Each record is re-merged ~T/2 times per level; merges read
            // what they write. A lookup reads one fence-picked block per
            // level.
            let moves = levels * t as f64 / 2.0;
            ModeledCost {
                reads_per_get: levels,
                reads_per_put: moves / b,
                writes_per_put: moves / b,
            }
        }
        CompactionStyle::Tiering => {
            // Each record is written once per level; a lookup probes up to
            // T runs per level, one fence-picked block each.
            ModeledCost {
                reads_per_get: t as f64 * levels,
                reads_per_put: levels / b,
                writes_per_put: levels / b,
            }
        }
    }
}

/// Size ratios the chooser sweeps (the RocksDB snippet's sweep range).
pub const T_CANDIDATES: std::ops::RangeInclusive<usize> = 2..=16;

/// Pick the `(style, T)` minimizing the modeled `reads + ω·writes` per
/// operation over the sweep grid. Deterministic: ties break toward
/// leveling and the smaller T.
pub fn choose(inputs: &PolicyInputs) -> Policy {
    let mut best = Policy {
        style: CompactionStyle::Leveling,
        t: 2,
    };
    let mut best_cost = f64::INFINITY;
    for style in [CompactionStyle::Leveling, CompactionStyle::Tiering] {
        for t in T_CANDIDATES {
            let cost = modeled_cost(style, t, inputs).per_op(inputs);
            if cost < best_cost {
                best_cost = cost;
                best = Policy { style, t };
            }
        }
    }
    best
}

impl Policy {
    /// Fixed policy (escape hatch for experiments that sweep the grid).
    pub fn fixed(style: CompactionStyle, t: usize) -> Policy {
        assert!(t >= 2, "size ratio must be at least 2");
        Policy { style, t }
    }

    /// The ω-aware default: choose for the paper's update-heavy NVM
    /// workload (90% updates) over ~1M records on the engine's default
    /// geometry (1024-record memtable, 64-record blocks). Small ω favors
    /// leveling's cheap probes; large ω flips to tiering.
    pub fn for_omega(omega: u64) -> Policy {
        choose(&PolicyInputs {
            omega,
            read_fraction: 0.1,
            data_records: 1 << 20,
            memtable_records: 1 << 10,
            block_records: 64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(omega: u64, read_fraction: f64) -> PolicyInputs {
        PolicyInputs {
            omega,
            read_fraction,
            data_records: 1 << 20,
            memtable_records: 1 << 10,
            block_records: 64,
        }
    }

    #[test]
    fn tiering_always_writes_less_and_reads_more() {
        for omega in [1, 8, 32] {
            for t in T_CANDIDATES {
                let inp = inputs(omega, 0.5);
                let lvl = modeled_cost(CompactionStyle::Leveling, t, &inp);
                let tier = modeled_cost(CompactionStyle::Tiering, t, &inp);
                if t > 2 {
                    assert!(
                        tier.writes_per_put < lvl.writes_per_put,
                        "t={t}: tiering must out-write leveling"
                    );
                }
                assert!(
                    tier.reads_per_get >= lvl.reads_per_get,
                    "t={t}: tiering pays for it in probes"
                );
            }
        }
    }

    #[test]
    fn write_gap_widens_with_omega() {
        // The *weighted* gap per update grows with ω (same physical counts,
        // ω-scaled) — this is the frontier claim at model level.
        let gap = |omega: u64| {
            let inp = inputs(omega, 0.0);
            let lvl = modeled_cost(CompactionStyle::Leveling, 8, &inp).per_op(&inp);
            let tier = modeled_cost(CompactionStyle::Tiering, 8, &inp).per_op(&inp);
            lvl - tier
        };
        assert!(gap(1) > 0.0);
        assert!(gap(8) > gap(1));
        assert!(gap(32) > gap(8));
    }

    #[test]
    fn chosen_policy_slides_toward_tiering_as_omega_grows() {
        // Write-heavy mix: at ω=1 cheap probes keep leveling competitive;
        // by ω=32 the chooser must pick tiering with a larger ratio.
        let pick = |omega: u64| choose(&inputs(omega, 0.05));
        let low = pick(1);
        let high = pick(32);
        assert_eq!(high.style, CompactionStyle::Tiering);
        assert!(
            high.t >= low.t,
            "crossover ratio shifts up with omega: {low:?} -> {high:?}"
        );
        let cost_low = modeled_cost(low.style, low.t, &inputs(1, 0.05)).per_op(&inputs(1, 0.05));
        let cost_high =
            modeled_cost(high.style, high.t, &inputs(32, 0.05)).per_op(&inputs(32, 0.05));
        assert!(cost_low.is_finite() && cost_high.is_finite());
    }

    #[test]
    fn for_omega_flips_style_across_the_sweep() {
        assert_eq!(Policy::for_omega(1).style, CompactionStyle::Leveling);
        assert_eq!(Policy::for_omega(32).style, CompactionStyle::Tiering);
    }

    #[test]
    fn read_heavy_mixes_resist_tiering() {
        // At 95% lookups the probe term dominates: even ω=32 should not
        // buy a huge tiering ratio.
        let p = choose(&inputs(32, 0.95));
        let q = choose(&inputs(32, 0.05));
        let probes_p = modeled_cost(p.style, p.t, &inputs(32, 0.95)).reads_per_get;
        let probes_q = modeled_cost(q.style, q.t, &inputs(32, 0.05)).reads_per_get;
        assert!(
            probes_p <= probes_q,
            "read-heavy picks cheaper probes: {p:?} vs {q:?}"
        );
    }

    #[test]
    fn for_omega_is_deterministic_and_valid() {
        for omega in [1, 2, 4, 8, 16, 32, 64] {
            let p = Policy::for_omega(omega);
            assert_eq!(p, Policy::for_omega(omega));
            assert!(T_CANDIDATES.contains(&p.t));
        }
    }
}

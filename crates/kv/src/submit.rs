//! How a compaction becomes a sort job: the engine hands a
//! [`JobRequest`] to `asym-serve` and waits for the terminal status.
//!
//! Two transports share one contract:
//!
//! - [`CompactionService::in_process`] — an embedded [`SortService`]
//!   (the default; no sockets, deterministic, still admission-controlled).
//! - [`CompactionService::http`] — a real `POST /jobs` + long-poll
//!   `GET /jobs/<id>/wait` client over the existing wire codecs, for an
//!   engine pointed at a remote sort server (see `asym_serve::serve`).
//!
//! Either way every compaction is priced by `JobRequest::predict()` at
//! admission; a budget rejection surfaces as
//! [`KvError::CompactionRejected`] with both sides of the comparison.

use crate::KvError;
use asym_core::sort::SortOutcome;
use asym_model::json::{self, Json};
use asym_serve::{JobId, JobRequest, JobState, JobStatus, ServiceConfig, SortService, SubmitError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where compaction jobs run.
pub enum CompactionService {
    /// An embedded [`SortService`] owned by the engine.
    Local(SortService),
    /// A remote HTTP front door ([`asym_serve::serve`]).
    Http(SocketAddr),
}

/// One finished compaction job: its id and decoded outcome.
pub struct JobResult {
    /// The service-assigned job id.
    pub id: JobId,
    /// The sorted output plus the job's measured `EmStats`.
    pub outcome: SortOutcome,
}

static SERVICE_DIRS: AtomicU64 = AtomicU64::new(0);

impl CompactionService {
    /// Start an embedded single-worker service with the given admission
    /// budget. One worker keeps compactions strictly ordered, so modeled
    /// totals are reproducible run to run.
    pub fn in_process(budget_bytes: u64) -> Result<CompactionService, KvError> {
        let dir = service_dir()?;
        let service = SortService::start(ServiceConfig::new(1, budget_bytes, dir))
            .map_err(|e| KvError::Service(format!("start service: {e}")))?;
        Ok(CompactionService::Local(service))
    }

    /// Point compactions at a running sort server.
    pub fn http(addr: SocketAddr) -> CompactionService {
        CompactionService::Http(addr)
    }

    /// Stable transport name (for tables and logs).
    pub fn name(&self) -> &'static str {
        match self {
            CompactionService::Local(_) => "in-process",
            CompactionService::Http(_) => "http",
        }
    }

    /// Submit one job and block until it is terminal. `Completed` yields
    /// the decoded outcome; every other terminal state is an error.
    pub fn submit_and_wait(&self, request: JobRequest) -> Result<JobResult, KvError> {
        match self {
            CompactionService::Local(service) => {
                let id = service.submit(request).map_err(submit_error)?;
                let status = service
                    .wait(id)
                    .ok_or_else(|| KvError::Service(format!("job {id} vanished")))?;
                let outcome = terminal_outcome(&status)?;
                Ok(JobResult { id, outcome })
            }
            CompactionService::Http(addr) => http_submit_and_wait(*addr, &request),
        }
    }
}

impl Drop for CompactionService {
    fn drop(&mut self) {
        if let CompactionService::Local(service) = self {
            service.drain();
        }
    }
}

/// A fresh, collision-free root directory for an embedded service's audit
/// log and per-job file storage.
fn service_dir() -> Result<PathBuf, KvError> {
    let dir = std::env::temp_dir().join(format!(
        "asym-kv-svc-{}-{}",
        std::process::id(),
        SERVICE_DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| KvError::Service(format!("service dir: {e}")))?;
    Ok(dir)
}

fn submit_error(e: SubmitError) -> KvError {
    match e {
        SubmitError::Rejected {
            predicted,
            available,
        } => KvError::CompactionRejected {
            predicted,
            available,
        },
        other => KvError::Service(other.to_string()),
    }
}

/// Decode the sorted payload out of a terminal [`JobStatus`].
fn terminal_outcome(status: &JobStatus) -> Result<SortOutcome, KvError> {
    match status.state {
        JobState::Completed => {
            let telemetry = status
                .telemetry
                .as_deref()
                .ok_or_else(|| KvError::Service("completed job without telemetry".into()))?;
            SortOutcome::from_json(telemetry)
                .map_err(|e| KvError::Service(format!("telemetry decode: {e}")))
        }
        state => Err(KvError::Service(format!(
            "compaction job {} ended {}: {}",
            status.id,
            state.name(),
            status.error.as_deref().unwrap_or("no error recorded")
        ))),
    }
}

// ---------------------------------------------------------------------------
// The HTTP client: hand-rolled like the server, one request per connection.
// ---------------------------------------------------------------------------

fn http_submit_and_wait(addr: SocketAddr, request: &JobRequest) -> Result<JobResult, KvError> {
    let (code, body) = http_roundtrip(addr, "POST", "/jobs", Some(&request.to_json()))?;
    let v = Json::parse(&body).map_err(|e| KvError::Service(format!("submit response: {e}")))?;
    let id = match code {
        202 => v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| KvError::Service("202 without a job id".into()))?,
        429 => {
            let obj = v.as_obj().unwrap_or(&[]);
            return Err(KvError::CompactionRejected {
                predicted: json::get_u64(obj, "predicted").unwrap_or(0),
                available: json::get_u64(obj, "available").unwrap_or(0),
            });
        }
        _ => {
            return Err(KvError::Service(format!(
                "submit rejected with HTTP {code}: {body}"
            )))
        }
    };
    loop {
        let (code, body) = http_roundtrip(addr, "GET", &format!("/jobs/{id}/wait"), None)?;
        match code {
            // 408 = server-side long-poll timeout, job still running: poll on.
            408 => continue,
            200 | 504 => {
                let status = parse_status(&body)?;
                let outcome = terminal_outcome(&status)?;
                return Ok(JobResult { id, outcome });
            }
            _ => {
                return Err(KvError::Service(format!(
                    "wait for job {id} failed with HTTP {code}: {body}"
                )))
            }
        }
    }
}

/// The subset of the status payload the compactor dispatches on.
fn parse_status(body: &str) -> Result<JobStatus, KvError> {
    let v = Json::parse(body).map_err(|e| KvError::Service(format!("status decode: {e}")))?;
    let obj = v
        .as_obj()
        .ok_or_else(|| KvError::Service("status must be a JSON object".into()))?;
    let state = match json::get_str(obj, "state").as_deref() {
        Some("queued") => JobState::Queued,
        Some("running") => JobState::Running,
        Some("completed") => JobState::Completed,
        Some("failed") => JobState::Failed,
        Some("expired") => JobState::Expired,
        other => return Err(KvError::Service(format!("unknown job state {other:?}"))),
    };
    // The client re-derives the prediction locally (it priced the request
    // before submitting); the wire copy is display-only here.
    let predicted = json::find(obj, "predicted").and_then(Json::as_obj);
    let field = |k| predicted.and_then(|p| json::get_u64(p, k)).unwrap_or(0);
    Ok(JobStatus {
        id: json::get_u64(obj, "id").unwrap_or(0),
        state,
        predicted: asym_core::sort::CostEstimate {
            reads: field("reads"),
            writes: field("writes"),
            peak_memory: field("peak_memory") as usize,
            omega: 1,
        },
        attempts: json::get_u64(obj, "attempts").unwrap_or(0) as u32,
        telemetry: json::find(obj, "outcome").map(Json::render),
        error: json::get_str(obj, "error"),
        failure: None,
    })
}

fn http_roundtrip(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), KvError> {
    let io = |e: std::io::Error| KvError::Service(format!("{method} {path}: {e}"));
    let stream = TcpStream::connect(addr).map_err(io)?;
    let mut writer = stream.try_clone().map_err(io)?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(io)?;
    writer.flush().map_err(io)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(io)?;
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| KvError::Service(format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(io)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v
                .parse()
                .map_err(|e| KvError::Service(format!("bad content length: {e}")))?;
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).map_err(io)?;
    let body = String::from_utf8(buf).map_err(|e| KvError::Service(format!("bad body: {e}")))?;
    Ok((code, body))
}

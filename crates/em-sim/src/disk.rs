//! Secondary memory: an unbounded store of fixed-size blocks, backed by one
//! contiguous slab arena.
//!
//! Slot `i` owns the record range `data[i*B .. (i+1)*B]`; a parallel `lens`
//! array records how many of those cells are live (the last block of an
//! array may be partial). Released slots go on a free list and are reused by
//! the next allocation, so a long-running simulation settles into a fixed
//! arena with **zero per-block heap allocations**: every transfer is a
//! `memcpy` into or out of the slab.

use asym_model::{ModelError, Record, Result};

/// Handle to one block of secondary memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// The raw slot index (stable for the life of the block).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Length sentinel marking a released slot.
const FREE: usize = usize::MAX;

/// Unbounded secondary memory, block-granular.
///
/// `Disk` does no cost accounting — that is [`super::EmMachine`]'s job. It
/// only stores blocks and recycles freed slots. All I/O-shaped methods take
/// or fill caller-owned buffers; nothing on the transfer path allocates.
#[derive(Debug, Default)]
pub struct Disk {
    /// The slab arena: slot `i` owns `data[i*B .. (i+1)*B]`.
    data: Vec<Record>,
    /// Live record count per slot (`FREE` marks a released slot).
    lens: Vec<usize>,
    /// Released slot indices awaiting reuse.
    free: Vec<usize>,
    /// Allocated, unreleased slot count (kept so `live_blocks` is O(1)).
    live: usize,
    block_size: usize,
}

impl Disk {
    /// An empty disk with the given block size `B` (in records).
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be positive");
        Self {
            data: Vec::new(),
            lens: Vec::new(),
            free: Vec::new(),
            live: 0,
            block_size,
        }
    }

    /// The block size `B` this disk was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Copy `records` into a fresh slot, returning its id. Panics if the
    /// block is overfull.
    pub fn alloc(&mut self, records: &[Record]) -> BlockId {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = self.lens.len();
                self.data
                    .resize(self.data.len() + self.block_size, Record::default());
                self.lens.push(FREE);
                slot
            }
        };
        let start = slot * self.block_size;
        self.data[start..start + records.len()].copy_from_slice(records);
        self.lens[slot] = records.len();
        self.live += 1;
        BlockId(slot)
    }

    /// Borrow a block's live records.
    pub fn slice(&self, id: BlockId) -> Result<&[Record]> {
        match self.lens.get(id.0) {
            Some(&len) if len != FREE => {
                let start = id.0 * self.block_size;
                Ok(&self.data[start..start + len])
            }
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Copy a block out of secondary memory into `out` (cleared first). The
    /// caller reuses `out` across reads, so the steady state allocates
    /// nothing.
    pub fn read_into(&self, id: BlockId, out: &mut Vec<Record>) -> Result<()> {
        let src = self.slice(id)?;
        out.clear();
        out.extend_from_slice(src);
        Ok(())
    }

    /// Overwrite a block in place from `records`.
    pub fn write(&mut self, id: BlockId, records: &[Record]) -> Result<()> {
        assert!(
            records.len() <= self.block_size,
            "block of {} records exceeds B={}",
            records.len(),
            self.block_size
        );
        match self.lens.get(id.0) {
            Some(&len) if len != FREE => {
                let start = id.0 * self.block_size;
                self.data[start..start + records.len()].copy_from_slice(records);
                self.lens[id.0] = records.len();
                Ok(())
            }
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Release a block's slot for reuse.
    pub fn release(&mut self, id: BlockId) -> Result<()> {
        match self.lens.get(id.0) {
            Some(&len) if len != FREE => {
                self.lens[id.0] = FREE;
                self.free.push(id.0);
                self.live -= 1;
                Ok(())
            }
            _ => Err(ModelError::BadBlock(id.0)),
        }
    }

    /// Number of live (allocated, unreleased) blocks.
    pub fn live_blocks(&self) -> usize {
        self.live
    }

    /// Total slots ever carved out of the arena (live + free).
    pub fn slots(&self) -> usize {
        self.lens.len()
    }

    /// Uncharged peek for test oracles.
    pub fn peek(&self, id: BlockId) -> Option<&[Record]> {
        self.slice(id).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64) -> Record {
        Record::keyed(k)
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut d = Disk::new(4);
        let id = d.alloc(&[rec(1), rec(2)]);
        assert_eq!(d.slice(id).unwrap(), &[rec(1), rec(2)]);
        let mut buf = Vec::new();
        d.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(1), rec(2)]);
        d.write(id, &[rec(9)]).unwrap();
        d.read_into(id, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(9)]);
        assert_eq!(d.block_size(), 4);
    }

    #[test]
    fn read_into_reuses_capacity() {
        let mut d = Disk::new(4);
        let a = d.alloc(&[rec(1), rec(2), rec(3), rec(4)]);
        let b = d.alloc(&[rec(5)]);
        let mut buf = Vec::with_capacity(4);
        let ptr = buf.as_ptr();
        d.read_into(a, &mut buf).unwrap();
        d.read_into(b, &mut buf).unwrap();
        assert_eq!(buf, vec![rec(5)]);
        assert_eq!(ptr, buf.as_ptr(), "buffer must be reused, not reallocated");
    }

    #[test]
    fn release_recycles_slots() {
        let mut d = Disk::new(2);
        let a = d.alloc(&[rec(1)]);
        let b = d.alloc(&[rec(2)]);
        assert_eq!(d.live_blocks(), 2);
        d.release(a).unwrap();
        assert_eq!(d.live_blocks(), 1);
        let c = d.alloc(&[rec(3)]);
        assert_eq!(c.index(), a.index(), "freed slot should be reused");
        assert_eq!(d.slice(b).unwrap(), &[rec(2)]);
        assert_eq!(d.slots(), 2, "arena must not grow past two slots");
    }

    #[test]
    fn stale_and_unknown_ids_error() {
        let mut d = Disk::new(2);
        let a = d.alloc(&[rec(1)]);
        d.release(a).unwrap();
        assert!(d.slice(a).is_err());
        assert!(d.write(a, &[]).is_err());
        assert!(d.release(a).is_err());
        assert!(d.slice(BlockId(99)).is_err());
        let mut buf = Vec::new();
        assert!(d.read_into(BlockId(99), &mut buf).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_alloc() {
        let mut d = Disk::new(2);
        d.alloc(&[rec(1), rec(2), rec(3)]);
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn overfull_block_rejected_on_write() {
        let mut d = Disk::new(2);
        let id = d.alloc(&[rec(1)]);
        let _ = d.write(id, &[rec(1), rec(2), rec(3)]);
    }

    #[test]
    fn peek_is_uncharged_window() {
        let mut d = Disk::new(2);
        let id = d.alloc(&[rec(7)]);
        assert_eq!(d.peek(id).unwrap()[0], rec(7));
        assert!(d.peek(BlockId(5)).is_none());
    }

    #[test]
    fn partial_blocks_shrink_and_grow_in_place() {
        let mut d = Disk::new(4);
        let id = d.alloc(&[rec(1), rec(2), rec(3)]);
        d.write(id, &[rec(8)]).unwrap();
        assert_eq!(d.slice(id).unwrap(), &[rec(8)]);
        d.write(id, &[rec(4), rec(5), rec(6), rec(7)]).unwrap();
        assert_eq!(d.slice(id).unwrap(), &[rec(4), rec(5), rec(6), rec(7)]);
    }
}
